//! EXPLAIN ANALYZE support.
//!
//! [`execute_plan_analyzed`] builds the same operator tree as
//! [`crate::build::build_operator`] but wraps every node in a metering
//! shim that counts produced rows and accumulates wall time across
//! open/next/close. Reports come back in **pre-order** (parent before
//! children), matching the indentation of `PhysicalPlan::explain`, so a
//! SwitchUnion's untouched branch still appears — marked `never executed`
//! — which is exactly what the paper's "the other inputs are not touched"
//! claim looks like in an ANALYZE printout.

use crate::context::ExecContext;
use crate::ops::*;
use rcc_common::{Result, Row, Schema};
use rcc_optimizer::PhysicalPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-operator atomics shared between the metering shim and the report.
#[derive(Debug, Default)]
struct NodeMeter {
    rows: AtomicU64,
    nanos: AtomicU64,
    opened: AtomicU64,
}

/// Post-execution measurements for one operator in the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpReport {
    /// One-line operator label (same text as `PhysicalPlan::explain`).
    pub label: String,
    /// Nesting depth in the plan tree (0 = root).
    pub depth: usize,
    /// Rows this operator produced.
    pub rows: u64,
    /// Wall time spent inside this operator (open + next + close),
    /// including its children's time.
    pub elapsed: Duration,
    /// False for branches the executor never opened (e.g. the untaken
    /// side of a SwitchUnion).
    pub executed: bool,
}

impl OpReport {
    /// Render one line, without indentation.
    pub fn render(&self) -> String {
        if self.executed {
            format!(
                "{} (actual rows={} time={:?})",
                self.label, self.rows, self.elapsed
            )
        } else {
            format!("{} (never executed)", self.label)
        }
    }
}

/// Render a pre-order report list as an indented tree.
pub fn render_reports(reports: &[OpReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&"  ".repeat(r.depth));
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// A completed EXPLAIN ANALYZE run: the query result plus per-operator
/// measurements.
#[derive(Debug, Clone)]
pub struct AnalyzedExecution {
    /// Output schema.
    pub schema: Schema,
    /// All output rows.
    pub rows: Vec<Row>,
    /// Per-operator reports in pre-order.
    pub reports: Vec<OpReport>,
    /// Total wall time (build + open + drain + close).
    pub elapsed: Duration,
}

impl AnalyzedExecution {
    /// The indented per-operator printout.
    pub fn render(&self) -> String {
        format!(
            "{}total: {} rows in {:?}\n",
            render_reports(&self.reports),
            self.rows.len(),
            self.elapsed
        )
    }
}

/// Metering shim around one operator.
struct MeteredOp {
    inner: BoxedOp,
    meter: Arc<NodeMeter>,
}

impl Operator for MeteredOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.meter.opened.store(1, Ordering::Relaxed);
        let started = Instant::now();
        let out = self.inner.open(ctx);
        self.meter
            .nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<crate::batch::Batch>> {
        let started = Instant::now();
        let out = self.inner.next_batch(ctx);
        self.meter
            .nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // true cardinality under batching: sum logical batch lengths, not
        // next_batch call counts
        if let Ok(Some(batch)) = &out {
            self.meter
                .rows
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        out
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        let started = Instant::now();
        let out = self.inner.close(ctx);
        self.meter
            .nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }
}

struct Entry {
    label: String,
    depth: usize,
    meter: Arc<NodeMeter>,
}

/// Mirror of `build_operator` that reserves a report slot for each node in
/// pre-order and wraps the constructed operator in a [`MeteredOp`].
fn instrument(plan: &PhysicalPlan, depth: usize, entries: &mut Vec<Entry>) -> BoxedOp {
    let meter = Arc::new(NodeMeter::default());
    entries.push(Entry {
        label: plan.node_label(),
        depth,
        meter: Arc::clone(&meter),
    });
    let inner: BoxedOp = match plan {
        PhysicalPlan::OneRow => Box::new(OneRowOp::new()),
        PhysicalPlan::LocalScan(n) => Box::new(LocalScanOp::new(
            n.object.clone(),
            n.schema.clone(),
            n.access.clone(),
            n.residual.clone(),
        )),
        PhysicalPlan::RemoteQuery(n) => {
            Box::new(RemoteQueryOp::new(n.sql.clone(), n.schema.clone()))
        }
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => Box::new(SwitchUnionOp::new(
            guard.clone(),
            instrument(local, depth + 1, entries),
            instrument(remote, depth + 1, entries),
        )),
        PhysicalPlan::Filter { input, predicate } => Box::new(FilterOp::new(
            instrument(input, depth + 1, entries),
            predicate.clone(),
        )),
        PhysicalPlan::Project { input, exprs } => Box::new(ProjectOp::new(
            instrument(input, depth + 1, entries),
            exprs.clone(),
        )),
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => Box::new(HashJoinOp::new(
            instrument(left, depth + 1, entries),
            instrument(right, depth + 1, entries),
            left_keys.clone(),
            right_keys.clone(),
            *kind,
        )),
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            debug_assert_eq!(*kind, rcc_optimizer::graph::JoinKind::Inner);
            Box::new(MergeJoinOp::new(
                instrument(left, depth + 1, entries),
                instrument(right, depth + 1, entries),
                left_key.clone(),
                right_key.clone(),
            ))
        }
        PhysicalPlan::IndexNLJoin {
            outer,
            outer_key,
            inner,
            kind,
        } => Box::new(IndexNLJoinOp::new(
            instrument(outer, depth + 1, entries),
            outer_key.clone(),
            inner.clone(),
            *kind,
        )),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => Box::new(HashAggregateOp::new(
            instrument(input, depth + 1, entries),
            group_by.clone(),
            aggs.clone(),
            having.clone(),
        )),
        PhysicalPlan::Sort { input, keys } => Box::new(SortOp::new(
            instrument(input, depth + 1, entries),
            keys.clone(),
        )),
        PhysicalPlan::Limit { input, n } => {
            Box::new(LimitOp::new(instrument(input, depth + 1, entries), *n))
        }
        PhysicalPlan::Distinct { input } => {
            Box::new(DistinctOp::new(instrument(input, depth + 1, entries)))
        }
    };
    Box::new(MeteredOp { inner, meter })
}

/// Execute a plan with per-operator metering and collect the reports.
pub fn execute_plan_analyzed(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<AnalyzedExecution> {
    let started = Instant::now();
    let mut entries = Vec::new();
    let mut op = instrument(plan, 0, &mut entries);
    op.open(ctx)?;
    let schema = op.schema().clone();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch(ctx)? {
        rows.extend(batch.into_rows());
    }
    op.close(ctx)?;
    let elapsed = started.elapsed();
    let reports = entries
        .into_iter()
        .map(|e| OpReport {
            label: e.label,
            depth: e.depth,
            rows: e.meter.rows.load(Ordering::Relaxed),
            elapsed: Duration::from_nanos(e.meter.nanos.load(Ordering::Relaxed)),
            executed: e.meter.opened.load(Ordering::Relaxed) == 1,
        })
        .collect();
    Ok(AnalyzedExecution {
        schema,
        rows,
        reports,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Duration, RegionId, SimClock, Timestamp, Value};
    use rcc_optimizer::physical::{AccessPath, LocalScanNode, RemoteQueryNode};
    use rcc_optimizer::{BoundExpr, CurrencyGuard};
    use rcc_sql::BinaryOp;
    use rcc_storage::{StorageEngine, Table};
    use std::sync::Arc;

    fn rig() -> ExecContext {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
        ]);
        let mut t = Table::new("items", schema, vec![0]);
        for i in 0..10i64 {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .unwrap();
        }
        storage.create_table(t).unwrap();
        let hb_schema = Schema::new(vec![
            Column::new("region_id", DataType::Int),
            Column::new("ts", DataType::Timestamp),
        ]);
        let mut hb = Table::new("heartbeat_cr1", hb_schema, vec![0]);
        hb.insert(Row::new(vec![Value::Int(1), Value::Timestamp(95_000)]))
            .unwrap();
        storage.create_table(hb).unwrap();
        ExecContext::new(
            storage,
            None,
            Arc::new(SimClock::starting_at(Timestamp(100_000))),
        )
    }

    fn scan() -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: "items".into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int).with_qualifier("t"),
                Column::new("grp", DataType::Int).with_qualifier("t"),
            ]),
            access: AccessPath::FullScan,
            residual: None,
            operand: 0,
            est_rows: 10.0,
        })
    }

    #[test]
    fn reports_are_preorder_with_row_counts() {
        let ctx = rig();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::binary(
                BoundExpr::col("t", "grp"),
                BinaryOp::Eq,
                BoundExpr::Literal(Value::Int(0)),
            ),
        };
        let out = execute_plan_analyzed(&plan, &ctx).unwrap();
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.reports.len(), 2);
        assert!(out.reports[0].label.starts_with("Filter"));
        assert_eq!(out.reports[0].depth, 0);
        assert_eq!(out.reports[0].rows, 4);
        assert!(out.reports[1].label.starts_with("LocalScan"));
        assert_eq!(out.reports[1].depth, 1);
        assert_eq!(out.reports[1].rows, 10);
        let text = out.render();
        assert!(text.contains("actual rows=4"));
        assert!(text.contains("\n  LocalScan"), "child is indented: {text}");
        assert!(text.contains("total: 4 rows"));
    }

    /// Under batching an operator yields far fewer `next_batch` calls than
    /// rows; the meter must still report true cardinalities. Pinned
    /// against the row reference engine on a table spanning multiple
    /// batches.
    #[test]
    fn row_counts_are_true_cardinalities_across_batches() {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
        ]);
        let mut t = Table::new("items", schema, vec![0]);
        let total = 3000i64; // > DEFAULT_BATCH_ROWS → multiple batches
        for i in 0..total {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .unwrap();
        }
        storage.create_table(t).unwrap();
        let ctx = ExecContext::new(storage, None, Arc::new(SimClock::new()));
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::binary(
                BoundExpr::col("t", "grp"),
                BinaryOp::Eq,
                BoundExpr::Literal(Value::Int(0)),
            ),
        };
        let out = execute_plan_analyzed(&plan, &ctx).unwrap();
        let reference = crate::rowref::execute_plan_rows(&plan, &ctx).unwrap();
        assert_eq!(out.rows, reference.rows);
        assert_eq!(out.reports[0].rows, reference.rows.len() as u64);
        assert_eq!(out.reports[1].rows, total as u64);
        let batched = crate::build::execute_plan_batched(&scan(), &ctx).unwrap();
        assert!(
            batched.batches.len() >= 2,
            "3000 rows must span multiple batches"
        );
    }

    #[test]
    fn untaken_switch_union_branch_is_marked() {
        let ctx = rig();
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: RegionId(1),
                heartbeat_table: "heartbeat_cr1".into(),
                bound: Duration::from_secs(10),
            },
            local: Box::new(scan()),
            remote: Box::new(PhysicalPlan::RemoteQuery(RemoteQueryNode {
                sql: "SELECT id, grp FROM items".into(),
                schema: Schema::empty(),
                operands: Default::default(),
                est_rows: 10.0,
            })),
        };
        let out = execute_plan_analyzed(&plan, &ctx).unwrap();
        assert_eq!(out.rows.len(), 10);
        // guard is fresh → local executed, remote untouched
        assert!(out.reports[1].executed);
        assert_eq!(out.reports[1].rows, 10);
        assert!(!out.reports[2].executed);
        assert!(out.reports[2].render().contains("never executed"));
    }
}
