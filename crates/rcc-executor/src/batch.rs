//! Columnar batches and ordinal-compiled expressions.
//!
//! The batched engine moves data through the operator tree as [`Batch`]es:
//! one `Vec<Value>` buffer per output column, a physical row count, and an
//! optional **selection vector** so filters can narrow a batch without
//! copying survivors row-by-row. Expressions are compiled once per operator
//! into [`PhysExpr`] — a mirror of [`rcc_optimizer::BoundExpr`] whose column
//! references are pre-resolved to ordinals — so the per-row hot loop does no
//! name resolution, no schema walks, and no virtual dispatch.

use rcc_common::{Error, Result, Row, Schema, Value};
use rcc_optimizer::BoundExpr;
use rcc_sql::{BinaryOp, UnaryOp};
use std::cmp::Ordering;

/// Target logical rows per batch: big enough that per-batch overhead
/// (virtual dispatch, guard bookkeeping, metering) is amortized to noise,
/// small enough that a batch's columns stay cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 2048;

/// A columnar batch of rows.
///
/// `columns[c][r]` is the value of column `c` at **physical** row `r`
/// (`r < rows`). When `sel` is `Some`, only the physical rows it lists (in
/// ascending order) are logically present — filters narrow a batch by
/// refining `sel` instead of copying survivors.
#[derive(Debug, Clone)]
pub struct Batch {
    /// One buffer per output column, each of length `rows`.
    pub columns: Vec<Vec<Value>>,
    /// Physical row count. Kept explicitly so zero-column batches (`SELECT`
    /// without a `FROM`) still carry a cardinality.
    pub rows: usize,
    /// Selection vector: ascending physical row indices that are logically
    /// present. `None` means all `rows` rows are present (a *dense* batch).
    pub sel: Option<Vec<u32>>,
}

impl Batch {
    /// A dense batch from per-column buffers (all of length `rows`).
    pub fn new(columns: Vec<Vec<Value>>, rows: usize) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Batch {
            columns,
            rows,
            sel: None,
        }
    }

    /// An empty batch of `width` columns.
    pub fn empty(width: usize) -> Batch {
        Batch::new((0..width).map(|_| Vec::new()).collect(), 0)
    }

    /// Transpose row-major rows into a dense batch of `width` columns.
    pub fn from_rows(width: usize, rows: Vec<Row>) -> Batch {
        let n = rows.len();
        let mut columns: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            let mut values = row.into_values().into_iter();
            for col in columns.iter_mut() {
                col.push(values.next().unwrap_or(Value::Null));
            }
        }
        Batch::new(columns, n)
    }

    /// Logical row count (`sel` length when selected, else `rows`).
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    /// True when no logical rows are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Physical row index of logical row `i`.
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Replace the selection vector (indices are **physical** rows).
    pub fn with_sel(mut self, sel: Vec<u32>) -> Batch {
        self.sel = Some(sel);
        self
    }

    /// Keep only the first `k` logical rows (LIMIT). Selected batches
    /// truncate the selection vector; dense batches truncate every column.
    pub fn truncate(&mut self, k: usize) {
        match &mut self.sel {
            Some(sel) => sel.truncate(k),
            None => {
                let k = k.min(self.rows);
                for col in &mut self.columns {
                    col.truncate(k);
                }
                self.rows = k;
            }
        }
    }

    /// Clone logical row `i` out as a [`Row`].
    pub fn row(&self, i: usize) -> Row {
        let p = self.phys(i);
        Row::new(self.columns.iter().map(|c| c[p].clone()).collect())
    }

    /// Materialize all logical rows, cloning.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Materialize all logical rows, **moving** values out of dense
    /// batches (the common case at the query root) and cloning only when a
    /// selection vector forces it.
    pub fn into_rows(self) -> Vec<Row> {
        match self.sel {
            None => {
                let width = self.columns.len();
                let mut out: Vec<Vec<Value>> =
                    (0..self.rows).map(|_| Vec::with_capacity(width)).collect();
                for col in self.columns {
                    for (i, v) in col.into_iter().enumerate() {
                        out[i].push(v);
                    }
                }
                out.into_iter().map(Row::new).collect()
            }
            Some(sel) => sel
                .iter()
                .map(|&p| {
                    let p = p as usize;
                    Row::new(self.columns.iter().map(|c| c[p].clone()).collect())
                })
                .collect(),
        }
    }
}

/// Read-access to one row's values by output ordinal — the single
/// abstraction [`PhysExpr::eval`] is generic over, so the identical
/// evaluation code runs against row-major rows (joins, HAVING) and columnar
/// batches (scans, filters, projections).
pub trait ValueSource {
    /// The value at output ordinal `i`.
    fn value(&self, i: usize) -> &Value;
}

/// A row-major slice of values.
pub struct RowSource<'a>(pub &'a [Value]);

impl ValueSource for RowSource<'_> {
    fn value(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

/// One physical row of a columnar batch.
pub struct BatchSource<'a> {
    /// The batch's column buffers.
    pub columns: &'a [Vec<Value>],
    /// Physical row index.
    pub row: usize,
}

impl ValueSource for BatchSource<'_> {
    fn value(&self, i: usize) -> &Value {
        &self.columns[i][self.row]
    }
}

/// A [`BoundExpr`] with every column reference resolved to an ordinal.
///
/// Compiled once per operator open; evaluation then mirrors
/// `BoundExpr::eval` exactly (three-valued logic, NULL propagation,
/// checked integer arithmetic, timestamp arithmetic) minus the per-row
/// `Schema::resolve` string comparisons.
#[derive(Debug, Clone)]
pub enum PhysExpr {
    /// Column reference by output ordinal.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<PhysExpr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<PhysExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<PhysExpr>,
    },
    /// `e BETWEEN low AND high`.
    Between {
        /// The operand.
        expr: Box<PhysExpr>,
        /// Lower bound (inclusive).
        low: Box<PhysExpr>,
        /// Upper bound (inclusive).
        high: Box<PhysExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e IN (list)`.
    InList {
        /// The operand.
        expr: Box<PhysExpr>,
        /// The literal list.
        list: Vec<PhysExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e IS NULL`.
    IsNull {
        /// The operand.
        expr: Box<PhysExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `GETDATE()`.
    GetDate,
}

impl PhysExpr {
    /// Compile `expr`, resolving column references against `schema`.
    pub fn compile(expr: &BoundExpr, schema: &Schema) -> Result<PhysExpr> {
        Ok(match expr {
            BoundExpr::Column { qualifier, name } => {
                PhysExpr::Col(schema.resolve(Some(qualifier), name)?)
            }
            BoundExpr::Literal(v) => PhysExpr::Lit(v.clone()),
            BoundExpr::GetDate => PhysExpr::GetDate,
            BoundExpr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(PhysExpr::compile(left, schema)?),
                op: *op,
                right: Box::new(PhysExpr::compile(right, schema)?),
            },
            BoundExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(PhysExpr::compile(expr, schema)?),
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(PhysExpr::compile(expr, schema)?),
                low: Box::new(PhysExpr::compile(low, schema)?),
                high: Box::new(PhysExpr::compile(high, schema)?),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(PhysExpr::compile(expr, schema)?),
                list: list
                    .iter()
                    .map(|e| PhysExpr::compile(e, schema))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            BoundExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(PhysExpr::compile(expr, schema)?),
                negated: *negated,
            },
        })
    }

    /// Compile a list of expressions against one schema.
    pub fn compile_all(exprs: &[BoundExpr], schema: &Schema) -> Result<Vec<PhysExpr>> {
        exprs.iter().map(|e| PhysExpr::compile(e, schema)).collect()
    }

    /// Rewrite every ordinal through `mapping` (`Col(i)` → `Col(mapping[i])`).
    ///
    /// Scans compile the residual against their *output* schema, then remap
    /// it into *stored* ordinals so the predicate runs directly against
    /// stored rows — rejected rows are never projected or copied.
    pub fn remap(self, mapping: &[usize]) -> PhysExpr {
        match self {
            PhysExpr::Col(i) => PhysExpr::Col(mapping[i]),
            PhysExpr::Lit(v) => PhysExpr::Lit(v),
            PhysExpr::GetDate => PhysExpr::GetDate,
            PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
                left: Box::new(left.remap(mapping)),
                op,
                right: Box::new(right.remap(mapping)),
            },
            PhysExpr::Unary { op, expr } => PhysExpr::Unary {
                op,
                expr: Box::new(expr.remap(mapping)),
            },
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(expr.remap(mapping)),
                low: Box::new(low.remap(mapping)),
                high: Box::new(high.remap(mapping)),
                negated,
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(expr.remap(mapping)),
                list: list.into_iter().map(|e| e.remap(mapping)).collect(),
                negated,
            },
            PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(expr.remap(mapping)),
                negated,
            },
        }
    }

    /// `Some(ordinal)` when the whole expression is a bare column
    /// reference — the projection fast path moves or clones the column
    /// buffer wholesale instead of evaluating per row.
    pub fn as_column(&self) -> Option<usize> {
        match self {
            PhysExpr::Col(i) => Some(*i),
            _ => None,
        }
    }

    /// Evaluate against one row. Semantics are identical to
    /// `BoundExpr::eval` over the same values.
    pub fn eval<S: ValueSource>(&self, src: &S, now_millis: i64) -> Result<Value> {
        match self {
            PhysExpr::Col(i) => Ok(src.value(*i).clone()),
            PhysExpr::Lit(v) => Ok(v.clone()),
            PhysExpr::GetDate => Ok(Value::Timestamp(now_millis)),
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval(src, now_millis)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(Error::Type(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(Error::Type(format!("- applied to {other}"))),
                    },
                }
            }
            PhysExpr::Binary { left, op, right } => eval_binary(left, *op, right, src, now_millis),
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(src, now_millis)?;
                let lo = low.eval(src, now_millis)?;
                let hi = high.eval(src, now_millis)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v
                    .compare(&lo)?
                    .map(|o| o != Ordering::Less)
                    .unwrap_or(false)
                    && v.compare(&hi)?
                        .map(|o| o != Ordering::Greater)
                        .unwrap_or(false);
                Ok(Value::Bool(inside != *negated))
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(src, now_millis)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(src, now_millis)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.compare(&iv)? == Some(Ordering::Equal) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval(src, now_millis)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate as a predicate (SQL truthiness: TRUE passes).
    pub fn eval_predicate<S: ValueSource>(&self, src: &S, now_millis: i64) -> Result<bool> {
        Ok(self.eval(src, now_millis)?.is_truthy())
    }
}

fn eval_binary<S: ValueSource>(
    left: &PhysExpr,
    op: BinaryOp,
    right: &PhysExpr,
    src: &S,
    now_millis: i64,
) -> Result<Value> {
    // AND/OR get three-valued short-circuit semantics.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = left.eval(src, now_millis)?;
        match (op, &l) {
            (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.eval(src, now_millis)?;
        return Ok(match op {
            BinaryOp::And => match (l, r) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BinaryOp::Or => match (l, r) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            _ => unreachable!(),
        });
    }

    let l = left.eval(src, now_millis)?;
    let r = right.eval(src, now_millis)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.compare(&r)?;
        let b = match (op, ord) {
            (BinaryOp::Eq, Some(Ordering::Equal)) => true,
            (BinaryOp::NotEq, Some(o)) => o != Ordering::Equal,
            (BinaryOp::Lt, Some(Ordering::Less)) => true,
            (BinaryOp::LtEq, Some(o)) => o != Ordering::Greater,
            (BinaryOp::Gt, Some(Ordering::Greater)) => true,
            (BinaryOp::GtEq, Some(o)) => o != Ordering::Less,
            _ => false,
        };
        return Ok(Value::Bool(b));
    }
    // arithmetic
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                BinaryOp::Div => {
                    if *b == 0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                _ => None,
            };
            v.map(Value::Int)
                .ok_or_else(|| Error::Execution("integer overflow".into()))
        }
        // timestamp arithmetic: ts ± int keeps the timestamp type, which is
        // what the currency-guard predicate `getdate() - B` needs.
        (Value::Timestamp(a), Value::Int(b)) => match op {
            BinaryOp::Add => Ok(Value::Timestamp(a + b)),
            BinaryOp::Sub => Ok(Value::Timestamp(a - b)),
            _ => Err(Error::Type("unsupported timestamp arithmetic".into())),
        },
        _ => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a / b
                }
                _ => return Err(Error::Type(format!("bad operands for {}", op.sql()))),
            };
            Ok(Value::Float(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rcc_common::{Column, DataType};
    use rcc_optimizer::BoundExpr;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int).with_qualifier("t"),
            Column::new("b", DataType::Float).with_qualifier("t"),
            Column::new("s", DataType::Str).with_qualifier("t"),
        ])
    }

    fn row() -> Row {
        Row::new(vec![Value::Int(10), Value::Float(2.5), Value::from("x")])
    }

    /// Compile + evaluate against the row source and a one-row batch
    /// source; both must agree with `BoundExpr::eval`.
    fn assert_mirrors(e: &BoundExpr) {
        let s = schema();
        let r = row();
        let reference = e.eval(&r, &s, 1234);
        let compiled = PhysExpr::compile(e, &s).unwrap();
        let via_row = compiled.eval(&RowSource(r.values()), 1234);
        let batch = Batch::from_rows(3, vec![r.clone()]);
        let via_batch = compiled.eval(
            &BatchSource {
                columns: &batch.columns,
                row: 0,
            },
            1234,
        );
        match reference {
            Ok(v) => {
                assert_eq!(via_row.unwrap(), v);
                assert_eq!(via_batch.unwrap(), v);
            }
            Err(_) => {
                assert!(via_row.is_err());
                assert!(via_batch.is_err());
            }
        }
    }

    #[test]
    fn mirrors_bound_expr_eval() {
        let cases = vec![
            BoundExpr::col("t", "a"),
            BoundExpr::Literal(Value::Int(7)),
            BoundExpr::GetDate,
            BoundExpr::binary(
                BoundExpr::col("t", "a"),
                BinaryOp::Add,
                BoundExpr::Literal(Value::Int(5)),
            ),
            BoundExpr::binary(
                BoundExpr::col("t", "a"),
                BinaryOp::Mul,
                BoundExpr::col("t", "b"),
            ),
            BoundExpr::binary(
                BoundExpr::Literal(Value::Int(1)),
                BinaryOp::Div,
                BoundExpr::Literal(Value::Int(0)),
            ),
            BoundExpr::binary(
                BoundExpr::GetDate,
                BinaryOp::Sub,
                BoundExpr::Literal(Value::Int(234)),
            ),
            BoundExpr::binary(
                BoundExpr::col("t", "a"),
                BinaryOp::GtEq,
                BoundExpr::Literal(Value::Int(10)),
            ),
            BoundExpr::binary(
                BoundExpr::col("t", "s"),
                BinaryOp::Eq,
                BoundExpr::Literal(Value::from("x")),
            ),
            BoundExpr::binary(
                BoundExpr::Literal(Value::Null),
                BinaryOp::And,
                BoundExpr::Literal(Value::Bool(false)),
            ),
            BoundExpr::binary(
                BoundExpr::Literal(Value::Null),
                BinaryOp::Or,
                BoundExpr::Literal(Value::Bool(true)),
            ),
            BoundExpr::binary(
                BoundExpr::Literal(Value::Null),
                BinaryOp::Eq,
                BoundExpr::Literal(Value::Int(1)),
            ),
            BoundExpr::Between {
                expr: Box::new(BoundExpr::col("t", "a")),
                low: Box::new(BoundExpr::Literal(Value::Int(5))),
                high: Box::new(BoundExpr::Literal(Value::Int(15))),
                negated: false,
            },
            BoundExpr::Between {
                expr: Box::new(BoundExpr::col("t", "a")),
                low: Box::new(BoundExpr::Literal(Value::Int(5))),
                high: Box::new(BoundExpr::Literal(Value::Int(15))),
                negated: true,
            },
            BoundExpr::InList {
                expr: Box::new(BoundExpr::col("t", "a")),
                list: vec![
                    BoundExpr::Literal(Value::Int(9)),
                    BoundExpr::Literal(Value::Int(10)),
                ],
                negated: false,
            },
            BoundExpr::InList {
                expr: Box::new(BoundExpr::col("t", "a")),
                list: vec![BoundExpr::Literal(Value::Null)],
                negated: true,
            },
            BoundExpr::IsNull {
                expr: Box::new(BoundExpr::Literal(Value::Null)),
                negated: false,
            },
            BoundExpr::IsNull {
                expr: Box::new(BoundExpr::col("t", "a")),
                negated: true,
            },
            BoundExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(BoundExpr::Literal(Value::Bool(true))),
            },
            BoundExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(BoundExpr::col("t", "b")),
            },
            BoundExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(BoundExpr::Literal(Value::Int(3))),
            },
        ];
        for e in &cases {
            assert_mirrors(e);
        }
    }

    proptest! {
        /// Randomized comparison sweep: every (op, lhs) pair agrees with
        /// the reference interpreter, including NULL propagation.
        #[test]
        fn comparisons_mirror_reference(lhs in proptest::option::of(-20i64..20), rhs in -20i64..20) {
            let ops = [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::LtEq, BinaryOp::Gt, BinaryOp::GtEq];
            for op in ops {
                let e = BoundExpr::binary(
                    BoundExpr::Literal(lhs.map(Value::Int).unwrap_or(Value::Null)),
                    op,
                    BoundExpr::Literal(Value::Int(rhs)),
                );
                assert_mirrors(&e);
            }
        }
    }

    #[test]
    fn remap_rewrites_ordinals() {
        let s = schema();
        let e = BoundExpr::binary(
            BoundExpr::col("t", "b"),
            BinaryOp::Gt,
            BoundExpr::Literal(Value::Float(1.0)),
        );
        // pretend the stored row is (pad, pad, a, b, s): output 1 → stored 3
        let compiled = PhysExpr::compile(&e, &s).unwrap().remap(&[2, 3, 4]);
        let stored = Row::new(vec![
            Value::Null,
            Value::Null,
            Value::Int(10),
            Value::Float(2.5),
            Value::from("x"),
        ]);
        assert!(compiled
            .eval_predicate(&RowSource(stored.values()), 0)
            .unwrap());
    }

    #[test]
    fn batch_selection_and_materialization() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::from("a")]),
            Row::new(vec![Value::Int(2), Value::from("b")]),
            Row::new(vec![Value::Int(3), Value::from("c")]),
        ];
        let b = Batch::from_rows(2, rows.clone());
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 2);
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.clone().into_rows(), rows);

        let narrowed = b.with_sel(vec![0, 2]);
        assert_eq!(narrowed.len(), 2);
        assert_eq!(narrowed.phys(1), 2);
        assert_eq!(narrowed.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
        assert_eq!(narrowed.into_rows(), vec![rows[0].clone(), rows[2].clone()]);
    }

    #[test]
    fn truncate_respects_selection() {
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Int(2)]),
            Row::new(vec![Value::Int(3)]),
        ];
        let mut dense = Batch::from_rows(1, rows.clone());
        dense.truncate(2);
        assert_eq!(dense.to_rows(), rows[..2]);
        dense.truncate(10); // over-truncate is a no-op
        assert_eq!(dense.len(), 2);

        let mut selected = Batch::from_rows(1, rows.clone()).with_sel(vec![0, 2]);
        selected.truncate(1);
        assert_eq!(selected.to_rows(), vec![rows[0].clone()]);
    }

    #[test]
    fn zero_width_batch_keeps_cardinality() {
        let b = Batch::new(vec![], 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.into_rows(), vec![Row::new(vec![])]);
    }
}
