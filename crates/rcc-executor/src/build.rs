//! Plan-to-operator translation and the phased execution driver.

use crate::batch::Batch;
use crate::context::ExecContext;
use crate::ops::*;
use rcc_common::{Result, Row, Schema};
use rcc_optimizer::PhysicalPlan;
use std::time::Instant;

/// Elapsed wall time per execution phase — the breakdown the paper's
/// Table 4.5 reports (setup plan / run plan / shutdown plan).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Instantiating the executable tree and opening the root.
    pub setup: std::time::Duration,
    /// Producing all rows.
    pub run: std::time::Duration,
    /// Closing the tree.
    pub shutdown: std::time::Duration,
}

impl PhaseTimings {
    /// Total elapsed time.
    pub fn total(&self) -> std::time::Duration {
        self.setup + self.run + self.shutdown
    }
}

/// A completed query: schema, rows and per-phase timings.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Output schema.
    pub schema: Schema,
    /// All output rows.
    pub rows: Vec<Row>,
    /// Phase breakdown.
    pub timings: PhaseTimings,
}

/// Translate a physical plan into an operator tree.
pub fn build_operator(plan: &PhysicalPlan) -> BoxedOp {
    match plan {
        PhysicalPlan::OneRow => Box::new(OneRowOp::new()),
        PhysicalPlan::LocalScan(n) => Box::new(LocalScanOp::new(
            n.object.clone(),
            n.schema.clone(),
            n.access.clone(),
            n.residual.clone(),
        )),
        PhysicalPlan::RemoteQuery(n) => {
            Box::new(RemoteQueryOp::new(n.sql.clone(), n.schema.clone()))
        }
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => Box::new(SwitchUnionOp::new(
            guard.clone(),
            build_operator(local),
            build_operator(remote),
        )),
        PhysicalPlan::Filter { input, predicate } => {
            Box::new(FilterOp::new(build_operator(input), predicate.clone()))
        }
        PhysicalPlan::Project { input, exprs } => {
            Box::new(ProjectOp::new(build_operator(input), exprs.clone()))
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => Box::new(HashJoinOp::new(
            build_operator(left),
            build_operator(right),
            left_keys.clone(),
            right_keys.clone(),
            *kind,
        )),
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            debug_assert_eq!(*kind, rcc_optimizer::graph::JoinKind::Inner);
            Box::new(MergeJoinOp::new(
                build_operator(left),
                build_operator(right),
                left_key.clone(),
                right_key.clone(),
            ))
        }
        PhysicalPlan::IndexNLJoin {
            outer,
            outer_key,
            inner,
            kind,
        } => Box::new(IndexNLJoinOp::new(
            build_operator(outer),
            outer_key.clone(),
            inner.clone(),
            *kind,
        )),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => Box::new(HashAggregateOp::new(
            build_operator(input),
            group_by.clone(),
            aggs.clone(),
            having.clone(),
        )),
        PhysicalPlan::Sort { input, keys } => {
            Box::new(SortOp::new(build_operator(input), keys.clone()))
        }
        PhysicalPlan::Limit { input, n } => Box::new(LimitOp::new(build_operator(input), *n)),
        PhysicalPlan::Distinct { input } => Box::new(DistinctOp::new(build_operator(input))),
    }
}

/// A completed query in columnar form: schema, batches and per-phase
/// timings. [`wire::encode_batches`](crate::wire::encode_batches)
/// serializes this directly, without ever materializing [`Row`]s.
#[derive(Debug, Clone)]
pub struct BatchExecutionResult {
    /// Output schema.
    pub schema: Schema,
    /// All output batches, in order.
    pub batches: Vec<Batch>,
    /// Phase breakdown.
    pub timings: PhaseTimings,
}

impl BatchExecutionResult {
    /// Total logical row count across all batches.
    pub fn row_count(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }

    /// Materialize all batches into rows, consuming the result.
    pub fn into_rows(self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.row_count());
        for batch in self.batches {
            out.extend(batch.into_rows());
        }
        out
    }
}

/// Execute a plan to completion with per-phase timing, keeping the output
/// columnar. Root batches are counted into `rcc_batch_produced_total` and
/// their cardinalities observed in the `rcc_batch_rows_per_batch`
/// histogram.
pub fn execute_plan_batched(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
) -> Result<BatchExecutionResult> {
    use std::sync::atomic::Ordering;
    let t0 = Instant::now();
    let mut op = build_operator(plan);
    op.open(ctx)?;
    let t1 = Instant::now();

    let schema = op.schema().clone();
    let mut batches = Vec::new();
    while let Some(batch) = op.next_batch(ctx)? {
        ctx.counters
            .batches_produced
            .fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = ctx.metrics.as_deref() {
            metrics
                .histogram(
                    "rcc_batch_rows_per_batch",
                    &[],
                    rcc_obs::DEFAULT_BATCH_ROWS_BUCKETS,
                )
                .observe(batch.len() as f64);
        }
        batches.push(batch);
    }
    let t2 = Instant::now();

    op.close(ctx)?;
    let t3 = Instant::now();

    Ok(BatchExecutionResult {
        schema,
        batches,
        timings: PhaseTimings {
            setup: t1 - t0,
            run: t2 - t1,
            shutdown: t3 - t2,
        },
    })
}

/// Execute a plan to completion with per-phase timing, materializing the
/// batched output into rows. This is the row-shaped facade over
/// [`execute_plan_batched`] — callers that serialize straight to the wire
/// should use the batched form and skip the row materialization.
pub fn execute_plan(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<ExecutionResult> {
    let result = execute_plan_batched(plan, ctx)?;
    let timings = result.timings;
    let schema = result.schema.clone();
    let rows = result.into_rows();
    Ok(ExecutionResult {
        schema,
        rows,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use rcc_common::{Column, DataType, Duration, Error, RegionId, SimClock, Timestamp, Value};
    use rcc_optimizer::graph::JoinKind;
    use rcc_optimizer::physical::{AccessPath, InnerAccess, LocalScanNode, RemoteQueryNode};
    use rcc_optimizer::{AggCall, AggFunc, BoundExpr, CurrencyGuard};
    use rcc_sql::BinaryOp;
    use rcc_storage::{KeyRange, StorageEngine, Table};
    use std::sync::Arc;

    /// A scripted remote service: returns canned rows, counts calls.
    #[derive(Debug, Default)]
    struct FakeRemote {
        rows: Mutex<Vec<Row>>,
        calls: Mutex<Vec<String>>,
        fail: bool,
    }

    impl crate::context::RemoteService for FakeRemote {
        fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
            self.calls.lock().push(sql.to_string());
            if self.fail {
                return Err(Error::Remote("backend down".into()));
            }
            Ok((Schema::empty(), self.rows.lock().clone()))
        }
    }

    fn items_schema(q: &str) -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).with_qualifier(q),
            Column::new("grp", DataType::Int).with_qualifier(q),
        ])
    }

    fn ctx_with_items(remote: Option<Arc<FakeRemote>>) -> (ExecContext, SimClock) {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
        ]);
        let mut t = Table::new("items", schema, vec![0]);
        for i in 0..10i64 {
            t.insert(Row::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .unwrap();
        }
        t.create_index("ix_grp", vec![1]).unwrap();
        storage.create_table(t).unwrap();
        // heartbeat table: region 1, ts = 95s
        let hb_schema = Schema::new(vec![
            Column::new("region_id", DataType::Int),
            Column::new("ts", DataType::Timestamp),
        ]);
        let mut hb = Table::new("heartbeat_cr1", hb_schema, vec![0]);
        hb.insert(Row::new(vec![Value::Int(1), Value::Timestamp(95_000)]))
            .unwrap();
        storage.create_table(hb).unwrap();
        let clock = SimClock::starting_at(Timestamp(100_000));
        let ctx = ExecContext::new(
            storage,
            remote.map(|r| r as Arc<dyn crate::context::RemoteService>),
            Arc::new(clock.clone()),
        );
        (ctx, clock)
    }

    fn scan(access: AccessPath, residual: Option<BoundExpr>) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: "items".into(),
            schema: items_schema("t"),
            access,
            residual,
            operand: 0,
            est_rows: 10.0,
        })
    }

    fn run(plan: &PhysicalPlan, ctx: &ExecContext) -> Vec<Row> {
        execute_plan(plan, ctx).unwrap().rows
    }

    #[test]
    fn scan_full_and_ranged() {
        let (ctx, _) = ctx_with_items(None);
        assert_eq!(run(&scan(AccessPath::FullScan, None), &ctx).len(), 10);
        let plan = scan(
            AccessPath::ClusteredRange {
                column: "id".into(),
                range: KeyRange::less_than(Value::Int(3)),
            },
            None,
        );
        assert_eq!(run(&plan, &ctx).len(), 3);
        let plan = scan(
            AccessPath::IndexRange {
                index: "ix_grp".into(),
                column: "grp".into(),
                range: KeyRange::eq(Value::Int(0)),
            },
            None,
        );
        assert_eq!(run(&plan, &ctx).len(), 4);
    }

    #[test]
    fn scan_residual_filters() {
        let (ctx, _) = ctx_with_items(None);
        let residual = BoundExpr::binary(
            BoundExpr::col("t", "grp"),
            BinaryOp::Eq,
            BoundExpr::Literal(Value::Int(1)),
        );
        let rows = run(&scan(AccessPath::FullScan, Some(residual)), &ctx);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn switch_union_takes_local_when_fresh() {
        let remote = Arc::new(FakeRemote::default());
        let (ctx, _) = ctx_with_items(Some(remote.clone()));
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: RegionId(1),
                heartbeat_table: "heartbeat_cr1".into(),
                bound: Duration::from_secs(10),
            },
            local: Box::new(scan(AccessPath::FullScan, None)),
            remote: Box::new(PhysicalPlan::RemoteQuery(RemoteQueryNode {
                sql: "SELECT id, grp FROM items".into(),
                schema: items_schema("t"),
                operands: [0].into_iter().collect(),
                est_rows: 10.0,
            })),
        };
        // hb=95s, now=100s, bound=10s → local
        assert_eq!(run(&plan, &ctx).len(), 10);
        assert!(
            remote.calls.lock().is_empty(),
            "remote branch must not be touched"
        );
    }

    #[test]
    fn switch_union_takes_remote_when_stale() {
        let remote = Arc::new(FakeRemote::default());
        remote
            .rows
            .lock()
            .push(Row::new(vec![Value::Int(99), Value::Int(0)]));
        let (ctx, clock) = ctx_with_items(Some(remote.clone()));
        clock.advance(Duration::from_secs(60)); // hb 95s now ancient
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: RegionId(1),
                heartbeat_table: "heartbeat_cr1".into(),
                bound: Duration::from_secs(10),
            },
            local: Box::new(scan(AccessPath::FullScan, None)),
            remote: Box::new(PhysicalPlan::RemoteQuery(RemoteQueryNode {
                sql: "SELECT id, grp FROM items".into(),
                schema: items_schema("t"),
                operands: [0].into_iter().collect(),
                est_rows: 1.0,
            })),
        };
        let rows = run(&plan, &ctx);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(99));
        assert_eq!(remote.calls.lock().len(), 1);
        assert_eq!(
            ctx.counters
                .remote_branches
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn hash_join_inner_semi_anti() {
        let (ctx, _) = ctx_with_items(None);
        // join items with itself on grp: 10 rows × ~3.33 matches
        let mk = |kind: JoinKind| PhysicalPlan::HashJoin {
            left: Box::new(scan(AccessPath::FullScan, None)),
            right: Box::new(PhysicalPlan::LocalScan(LocalScanNode {
                object: "items".into(),
                schema: items_schema("u"),
                access: AccessPath::ClusteredRange {
                    column: "id".into(),
                    range: KeyRange::less_than(Value::Int(3)),
                },
                residual: None,
                operand: 1,
                est_rows: 3.0,
            })),
            left_keys: vec![BoundExpr::col("t", "grp")],
            right_keys: vec![BoundExpr::col("u", "grp")],
            kind,
        };
        // right side: ids 0,1,2 → one row per grp 0,1,2; every left row matches once
        assert_eq!(run(&mk(JoinKind::Inner), &ctx).len(), 10);
        assert_eq!(run(&mk(JoinKind::Semi), &ctx).len(), 10);
        assert_eq!(run(&mk(JoinKind::Anti), &ctx).len(), 0);
        // inner join output schema is concatenated
        let r = run(&mk(JoinKind::Inner), &ctx);
        assert_eq!(r[0].len(), 4);
    }

    #[test]
    fn index_nl_join_local_seek() {
        let (ctx, _) = ctx_with_items(None);
        let plan = PhysicalPlan::IndexNLJoin {
            outer: Box::new(PhysicalPlan::LocalScan(LocalScanNode {
                object: "items".into(),
                schema: items_schema("t"),
                access: AccessPath::ClusteredRange {
                    column: "id".into(),
                    range: KeyRange::less_than(Value::Int(2)),
                },
                residual: None,
                operand: 0,
                est_rows: 2.0,
            })),
            outer_key: BoundExpr::col("t", "grp"),
            inner: InnerAccess {
                object: "items".into(),
                schema: items_schema("u"),
                seek_col: "grp".into(),
                use_index: Some("ix_grp".into()),
                residual: None,
                guard: None,
                remote_sql: None,
                operand: 1,
                est_rows_per_probe: 3.3,
                force_remote: false,
            },
            kind: JoinKind::Inner,
        };
        // outer rows id 0 (grp 0) and id 1 (grp 1): matches 4 + 3 = 7
        assert_eq!(run(&plan, &ctx).len(), 7);
    }

    #[test]
    fn index_nl_join_guarded_fallback() {
        let remote = Arc::new(FakeRemote::default());
        remote
            .rows
            .lock()
            .push(Row::new(vec![Value::Int(77), Value::Int(0)]));
        let (ctx, clock) = ctx_with_items(Some(remote.clone()));
        clock.advance(Duration::from_secs(60)); // guard will fail
        let plan = PhysicalPlan::IndexNLJoin {
            outer: Box::new(PhysicalPlan::LocalScan(LocalScanNode {
                object: "items".into(),
                schema: items_schema("t"),
                access: AccessPath::ClusteredRange {
                    column: "id".into(),
                    range: KeyRange::eq(Value::Int(0)),
                },
                residual: None,
                operand: 0,
                est_rows: 1.0,
            })),
            outer_key: BoundExpr::col("t", "grp"),
            inner: InnerAccess {
                object: "items".into(),
                schema: items_schema("u"),
                seek_col: "grp".into(),
                use_index: Some("ix_grp".into()),
                residual: None,
                guard: Some(CurrencyGuard {
                    region: RegionId(1),
                    heartbeat_table: "heartbeat_cr1".into(),
                    bound: Duration::from_secs(10),
                }),
                remote_sql: Some("SELECT u.grp, u.id FROM items u".into()),
                operand: 1,
                est_rows_per_probe: 3.3,
                force_remote: false,
            },
            kind: JoinKind::Inner,
        };
        // remote returned one row with grp 0; outer row id 0 has grp 0 → 1 match
        let rows = run(&plan, &ctx);
        assert_eq!(rows.len(), 1);
        assert_eq!(remote.calls.lock().len(), 1);
    }

    #[test]
    fn aggregate_with_having_and_empty_input() {
        let (ctx, _) = ctx_with_items(None);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan(AccessPath::FullScan, None)),
            group_by: vec![(BoundExpr::col("t", "grp"), "grp".into())],
            aggs: vec![
                AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    output_name: "n".into(),
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(BoundExpr::col("t", "id")),
                    output_name: "total".into(),
                },
            ],
            having: Some(BoundExpr::binary(
                BoundExpr::col("#agg", "n"),
                BinaryOp::GtEq,
                BoundExpr::Literal(Value::Int(4)),
            )),
        };
        let rows = run(&plan, &ctx);
        // grp 0 has 4 members (0,3,6,9); grps 1,2 have 3 each → only grp 0
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(0));
        assert_eq!(rows[0].get(1), &Value::Int(4));
        assert_eq!(rows[0].get(2), &Value::Int(18));

        // global aggregate over empty input yields one row with COUNT 0
        let empty = PhysicalPlan::HashAggregate {
            input: Box::new(scan(
                AccessPath::ClusteredRange {
                    column: "id".into(),
                    range: KeyRange::greater_than(Value::Int(100)),
                },
                None,
            )),
            group_by: vec![],
            aggs: vec![AggCall {
                func: AggFunc::Count,
                arg: None,
                output_name: "n".into(),
            }],
            having: None,
        };
        let rows = run(&empty, &ctx);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(0));
    }

    #[test]
    fn avg_min_max() {
        let (ctx, _) = ctx_with_items(None);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan(AccessPath::FullScan, None)),
            group_by: vec![],
            aggs: vec![
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(BoundExpr::col("t", "id")),
                    output_name: "a".into(),
                },
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(BoundExpr::col("t", "id")),
                    output_name: "mn".into(),
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(BoundExpr::col("t", "id")),
                    output_name: "mx".into(),
                },
            ],
            having: None,
        };
        let rows = run(&plan, &ctx);
        assert_eq!(rows[0].get(0), &Value::Float(4.5));
        assert_eq!(rows[0].get(1), &Value::Int(0));
        assert_eq!(rows[0].get(2), &Value::Int(9));
    }

    #[test]
    fn project_filter_sort_limit_distinct() {
        let (ctx, _) = ctx_with_items(None);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Distinct {
                    input: Box::new(PhysicalPlan::Project {
                        input: Box::new(PhysicalPlan::Filter {
                            input: Box::new(scan(AccessPath::FullScan, None)),
                            predicate: BoundExpr::binary(
                                BoundExpr::col("t", "id"),
                                BinaryOp::Gt,
                                BoundExpr::Literal(Value::Int(1)),
                            ),
                        }),
                        exprs: vec![(BoundExpr::col("t", "grp"), "g".into())],
                    }),
                }),
                keys: vec![(0, false)],
            }),
            n: 2,
        };
        let rows = run(&plan, &ctx);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Int(2));
        assert_eq!(rows[1].get(0), &Value::Int(1));
    }

    #[test]
    fn remote_error_propagates() {
        let remote = Arc::new(FakeRemote {
            fail: true,
            ..Default::default()
        });
        let (ctx, _) = ctx_with_items(Some(remote));
        let plan = PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql: "SELECT 1 x".into(),
            schema: Schema::empty(),
            operands: Default::default(),
            est_rows: 1.0,
        });
        assert!(matches!(execute_plan(&plan, &ctx), Err(Error::Remote(_))));
        // and with no remote configured at all
        let (ctx2, _) = ctx_with_items(None);
        assert!(matches!(execute_plan(&plan, &ctx2), Err(Error::Remote(_))));
    }

    #[test]
    fn one_row_and_timings() {
        let (ctx, _) = ctx_with_items(None);
        let result = execute_plan(&PhysicalPlan::OneRow, &ctx).unwrap();
        assert_eq!(result.rows.len(), 1);
        assert!(result.timings.total() >= result.timings.run);
    }

    /// The batched engine must agree with the row reference engine on every
    /// operator, including with tiny batches forcing multi-batch streams
    /// through every exchange point.
    #[test]
    fn batched_matches_row_reference_engine() {
        let residual = BoundExpr::binary(
            BoundExpr::col("t", "grp"),
            BinaryOp::Eq,
            BoundExpr::Literal(Value::Int(1)),
        );
        let plans = vec![
            scan(AccessPath::FullScan, None),
            scan(AccessPath::FullScan, Some(residual.clone())),
            scan(
                AccessPath::IndexRange {
                    index: "ix_grp".into(),
                    column: "grp".into(),
                    range: KeyRange::eq(Value::Int(0)),
                },
                None,
            ),
            PhysicalPlan::Limit {
                input: Box::new(PhysicalPlan::Sort {
                    input: Box::new(PhysicalPlan::Distinct {
                        input: Box::new(PhysicalPlan::Project {
                            input: Box::new(PhysicalPlan::Filter {
                                input: Box::new(scan(AccessPath::FullScan, None)),
                                predicate: BoundExpr::binary(
                                    BoundExpr::col("t", "id"),
                                    BinaryOp::Gt,
                                    BoundExpr::Literal(Value::Int(1)),
                                ),
                            }),
                            exprs: vec![(BoundExpr::col("t", "grp"), "g".into())],
                        }),
                    }),
                    keys: vec![(0, false)],
                }),
                n: 2,
            },
            PhysicalPlan::HashAggregate {
                input: Box::new(scan(AccessPath::FullScan, None)),
                group_by: vec![(BoundExpr::col("t", "grp"), "grp".into())],
                aggs: vec![AggCall {
                    func: AggFunc::Sum,
                    arg: Some(BoundExpr::col("t", "id")),
                    output_name: "total".into(),
                }],
                having: None,
            },
        ];
        for batch_rows in [1usize, 3, 2048] {
            let (mut ctx, _) = ctx_with_items(None);
            ctx.batch_rows = batch_rows;
            for plan in &plans {
                let batched = execute_plan(plan, &ctx).unwrap();
                let rowwise = crate::rowref::execute_plan_rows(plan, &ctx).unwrap();
                assert_eq!(
                    batched.rows, rowwise.rows,
                    "engines diverged at batch_rows={batch_rows} on {plan:?}"
                );
            }
        }
    }

    #[test]
    fn batched_result_counts_and_materializes() {
        let (ctx, _) = ctx_with_items(None);
        let result = execute_plan_batched(&scan(AccessPath::FullScan, None), &ctx).unwrap();
        assert_eq!(result.row_count(), 10);
        assert!(
            ctx.counters
                .batches_produced
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        assert_eq!(result.into_rows().len(), 10);
    }
}

#[cfg(test)]
mod merge_join_tests {
    use super::*;
    use crate::context::ExecContext;
    use rcc_common::{Column, DataType, Row, Schema, SimClock, Value};
    use rcc_optimizer::graph::JoinKind;
    use rcc_optimizer::physical::{AccessPath, LocalScanNode};
    use rcc_optimizer::BoundExpr;
    use rcc_storage::{KeyRange, StorageEngine, Table};
    use std::sync::Arc;

    fn rig() -> ExecContext {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        // left: keys 1..=5, right: keys with duplicates {2, 2, 4, 4, 4, 9}
        let mut l = Table::new("l", schema.clone(), vec![0]);
        for k in 1..=5 {
            l.insert(Row::new(vec![Value::Int(k), Value::Int(k * 10)]))
                .unwrap();
        }
        storage.create_table(l).unwrap();
        let schema_r = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("id", DataType::Int),
        ]);
        let mut r = Table::new("r", schema_r, vec![1]); // clustered on id, but we
        for (id, k) in [(1, 2), (2, 2), (3, 4), (4, 4), (5, 4), (6, 9)] {
            r.insert(Row::new(vec![Value::Int(k), Value::Int(id)]))
                .unwrap();
        }
        r.create_index("ix_k", vec![0]).unwrap();
        storage.create_table(r).unwrap();
        ExecContext::new(storage, None, Arc::new(SimClock::new()))
    }

    fn scan(object: &str, qual: &str, cols: [&str; 2], access: AccessPath) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: object.into(),
            schema: Schema::new(vec![
                Column::new(cols[0], DataType::Int).with_qualifier(qual),
                Column::new(cols[1], DataType::Int).with_qualifier(qual),
            ]),
            access,
            residual: None,
            operand: 0,
            est_rows: 5.0,
        })
    }

    fn merge_plan() -> PhysicalPlan {
        PhysicalPlan::MergeJoin {
            left: Box::new(scan(
                "l",
                "a",
                ["k", "v"],
                AccessPath::ClusteredRange {
                    column: "k".into(),
                    range: KeyRange::all(),
                },
            )),
            // right side ordered on k via the secondary index
            right: Box::new(scan(
                "r",
                "b",
                ["k", "id"],
                AccessPath::IndexRange {
                    index: "ix_k".into(),
                    column: "k".into(),
                    range: KeyRange::all(),
                },
            )),
            left_key: BoundExpr::col("a", "k"),
            right_key: BoundExpr::col("b", "k"),
            kind: JoinKind::Inner,
        }
    }

    #[test]
    fn merge_join_handles_duplicates_and_gaps() {
        let ctx = rig();
        let result = execute_plan(&merge_plan(), &ctx).unwrap();
        // matches: k=2 → 2 rows, k=4 → 3 rows; k=1,3,5 unmatched; k=9 right-only
        assert_eq!(result.rows.len(), 5);
        let mut keys: Vec<i64> = result
            .rows
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        keys.sort();
        assert_eq!(keys, vec![2, 2, 4, 4, 4]);
        // joined rows carry columns from both sides
        assert_eq!(result.rows[0].len(), 4);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let ctx = rig();
        let merge = execute_plan(&merge_plan(), &ctx).unwrap();
        let hash = PhysicalPlan::HashJoin {
            left: Box::new(scan(
                "l",
                "a",
                ["k", "v"],
                AccessPath::ClusteredRange {
                    column: "k".into(),
                    range: KeyRange::all(),
                },
            )),
            right: Box::new(scan("r", "b", ["k", "id"], AccessPath::FullScan)),
            left_keys: vec![BoundExpr::col("a", "k")],
            right_keys: vec![BoundExpr::col("b", "k")],
            kind: JoinKind::Inner,
        };
        let hash = execute_plan(&hash, &ctx).unwrap();
        let mut a = merge.rows.clone();
        let mut b = hash.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_join_empty_sides() {
        let ctx = rig();
        // empty left (impossible range)
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan(
                "l",
                "a",
                ["k", "v"],
                AccessPath::ClusteredRange {
                    column: "k".into(),
                    range: KeyRange::greater_than(Value::Int(100)),
                },
            )),
            right: Box::new(scan(
                "r",
                "b",
                ["k", "id"],
                AccessPath::IndexRange {
                    index: "ix_k".into(),
                    column: "k".into(),
                    range: KeyRange::all(),
                },
            )),
            left_key: BoundExpr::col("a", "k"),
            right_key: BoundExpr::col("b", "k"),
            kind: JoinKind::Inner,
        };
        assert!(execute_plan(&plan, &ctx).unwrap().rows.is_empty());
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::context::ExecContext;
    use rcc_common::{Column, DataType, Row, Schema, SimClock, Value};
    use rcc_optimizer::graph::JoinKind;
    use rcc_optimizer::physical::{AccessPath, LocalScanNode};
    use rcc_optimizer::BoundExpr;
    use rcc_storage::{KeyRange, StorageEngine, Table};
    use std::sync::Arc;

    /// A table with NULLs in the join column.
    fn rig_with_nulls() -> ExecContext {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("k", DataType::Int),
        ]);
        let mut t = Table::new("n", schema, vec![0]);
        for (id, k) in [
            (1, Some(10)),
            (2, None),
            (3, Some(10)),
            (4, None),
            (5, Some(20)),
        ] {
            t.insert(Row::new(vec![
                Value::Int(id),
                k.map(Value::Int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        storage.create_table(t).unwrap();
        ExecContext::new(storage, None, Arc::new(SimClock::new()))
    }

    fn scan(qual: &str) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: "n".into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int).with_qualifier(qual),
                Column::new("k", DataType::Int).with_qualifier(qual),
            ]),
            access: AccessPath::ClusteredRange {
                column: "id".into(),
                range: KeyRange::all(),
            },
            residual: None,
            operand: 0,
            est_rows: 5.0,
        })
    }

    fn self_join(kind: JoinKind) -> PhysicalPlan {
        PhysicalPlan::HashJoin {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            left_keys: vec![BoundExpr::col("a", "k")],
            right_keys: vec![BoundExpr::col("b", "k")],
            kind,
        }
    }

    #[test]
    fn null_keys_never_match_in_hash_joins() {
        let ctx = rig_with_nulls();
        // inner: non-null keys 10,10,20 self-join → 2×2 + 1 = 5 matches
        let inner = execute_plan(&self_join(JoinKind::Inner), &ctx).unwrap();
        assert_eq!(inner.rows.len(), 5);
        // semi: rows with non-null matched keys = ids 1,3,5
        let semi = execute_plan(&self_join(JoinKind::Semi), &ctx).unwrap();
        assert_eq!(semi.rows.len(), 3);
        // anti: NULL-keyed rows never match → they survive (SQL NOT EXISTS
        // with a null correlation finds no match)
        let anti = execute_plan(&self_join(JoinKind::Anti), &ctx).unwrap();
        let ids: Vec<i64> = anti
            .rows
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn merge_join_skips_null_keys() {
        let ctx = rig_with_nulls();
        // order both sides by k via... clustered scan is ordered by id, not
        // k — build trivially ordered single-row-ish case by filtering
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("a")),
                predicate: BoundExpr::binary(
                    BoundExpr::col("a", "id"),
                    rcc_sql::BinaryOp::LtEq,
                    BoundExpr::Literal(Value::Int(2)),
                ),
            }),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("b")),
                predicate: BoundExpr::binary(
                    BoundExpr::col("b", "id"),
                    rcc_sql::BinaryOp::LtEq,
                    BoundExpr::Literal(Value::Int(2)),
                ),
            }),
            // joining on id (the clustered order) but rows 1 and 2 carry a
            // NULL k — join on k instead would break order; join on id and
            // check NULL handling via k on a second assert below
            left_key: BoundExpr::col("a", "id"),
            right_key: BoundExpr::col("b", "id"),
            kind: JoinKind::Inner,
        };
        let r = execute_plan(&plan, &ctx).unwrap();
        assert_eq!(r.rows.len(), 2, "ids 1 and 2 match themselves");
    }

    #[test]
    fn distinct_treats_equal_numerics_as_duplicates() {
        let ctx = rig_with_nulls();
        let plan = PhysicalPlan::Distinct {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(scan("a")),
                exprs: vec![(BoundExpr::col("a", "k"), "k".into())],
            }),
        };
        let r = execute_plan(&plan, &ctx).unwrap();
        // distinct over {10, NULL, 10, NULL, 20} → {10, NULL, 20}
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn limit_zero_and_overlong() {
        let ctx = rig_with_nulls();
        let zero = PhysicalPlan::Limit {
            input: Box::new(scan("a")),
            n: 0,
        };
        assert!(execute_plan(&zero, &ctx).unwrap().rows.is_empty());
        let long = PhysicalPlan::Limit {
            input: Box::new(scan("a")),
            n: 1000,
        };
        assert_eq!(execute_plan(&long, &ctx).unwrap().rows.len(), 5);
    }

    /// Every edge-case plan must agree between the batched engine and the
    /// row reference engine, row for row, in order.
    #[test]
    fn batched_matches_row_reference_on_edge_cases() {
        let ctx = rig_with_nulls();
        let plans = vec![
            self_join(JoinKind::Inner),
            self_join(JoinKind::Semi),
            self_join(JoinKind::Anti),
            PhysicalPlan::Distinct {
                input: Box::new(PhysicalPlan::Project {
                    input: Box::new(scan("a")),
                    exprs: vec![(BoundExpr::col("a", "k"), "k".into())],
                }),
            },
            PhysicalPlan::Limit {
                input: Box::new(scan("a")),
                n: 3,
            },
        ];
        for plan in &plans {
            let batched = execute_plan(plan, &ctx).unwrap();
            let rowwise = crate::rowref::execute_plan_rows(plan, &ctx).unwrap();
            assert_eq!(batched.rows, rowwise.rows, "plan diverged: {plan:?}");
        }
    }

    #[test]
    fn filter_on_null_comparison_drops_rows() {
        let ctx = rig_with_nulls();
        // k = 10 is NULL for null rows → not truthy → dropped
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan("a")),
            predicate: BoundExpr::binary(
                BoundExpr::col("a", "k"),
                rcc_sql::BinaryOp::Eq,
                BoundExpr::Literal(Value::Int(10)),
            ),
        };
        assert_eq!(execute_plan(&plan, &ctx).unwrap().rows.len(), 2);
        // IS NULL finds them
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan("a")),
            predicate: BoundExpr::IsNull {
                expr: Box::new(BoundExpr::col("a", "k")),
                negated: false,
            },
        };
        assert_eq!(execute_plan(&plan, &ctx).unwrap().rows.len(), 2);
    }
}
