//! Wire format for remote query results.
//!
//! The cache and the back-end run in one process here, but the experiments
//! charge remote plans by *bytes shipped*, so results really are encoded to
//! a byte buffer and decoded again on receipt — the byte counts the
//! counters and the simulated network use are the true serialized sizes,
//! not estimates.
//!
//! Layout (little-endian):
//!
//! ```text
//! u32 column count
//!   per column: u16 name length, name bytes, u8 type tag
//! u32 row count
//!   per row, per column: u8 value tag, payload
//! ```

use crate::batch::Batch;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rcc_common::{Column, DataType, Error, Result, Row, Schema, Value};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_TS: u8 = 5;

fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => TAG_INT,
        DataType::Float => TAG_FLOAT,
        DataType::Str => TAG_STR,
        DataType::Bool => TAG_BOOL,
        DataType::Timestamp => TAG_TS,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        TAG_INT => DataType::Int,
        TAG_FLOAT => DataType::Float,
        TAG_STR => DataType::Str,
        TAG_BOOL => DataType::Bool,
        TAG_TS => DataType::Timestamp,
        other => return Err(Error::Remote(format!("bad wire type tag {other}"))),
    })
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TS);
            buf.put_i64_le(*t);
        }
    }
}

fn put_header(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32_le(schema.len() as u32);
    for c in schema.columns() {
        let name = c.name.as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(type_tag(c.data_type));
    }
}

/// Encode a result set.
pub fn encode_result(schema: &Schema, rows: &[Row]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + rows.len() * schema.len() * 12);
    put_header(&mut buf, schema);
    buf.put_u32_le(rows.len() as u32);
    for row in rows {
        for v in row.values() {
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Encode a batched result set straight from column buffers — no `Row`
/// materialization. Byte-identical to [`encode_result`] over the
/// equivalent rows: the wire layout is row-major, so logical rows are
/// walked in order, reading values column by column (through the selection
/// vector if one is present).
pub fn encode_batches(schema: &Schema, batches: &[Batch]) -> Bytes {
    let nrows: usize = batches.iter().map(Batch::len).sum();
    let mut buf = BytesMut::with_capacity(64 + nrows * schema.len() * 12);
    put_header(&mut buf, schema);
    buf.put_u32_le(nrows as u32);
    for batch in batches {
        for i in 0..batch.len() {
            let p = batch.phys(i);
            for col in &batch.columns {
                put_value(&mut buf, &col[p]);
            }
        }
    }
    buf.freeze()
}

/// Decode a result set; validates framing and rejects truncated buffers.
pub fn decode_result(mut buf: Bytes) -> Result<(Schema, Vec<Row>)> {
    fn need(buf: &Bytes, n: usize) -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Remote("truncated wire payload".into()))
        } else {
            Ok(())
        }
    }
    need(&buf, 4)?;
    let ncols = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        need(&buf, 2)?;
        let nlen = buf.get_u16_le() as usize;
        need(&buf, nlen + 1)?;
        let name = String::from_utf8(buf.copy_to_bytes(nlen).to_vec())
            .map_err(|_| Error::Remote("bad column name encoding".into()))?;
        let dt = tag_type(buf.get_u8())?;
        columns.push(Column::new(name, dt));
    }
    need(&buf, 4)?;
    let nrows = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut values = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            need(&buf, 1)?;
            let tag = buf.get_u8();
            let v = match tag {
                TAG_NULL => Value::Null,
                TAG_INT => {
                    need(&buf, 8)?;
                    Value::Int(buf.get_i64_le())
                }
                TAG_FLOAT => {
                    need(&buf, 8)?;
                    Value::Float(buf.get_f64_le())
                }
                TAG_STR => {
                    need(&buf, 4)?;
                    let len = buf.get_u32_le() as usize;
                    need(&buf, len)?;
                    Value::Str(
                        String::from_utf8(buf.copy_to_bytes(len).to_vec())
                            .map_err(|_| Error::Remote("bad string encoding".into()))?,
                    )
                }
                TAG_BOOL => {
                    need(&buf, 1)?;
                    Value::Bool(buf.get_u8() != 0)
                }
                TAG_TS => {
                    need(&buf, 8)?;
                    Value::Timestamp(buf.get_i64_le())
                }
                other => return Err(Error::Remote(format!("bad wire value tag {other}"))),
            };
            values.push(v);
        }
        rows.push(Row::new(values));
    }
    if buf.has_remaining() {
        return Err(Error::Remote("trailing bytes in wire payload".into()));
    }
    Ok((Schema::new(columns), rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("s", DataType::Str),
            Column::new("f", DataType::Float),
            Column::new("b", DataType::Bool),
            Column::new("t", DataType::Timestamp),
        ]);
        let rows = vec![
            Row::new(vec![
                Value::Int(42),
                Value::from("héllo"),
                Value::Float(-1.5),
                Value::Bool(true),
                Value::Timestamp(99),
            ]),
            Row::new(vec![
                Value::Null,
                Value::from(""),
                Value::Float(f64::MAX),
                Value::Bool(false),
                Value::Null,
            ]),
        ];
        (schema, rows)
    }

    #[test]
    fn roundtrip() {
        let (schema, rows) = sample();
        let bytes = encode_result(&schema, &rows);
        let (schema2, rows2) = decode_result(bytes).unwrap();
        assert_eq!(rows, rows2);
        assert_eq!(schema.len(), schema2.len());
        for (a, b) in schema.columns().iter().zip(schema2.columns()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.data_type, b.data_type);
        }
    }

    #[test]
    fn empty_result() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let bytes = encode_result(&schema, &[]);
        let (s2, rows) = decode_result(bytes).unwrap();
        assert_eq!(s2.len(), 1);
        assert!(rows.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let (schema, rows) = sample();
        let bytes = encode_result(&schema, &rows);
        for cut in [0, 3, 10, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(decode_result(truncated).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let (schema, rows) = sample();
        let mut extended = encode_result(&schema, &rows).to_vec();
        extended.push(0xFF);
        assert!(decode_result(Bytes::from(extended)).is_err());
    }

    /// The batched encoder must be byte-for-byte identical to the row
    /// encoder — including across batch boundaries and through selection
    /// vectors.
    #[test]
    fn encode_batches_is_byte_identical_to_rows() {
        let (schema, rows) = sample();
        let golden = encode_result(&schema, &rows);
        // one dense batch
        let one = Batch::from_rows(schema.len(), rows.clone());
        assert_eq!(encode_batches(&schema, &[one]), golden);
        // two single-row batches
        let split: Vec<Batch> = rows
            .iter()
            .map(|r| Batch::from_rows(schema.len(), vec![r.clone()]))
            .collect();
        assert_eq!(encode_batches(&schema, &split), golden);
        // a selected batch: rows interleaved with rejects, sel picks the
        // original two
        let mut padded = vec![rows[0].clone(), rows[0].clone(), rows[1].clone()];
        padded.insert(1, Row::new(vec![Value::Int(0); 5]));
        let selected = Batch::from_rows(schema.len(), padded).with_sel(vec![0, 3]);
        assert_eq!(encode_batches(&schema, &[selected]), golden);
        // empty set
        assert_eq!(
            encode_batches(&schema, &[]),
            encode_result(&schema, &[]),
            "empty batched result matches empty row result"
        );
    }

    #[test]
    fn wire_size_tracks_content() {
        let schema = Schema::new(vec![Column::new("x", DataType::Str)]);
        let small = encode_result(&schema, &[Row::new(vec![Value::from("a")])]);
        let big = encode_result(&schema, &[Row::new(vec![Value::Str("a".repeat(1000))])]);
        assert!(big.len() > small.len() + 990);
    }
}
