//! Execution context: storage, the remote service, clock, counters.

use parking_lot::Mutex;
use rcc_common::{Clock, RegionId, Result, Row, Schema, Timestamp};
use rcc_storage::StorageEngine;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The cache's window to the back-end server. Implemented by the MTCache
/// crate's `BackendServer`; the executor only knows it can ship SQL text
/// and get rows back.
pub trait RemoteService: Send + Sync + std::fmt::Debug {
    /// Execute `sql` at the back-end against the latest snapshot.
    fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)>;
}

/// Execution statistics, shared across queries so experiments can measure
/// workload distribution (paper Fig. 4.2).
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Currency guards that passed (local branch taken).
    pub local_branches: AtomicU64,
    /// Currency guards that failed (remote branch taken).
    pub remote_branches: AtomicU64,
    /// Remote queries actually shipped.
    pub remote_queries: AtomicU64,
    /// Rows received from the back-end.
    pub rows_shipped: AtomicU64,
}

impl ExecCounters {
    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.local_branches.store(0, Ordering::Relaxed);
        self.remote_branches.store(0, Ordering::Relaxed);
        self.remote_queries.store(0, Ordering::Relaxed);
        self.rows_shipped.store(0, Ordering::Relaxed);
    }

    /// Fraction of guard evaluations that chose the local branch.
    pub fn local_fraction(&self) -> f64 {
        let l = self.local_branches.load(Ordering::Relaxed) as f64;
        let r = self.remote_branches.load(Ordering::Relaxed) as f64;
        if l + r == 0.0 {
            0.0
        } else {
            l / (l + r)
        }
    }
}

/// One guard evaluation, recorded for the session layer (timeline
/// consistency) and for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardObservation {
    /// Region checked.
    pub region: RegionId,
    /// Heartbeat timestamp found (None: table/row missing).
    pub heartbeat: Option<Timestamp>,
    /// Whether the local branch was chosen.
    pub chose_local: bool,
}

/// Everything an operator needs at run time.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Local storage engine (cached views + heartbeat tables at the cache;
    /// master tables at the back-end).
    pub storage: Arc<StorageEngine>,
    /// Back-end access for remote branches (None at the back-end itself).
    pub remote: Option<Arc<dyn RemoteService>>,
    /// Clock supplying `getdate()` for guards and expressions.
    pub clock: Arc<dyn Clock>,
    /// Shared statistics.
    pub counters: Arc<ExecCounters>,
    /// Timeline-consistency floors: a guard for region R additionally
    /// requires `heartbeat ≥ floor[R]` so later queries in a TIMEORDERED
    /// session never read older data than earlier ones (paper Sec. 2.3).
    pub timeline_floor: Arc<HashMap<RegionId, Timestamp>>,
    /// Guard evaluations observed while executing, in plan order.
    pub observations: Arc<Mutex<Vec<GuardObservation>>>,
    /// When true, currency guards pass unconditionally (the `ServeStale`
    /// violation policy: return possibly stale data, flagged via the
    /// recorded observations). Never set on the normal path.
    pub force_local: bool,
}

impl ExecContext {
    /// Context for executing at the cache.
    pub fn new(
        storage: Arc<StorageEngine>,
        remote: Option<Arc<dyn RemoteService>>,
        clock: Arc<dyn Clock>,
    ) -> ExecContext {
        ExecContext {
            storage,
            remote,
            clock,
            counters: Arc::new(ExecCounters::default()),
            timeline_floor: Arc::new(HashMap::new()),
            observations: Arc::new(Mutex::new(Vec::new())),
            force_local: false,
        }
    }

    /// Same context with different timeline floors (used per session).
    pub fn with_timeline_floor(&self, floor: HashMap<RegionId, Timestamp>) -> ExecContext {
        ExecContext { timeline_floor: Arc::new(floor), ..self.clone() }
    }

    /// Drain the observations recorded so far.
    pub fn take_observations(&self) -> Vec<GuardObservation> {
        std::mem::take(&mut self.observations.lock())
    }

    /// Record a guard outcome.
    pub fn record_guard(&self, obs: GuardObservation) {
        if obs.chose_local {
            self.counters.local_branches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.remote_branches.fetch_add(1, Ordering::Relaxed);
        }
        self.observations.lock().push(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::SimClock;

    #[test]
    fn counters_track_fractions() {
        let c = ExecCounters::default();
        assert_eq!(c.local_fraction(), 0.0);
        c.local_branches.fetch_add(3, Ordering::Relaxed);
        c.remote_branches.fetch_add(1, Ordering::Relaxed);
        assert!((c.local_fraction() - 0.75).abs() < 1e-9);
        c.reset();
        assert_eq!(c.local_branches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn record_guard_updates_counters_and_log() {
        let ctx = ExecContext::new(
            Arc::new(StorageEngine::new()),
            None,
            Arc::new(SimClock::new()),
        );
        ctx.record_guard(GuardObservation {
            region: RegionId(1),
            heartbeat: Some(Timestamp(5)),
            chose_local: true,
        });
        ctx.record_guard(GuardObservation { region: RegionId(1), heartbeat: None, chose_local: false });
        assert_eq!(ctx.counters.local_branches.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.counters.remote_branches.load(Ordering::Relaxed), 1);
        let obs = ctx.take_observations();
        assert_eq!(obs.len(), 2);
        assert!(ctx.take_observations().is_empty());
    }
}
