//! Execution context: storage, the remote service, clock, counters.

use parking_lot::Mutex;
use rcc_common::{Clock, Duration, RegionId, Result, Row, ScanPool, Schema, Timestamp};
use rcc_obs::{MetricsRegistry, TraceRef};
use rcc_storage::StorageEngine;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The cache's window to the back-end server. Implemented by the MTCache
/// crate's `BackendServer`; the executor only knows it can ship SQL text
/// and get rows back.
pub trait RemoteService: Send + Sync + std::fmt::Debug {
    /// Execute `sql` at the back-end against the latest snapshot.
    fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)>;

    /// Like [`RemoteService::execute`], also reporting the wire-payload
    /// size in bytes. The default (used by test fakes) reports 0 bytes.
    fn execute_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        self.execute(sql).map(|(schema, rows)| (schema, rows, 0))
    }

    /// Like [`RemoteService::execute_with_bytes`], carrying the query's
    /// trace so a networked implementation can propagate trace context over
    /// the wire and merge the remote span tree back in. The default (local
    /// back-ends, test fakes) ignores the trace.
    fn execute_traced(
        &self,
        sql: &str,
        trace: Option<&TraceRef>,
    ) -> Result<(Schema, Vec<Row>, u64)> {
        let _ = trace;
        self.execute_with_bytes(sql)
    }
}

/// Execution statistics, shared across queries so experiments can measure
/// workload distribution (paper Fig. 4.2).
///
/// This is a thin facade over [`rcc_obs::MetricsRegistry`]: the atomics
/// here remain the source of truth (bench binaries poke them directly),
/// and [`ExecCounters::register_metrics`] installs a collector that mirrors
/// them into the registry at every snapshot/render — so [`reset`] is
/// reflected there too.
///
/// [`reset`]: ExecCounters::reset
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Currency guards that passed (local branch taken).
    pub local_branches: AtomicU64,
    /// Currency guards that failed (remote branch taken).
    pub remote_branches: AtomicU64,
    /// Remote queries actually shipped.
    pub remote_queries: AtomicU64,
    /// Rows received from the back-end.
    pub rows_shipped: AtomicU64,
    /// Guard observations discarded because the per-context log was full.
    pub observations_dropped: AtomicU64,
    /// Scans executed morsel-parallel on the worker pool.
    pub parallel_scans: AtomicU64,
    /// Scans executed serially (no pool, or too small to split).
    pub serial_scans: AtomicU64,
    /// Total morsels dispatched to the scan pool.
    pub scan_morsels: AtomicU64,
    /// Column batches delivered at query roots by the batched engine.
    pub batches_produced: AtomicU64,
}

impl ExecCounters {
    /// Reset all counters to zero. Mirrored registries pick the reset up
    /// at their next snapshot/render.
    pub fn reset(&self) {
        self.local_branches.store(0, Ordering::Relaxed);
        self.remote_branches.store(0, Ordering::Relaxed);
        self.remote_queries.store(0, Ordering::Relaxed);
        self.rows_shipped.store(0, Ordering::Relaxed);
        self.observations_dropped.store(0, Ordering::Relaxed);
        self.parallel_scans.store(0, Ordering::Relaxed);
        self.serial_scans.store(0, Ordering::Relaxed);
        self.scan_morsels.store(0, Ordering::Relaxed);
        self.batches_produced.store(0, Ordering::Relaxed);
    }

    /// Fraction of guard evaluations that chose the local branch.
    ///
    /// Returns `0.0` (never `NaN`) when no guards have fired yet: with no
    /// evidence, the conservative claim is that nothing was served
    /// locally. Callers that must distinguish "no guards" from "all
    /// remote" should check `local_branches + remote_branches` first.
    pub fn local_fraction(&self) -> f64 {
        let l = self.local_branches.load(Ordering::Relaxed) as f64;
        let r = self.remote_branches.load(Ordering::Relaxed) as f64;
        if l + r == 0.0 {
            0.0
        } else {
            l / (l + r)
        }
    }

    /// Mirror these counters into `registry` (names under `rcc_*`). The
    /// installed collector runs before every registry snapshot/render, so
    /// increments *and* [`ExecCounters::reset`] stay visible there.
    pub fn register_metrics(self: &Arc<Self>, registry: &MetricsRegistry) {
        registry.describe(
            "rcc_guard_local_total",
            "Currency guards that chose the local branch.",
        );
        registry.describe(
            "rcc_guard_remote_total",
            "Currency guards that chose the remote branch.",
        );
        registry.describe(
            "rcc_remote_queries_total",
            "Queries shipped to the back-end.",
        );
        registry.describe("rcc_rows_shipped_total", "Rows received from the back-end.");
        registry.describe(
            "rcc_observations_dropped_total",
            "Guard observations discarded because a context log hit its cap.",
        );
        registry.describe(
            "rcc_scan_parallel_total",
            "Scans executed morsel-parallel on the worker pool.",
        );
        registry.describe(
            "rcc_scan_serial_total",
            "Scans executed serially (no pool, or too small to split).",
        );
        registry.describe(
            "rcc_scan_morsels_total",
            "Morsels dispatched to the scan worker pool.",
        );
        registry.describe(
            "rcc_batch_produced_total",
            "Column batches delivered at query roots.",
        );
        let local = registry.counter("rcc_guard_local_total", &[]);
        let remote = registry.counter("rcc_guard_remote_total", &[]);
        let queries = registry.counter("rcc_remote_queries_total", &[]);
        let rows = registry.counter("rcc_rows_shipped_total", &[]);
        let dropped = registry.counter("rcc_observations_dropped_total", &[]);
        let parallel = registry.counter("rcc_scan_parallel_total", &[]);
        let serial = registry.counter("rcc_scan_serial_total", &[]);
        let morsels = registry.counter("rcc_scan_morsels_total", &[]);
        let batches = registry.counter("rcc_batch_produced_total", &[]);
        let this = Arc::clone(self);
        registry.register_collector(move || {
            local.set(this.local_branches.load(Ordering::Relaxed));
            remote.set(this.remote_branches.load(Ordering::Relaxed));
            queries.set(this.remote_queries.load(Ordering::Relaxed));
            rows.set(this.rows_shipped.load(Ordering::Relaxed));
            dropped.set(this.observations_dropped.load(Ordering::Relaxed));
            parallel.set(this.parallel_scans.load(Ordering::Relaxed));
            serial.set(this.serial_scans.load(Ordering::Relaxed));
            morsels.set(this.scan_morsels.load(Ordering::Relaxed));
            batches.set(this.batches_produced.load(Ordering::Relaxed));
        });
    }
}

/// Per-query accumulators feeding `QueryStats` phase timings: nanoseconds
/// spent in guard evaluation and remote shipping, plus remote volume.
/// A fresh meter is attached to each query's [`ExecContext`].
#[derive(Debug, Default)]
pub struct QueryMeter {
    /// Nanoseconds spent evaluating currency guards.
    pub guard_nanos: AtomicU64,
    /// Currency guards evaluated (the count behind `guard_nanos`); guard
    /// elision shows up here as evaluations that no longer happen.
    pub guard_evals: AtomicU64,
    /// Nanoseconds spent in remote round trips (including decode).
    pub remote_nanos: AtomicU64,
    /// Remote sub-queries issued.
    pub remote_queries: AtomicU64,
    /// Wire-payload bytes received from the back-end.
    pub bytes_shipped: AtomicU64,
}

impl QueryMeter {
    /// Nanoseconds→`Duration` helper for the guard-eval total.
    pub fn guard_eval(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.guard_nanos.load(Ordering::Relaxed))
    }

    /// Number of guard evaluations recorded.
    pub fn guard_eval_count(&self) -> u64 {
        self.guard_evals.load(Ordering::Relaxed)
    }

    /// Nanoseconds→`Duration` helper for the remote-ship total.
    pub fn remote_ship(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.remote_nanos.load(Ordering::Relaxed))
    }
}

/// One guard evaluation, recorded for the session layer (timeline
/// consistency) and for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardObservation {
    /// Region checked.
    pub region: RegionId,
    /// Heartbeat timestamp found (None: table/row missing).
    pub heartbeat: Option<Timestamp>,
    /// Whether the local branch was chosen.
    pub chose_local: bool,
    /// Currency bound promised by the clause that produced this guard —
    /// kept so delivered-staleness accounting can compute slack
    /// (bound − delivered) per served snapshot.
    pub bound: Duration,
}

/// Everything an operator needs at run time.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Local storage engine (cached views + heartbeat tables at the cache;
    /// master tables at the back-end).
    pub storage: Arc<StorageEngine>,
    /// Back-end access for remote branches (None at the back-end itself).
    pub remote: Option<Arc<dyn RemoteService>>,
    /// Clock supplying `getdate()` for guards and expressions.
    pub clock: Arc<dyn Clock>,
    /// Shared statistics.
    pub counters: Arc<ExecCounters>,
    /// Timeline-consistency floors: a guard for region R additionally
    /// requires `heartbeat ≥ floor[R]` so later queries in a TIMEORDERED
    /// session never read older data than earlier ones (paper Sec. 2.3).
    pub timeline_floor: Arc<HashMap<RegionId, Timestamp>>,
    /// Guard evaluations observed while executing, in plan order.
    pub observations: Arc<Mutex<Vec<GuardObservation>>>,
    /// When true, currency guards pass unconditionally (the `ServeStale`
    /// violation policy: return possibly stale data, flagged via the
    /// recorded observations). Never set on the normal path.
    pub force_local: bool,
    /// Per-query phase accumulators (guard/remote time, bytes).
    pub meter: Arc<QueryMeter>,
    /// Registry for guard-staleness histograms and wire counters; `None`
    /// outside a metered server (e.g. unit tests, back-end execution).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Worker pool for morsel-driven parallel scans; `None` ⇒ every scan
    /// runs serially on the calling thread.
    pub scan_pool: Option<Arc<ScanPool>>,
    /// Target rows per morsel when splitting a scan for the pool. Scans
    /// smaller than two morsels stay serial (splitting them buys nothing).
    pub morsel_rows: usize,
    /// Target logical rows per [`crate::Batch`] in the batched engine.
    pub batch_rows: usize,
    /// The query's trace, shared down to the remote transport so spans
    /// recorded on the other side of the wire land in the same tree.
    /// `None` outside a traced server path.
    pub trace: Option<TraceRef>,
}

/// Default morsel granularity: big enough that per-morsel dispatch cost is
/// noise, small enough that a TPC-D region scan splits across the pool.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Cap on the per-context guard-observation log. Sessions that never call
/// [`ExecContext::take_observations`] stop accumulating here and count
/// drops in [`ExecCounters::observations_dropped`] instead.
pub const MAX_OBSERVATIONS: usize = 4096;

impl ExecContext {
    /// Context for executing at the cache.
    pub fn new(
        storage: Arc<StorageEngine>,
        remote: Option<Arc<dyn RemoteService>>,
        clock: Arc<dyn Clock>,
    ) -> ExecContext {
        ExecContext {
            storage,
            remote,
            clock,
            counters: Arc::new(ExecCounters::default()),
            timeline_floor: Arc::new(HashMap::new()),
            observations: Arc::new(Mutex::new(Vec::new())),
            force_local: false,
            meter: Arc::new(QueryMeter::default()),
            metrics: None,
            scan_pool: None,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            batch_rows: crate::batch::DEFAULT_BATCH_ROWS,
            trace: None,
        }
    }

    /// Same context executing scans on `pool` (None reverts to serial).
    pub fn with_scan_pool(&self, pool: Option<Arc<ScanPool>>) -> ExecContext {
        ExecContext {
            scan_pool: pool,
            ..self.clone()
        }
    }

    /// Same context with different timeline floors (used per session).
    pub fn with_timeline_floor(&self, floor: HashMap<RegionId, Timestamp>) -> ExecContext {
        ExecContext {
            timeline_floor: Arc::new(floor),
            ..self.clone()
        }
    }

    /// Same context reporting into `registry`.
    pub fn with_metrics(&self, registry: Arc<MetricsRegistry>) -> ExecContext {
        ExecContext {
            metrics: Some(registry),
            ..self.clone()
        }
    }

    /// Drain the observations recorded so far.
    pub fn take_observations(&self) -> Vec<GuardObservation> {
        std::mem::take(&mut self.observations.lock())
    }

    /// Record a guard outcome. The log is bounded by [`MAX_OBSERVATIONS`];
    /// overflow is counted in [`ExecCounters::observations_dropped`] (and
    /// the counters above still advance), so long-running sessions that
    /// never drain cannot grow memory without limit.
    pub fn record_guard(&self, obs: GuardObservation) {
        if obs.chose_local {
            self.counters.local_branches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters
                .remote_branches
                .fetch_add(1, Ordering::Relaxed);
        }
        let mut log = self.observations.lock();
        if log.len() < MAX_OBSERVATIONS {
            log.push(obs);
        } else {
            self.counters
                .observations_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::SimClock;

    #[test]
    fn counters_track_fractions() {
        let c = ExecCounters::default();
        assert_eq!(c.local_fraction(), 0.0);
        c.local_branches.fetch_add(3, Ordering::Relaxed);
        c.remote_branches.fetch_add(1, Ordering::Relaxed);
        assert!((c.local_fraction() - 0.75).abs() < 1e-9);
        c.reset();
        assert_eq!(c.local_branches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn record_guard_updates_counters_and_log() {
        let ctx = ExecContext::new(
            Arc::new(StorageEngine::new()),
            None,
            Arc::new(SimClock::new()),
        );
        ctx.record_guard(GuardObservation {
            region: RegionId(1),
            heartbeat: Some(Timestamp(5)),
            chose_local: true,
            bound: Duration::from_secs(10),
        });
        ctx.record_guard(GuardObservation {
            region: RegionId(1),
            heartbeat: None,
            chose_local: false,
            bound: Duration::ZERO,
        });
        assert_eq!(ctx.counters.local_branches.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.counters.remote_branches.load(Ordering::Relaxed), 1);
        let obs = ctx.take_observations();
        assert_eq!(obs.len(), 2);
        assert!(ctx.take_observations().is_empty());
    }

    #[test]
    fn observation_log_is_bounded() {
        let ctx = ExecContext::new(
            Arc::new(StorageEngine::new()),
            None,
            Arc::new(SimClock::new()),
        );
        for _ in 0..(MAX_OBSERVATIONS + 10) {
            ctx.record_guard(GuardObservation {
                region: RegionId(1),
                heartbeat: None,
                chose_local: false,
                bound: Duration::ZERO,
            });
        }
        assert_eq!(ctx.observations.lock().len(), MAX_OBSERVATIONS);
        assert_eq!(
            ctx.counters.observations_dropped.load(Ordering::Relaxed),
            10
        );
        // counters still saw every evaluation
        assert_eq!(
            ctx.counters.remote_branches.load(Ordering::Relaxed),
            (MAX_OBSERVATIONS + 10) as u64
        );
        // draining frees the log for new entries
        ctx.take_observations();
        ctx.record_guard(GuardObservation {
            region: RegionId(1),
            heartbeat: None,
            chose_local: true,
            bound: Duration::ZERO,
        });
        assert_eq!(ctx.observations.lock().len(), 1);
    }

    #[test]
    fn facade_mirror_follows_increments_and_resets() {
        let counters = Arc::new(ExecCounters::default());
        let registry = MetricsRegistry::new();
        counters.register_metrics(&registry);
        counters.local_branches.fetch_add(3, Ordering::Relaxed);
        counters.rows_shipped.fetch_add(7, Ordering::Relaxed);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rcc_guard_local_total"), 3);
        assert_eq!(snap.counter("rcc_rows_shipped_total"), 7);
        counters.reset();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rcc_guard_local_total"), 0);
        assert_eq!(snap.counter("rcc_rows_shipped_total"), 0);
    }
}
