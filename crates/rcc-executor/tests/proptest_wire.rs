//! Property tests for the remote-result wire format: any schema/row
//! combination must round-trip bit-exactly, every proper prefix of a
//! payload must be rejected as truncated, and trailing garbage must be
//! detected.

use bytes::Bytes;
use proptest::prelude::*;
use rcc_common::{Column, DataType, Row, Schema, Value};
use rcc_executor::wire::{decode_result, encode_result};

fn dt(code: u8) -> DataType {
    match code % 5 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        _ => DataType::Timestamp,
    }
}

/// Build a value of the column's type from raw generated material; `sel == 0`
/// yields NULL (legal in any column).
fn make_value(t: DataType, sel: u8, i: i64, s: &str) -> Value {
    if sel == 0 {
        return Value::Null;
    }
    match t {
        DataType::Int => Value::Int(i),
        DataType::Float => Value::Float(i as f64 / 3.0),
        DataType::Str => Value::Str(s.to_string()),
        DataType::Bool => Value::Bool(i % 2 == 0),
        DataType::Timestamp => Value::Timestamp(i),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn random_results_roundtrip_and_reject_corruption(
        types in prop::collection::vec(0u8..5, 1..6),
        names in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 6),
        cells in prop::collection::vec(
            prop::collection::vec((0u8..6, -1_000_000i64..1_000_000, "[a-zA-Z0-9_]{0,12}"), 1..7),
            0..8,
        ),
        cut_seed in 0usize..1_000_000,
    ) {
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(j, t)| Column::new(format!("{}_{j}", names[j % names.len()]), dt(*t)))
                .collect(),
        );
        let rows: Vec<Row> = cells
            .iter()
            .map(|cell| {
                Row::new(
                    types
                        .iter()
                        .enumerate()
                        .map(|(j, t)| {
                            let (sel, i, s) = &cell[j % cell.len()];
                            make_value(dt(*t), *sel, *i, s)
                        })
                        .collect(),
                )
            })
            .collect();

        let bytes = encode_result(&schema, &rows);

        // 1. bit-exact round trip
        let decoded = decode_result(bytes.clone());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let (schema2, rows2) = decoded.unwrap();
        prop_assert_eq!(&rows, &rows2);
        prop_assert_eq!(schema.len(), schema2.len());
        for (a, b) in schema.columns().iter().zip(schema2.columns()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.data_type, b.data_type);
        }

        // 2. every proper prefix is a framing error, never a silent
        //    short read (the declared column/row counts pin the length)
        let cut = cut_seed % bytes.len();
        prop_assert!(
            decode_result(bytes.slice(0..cut)).is_err(),
            "truncation at {cut}/{} went undetected",
            bytes.len()
        );

        // 3. trailing bytes after a well-formed payload are rejected
        let mut extended = bytes.to_vec();
        extended.push((cut_seed % 251) as u8);
        prop_assert!(decode_result(Bytes::from(extended)).is_err());
    }
}
