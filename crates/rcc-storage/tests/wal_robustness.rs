//! WAL robustness: property tests of the record codec round-trip, plus
//! torn-tail and bit-flip corruption sweeps. The invariant under any
//! corruption is *prefix recovery*: the scan yields some prefix of the
//! records actually appended — it stops at the first bad CRC and never
//! resurrects a record that was not durably written, nor invents one.

use proptest::prelude::*;
use rcc_common::{Row, Value};
use rcc_storage::table::RowChange;
use rcc_storage::wal::{
    decode_record, encode_record, frame_record, scan, CommitRecord, SyncPolicy, Wal, WalRecord,
    WatermarkRecord, WAL_MAGIC,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (i64::MIN..=i64::MAX).prop_map(Value::Int),
        // Finite only: NaN round-trips bit-exact but fails `==` below.
        (u64::MIN..=u64::MAX)
            .prop_map(f64::from_bits)
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::Str),
        (0u8..2).prop_map(|b| Value::Bool(b == 1)),
        (i64::MIN..=i64::MAX).prop_map(Value::Timestamp),
    ]
}

fn row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(value(), 0..5).prop_map(Row::new)
}

fn key() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value(), 1..3)
}

fn change() -> impl Strategy<Value = RowChange> {
    prop_oneof![
        row().prop_map(RowChange::Insert),
        (key(), row()).prop_map(|(key, row)| RowChange::Update { key, row }),
        key().prop_map(|key| RowChange::Delete { key }),
    ]
}

fn record() -> impl Strategy<Value = WalRecord> {
    let commit = (
        u64::MIN..=u64::MAX,
        i64::MIN..=i64::MAX,
        proptest::collection::vec(("[a-z_]{1,12}", change()), 0..4),
    )
        .prop_map(|(id, commit_ms, changes)| {
            WalRecord::Commit(CommitRecord {
                id,
                commit_ms,
                changes,
            })
        });
    let watermark = ("[a-z_]{1,12}", u64::MIN..=u64::MAX, i64::MIN..=i64::MAX).prop_map(
        |(region, cursor, hb)| {
            WalRecord::Watermark(WatermarkRecord {
                region,
                cursor,
                heartbeat_ms: hb,
            })
        },
    );
    prop_oneof![commit, watermark]
}

/// A WAL file image: magic followed by one frame per record.
fn wal_image(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = WAL_MAGIC.to_vec();
    for rec in records {
        buf.extend_from_slice(&frame_record(&encode_record(rec)));
    }
    buf
}

/// Longest `k` such that `got == want[..k]`; `None` if `got` is not a
/// prefix of `want`.
fn prefix_len(got: &[WalRecord], want: &[WalRecord]) -> Option<usize> {
    if got.len() <= want.len() && got == &want[..got.len()] {
        Some(got.len())
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, .. ProptestConfig::default() })]

    #[test]
    fn codec_round_trips(rec in record()) {
        let payload = encode_record(&rec);
        prop_assert_eq!(decode_record(&payload).unwrap(), rec);
    }

    /// Cut the file at an arbitrary byte: the scan recovers exactly the
    /// records whose frames fit wholly inside the cut, and `valid_len`
    /// points at the end of the last of them.
    #[test]
    fn torn_tail_recovers_exact_frame_prefix(
        records in proptest::collection::vec(record(), 1..8),
        cut_bp in 0u32..=10_000,
    ) {
        let full = wal_image(&records);
        let cut = (cut_bp as usize * full.len()) / 10_000;
        let torn = &full[..cut.min(full.len())];

        let scanned = scan(torn);
        // Reconstruct the expected count by walking frame boundaries.
        let mut end = WAL_MAGIC.len();
        let mut expect = 0;
        for rec in &records {
            let next = end + 8 + encode_record(rec).len();
            if next > torn.len() {
                break;
            }
            end = next;
            expect += 1;
        }
        if torn.len() < WAL_MAGIC.len() {
            // No magic: nothing recovered, file will be rewritten.
            prop_assert_eq!(scanned.records.len(), 0);
        } else {
            prop_assert_eq!(prefix_len(&scanned.records, &records), Some(expect));
            prop_assert_eq!(scanned.valid_len, end as u64);
        }
    }

    /// Flip one bit anywhere in the image: whatever the scan returns is a
    /// prefix of what was appended. Frames after the flipped one may be
    /// lost (the scan stops), but nothing is altered or invented.
    #[test]
    fn bit_flip_never_resurrects_or_corrupts(
        records in proptest::collection::vec(record(), 1..8),
        pos_bp in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let mut buf = wal_image(&records);
        let pos = ((pos_bp as usize * buf.len()) / 10_000).min(buf.len() - 1);
        buf[pos] ^= 1 << bit;

        let scanned = scan(&buf);
        let k = prefix_len(&scanned.records, &records);
        prop_assert!(
            k.is_some(),
            "corrupted scan must yield a strict prefix, got {:?}",
            scanned.records
        );
        if pos >= WAL_MAGIC.len() {
            // Frames strictly before the flipped byte are untouched.
            let mut intact = 0;
            let mut end = WAL_MAGIC.len();
            for rec in &records {
                let next = end + 8 + encode_record(rec).len();
                if next > pos {
                    break;
                }
                end = next;
                intact += 1;
            }
            prop_assert!(
                k.unwrap() >= intact,
                "flip at {pos} lost frame(s) before it: {} < {intact}",
                k.unwrap()
            );
        }
    }
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_wal(tag: &str) -> PathBuf {
    let n = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rcc-wal-robust-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

/// End-to-end on a real file: every torn cut of an fsynced log reopens to
/// the exact frame prefix, reports the cut bytes, and physically truncates
/// so a subsequent append produces a clean log again.
#[test]
fn every_cut_point_reopens_to_a_clean_prefix() {
    let records: Vec<WalRecord> = (0..5)
        .map(|i| {
            WalRecord::Commit(CommitRecord {
                id: i + 1,
                commit_ms: (i as i64 + 1) * 1_000,
                changes: vec![(
                    format!("t{i}"),
                    RowChange::Insert(Row::new(vec![Value::Int(i as i64)])),
                )],
            })
        })
        .collect();
    let path = temp_wal("cuts");
    {
        let (wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
        for rec in &records {
            wal.append(rec).unwrap();
        }
    }
    let full = std::fs::read(&path).unwrap();
    assert_eq!(full, wal_image(&records), "file image matches the codec");

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let (_, recovery) = Wal::open(&path, SyncPolicy::Always).unwrap();
        let k = prefix_len(&recovery.records, &records)
            .unwrap_or_else(|| panic!("cut {cut}: not a prefix: {:?}", recovery.records));
        // The recovered count is exactly the number of whole frames.
        let mut end = WAL_MAGIC.len();
        let mut expect = 0;
        for rec in &records {
            let next = end + 8 + encode_record(rec).len();
            if next > cut {
                break;
            }
            end = next;
            expect += 1;
        }
        assert_eq!(k, expect, "cut {cut}");
        if cut >= WAL_MAGIC.len() {
            assert_eq!(recovery.truncated_bytes, (cut - end) as u64, "cut {cut}");
        }
        // The torn tail was physically removed: reopening is clean.
        let (_, again) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(again.truncated_bytes, 0, "cut {cut}");
        assert_eq!(again.records.len(), expect, "cut {cut}");
    }
    std::fs::remove_file(&path).unwrap();
}

/// An uncommitted (never-written) record cannot appear after recovery, even
/// when the tail bytes are garbage that happens to look frame-like.
#[test]
fn garbage_tail_never_decodes_to_new_records() {
    let committed = WalRecord::Watermark(WatermarkRecord {
        region: "CR1".into(),
        cursor: 42,
        heartbeat_ms: 41_000,
    });
    let path = temp_wal("garbage");
    {
        let (wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
        wal.append(&committed).unwrap();
    }
    let clean = std::fs::read(&path).unwrap();
    for seed in 0u8..32 {
        let mut buf = clean.clone();
        // Deterministic pseudo-garbage tail of varying length.
        let tail: Vec<u8> = (0..(seed as usize * 3 + 1))
            .map(|i| {
                seed.wrapping_mul(37)
                    .wrapping_add((i as u8).wrapping_mul(11))
            })
            .collect();
        buf.extend_from_slice(&tail);
        std::fs::write(&path, &buf).unwrap();
        let (_, recovery) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(recovery.records, vec![committed.clone()], "seed {seed}");
        assert_eq!(recovery.truncated_bytes, tail.len() as u64, "seed {seed}");
    }
    std::fs::remove_file(&path).unwrap();
}
