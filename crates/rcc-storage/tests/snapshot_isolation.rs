//! Snapshot-isolation proofs for [`TableCell`]: a scan running
//! concurrently with copy-on-write publishes must observe the *whole* old
//! snapshot or the *whole* new one — never a mix of the two.
//!
//! Two layers of evidence:
//!
//! * a model check on the workspace's loom stand-in (`compat/loom`), which
//!   re-runs a small writer-vs-readers model many times with perturbed
//!   scheduling injected at `loom::thread::yield_now` call sites
//!   (`RUSTFLAGS="--cfg loom"` in CI multiplies the iteration count);
//! * a std-thread stress test at a larger scale — several reader threads
//!   scanning flat out while a writer publishes hundreds of versions.
//!
//! The version protocol makes torn reads detectable: version `v` holds
//! exactly `v` rows and every row is tagged `v`, so any snapshot mixing
//! two versions fails either the count or the uniform-tag check.

use loom::thread;
use rcc_common::{Column, DataType, Row, Schema, Value};
use rcc_storage::{KeyRange, Table, TableCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn versioned_table() -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("version", DataType::Int),
    ]);
    Table::new("t", schema, vec![0])
}

/// Publish version `v`: the table holds rows `0..v`, all tagged `v`.
fn publish_version(cell: &TableCell, v: i64) {
    cell.update(|t| {
        t.upsert(Row::new(vec![Value::Int(v - 1), Value::Int(v)]))?;
        for id in 0..v - 1 {
            t.upsert(Row::new(vec![Value::Int(id), Value::Int(v)]))?;
        }
        Ok(())
    })
    .expect("publish");
}

/// Scan a snapshot and return its version, asserting internal consistency:
/// a uniform tag and a row count equal to that tag.
fn observed_version(cell: &TableCell) -> i64 {
    let snap = cell.snapshot();
    let mut tags = Vec::new();
    snap.scan_range(
        &KeyRange::all(),
        |_| true,
        |row| {
            tags.push(row.get(1).as_int().expect("tag"));
        },
    );
    let version = tags.first().copied().unwrap_or(0);
    assert!(
        tags.iter().all(|&t| t == version),
        "torn snapshot: mixed version tags {tags:?}"
    );
    assert_eq!(
        tags.len() as i64,
        version,
        "torn snapshot: version {version} must hold exactly {version} rows"
    );
    version
}

#[test]
fn loom_scan_concurrent_with_publish_sees_whole_snapshots() {
    loom::model(|| {
        let cell = Arc::new(TableCell::new(versioned_table()));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for v in 1..=4 {
                    publish_version(&cell, v);
                    thread::yield_now();
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..6 {
                        let v = observed_version(&cell);
                        assert!(
                            v >= last,
                            "snapshots went backwards within a reader: {v} < {last}"
                        );
                        last = v;
                        thread::yield_now();
                    }
                })
            })
            .collect();
        writer.join().expect("writer");
        for r in readers {
            r.join().expect("reader");
        }
        assert_eq!(
            observed_version(&cell),
            4,
            "final state is the last publish"
        );
    });
}

#[test]
fn stress_readers_never_observe_torn_publishes() {
    const VERSIONS: i64 = 300;
    const READERS: usize = 4;

    let cell = Arc::new(TableCell::new(versioned_table()));
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scans = 0u64;
                let mut last = 0;
                while !done.load(Ordering::Relaxed) {
                    let v = observed_version(&cell);
                    assert!(v >= last, "non-monotone snapshot: {v} < {last}");
                    last = v;
                    scans += 1;
                }
                scans
            })
        })
        .collect();

    for v in 1..=VERSIONS {
        publish_version(&cell, v);
    }
    done.store(true, Ordering::Relaxed);

    let total_scans: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total_scans > 0, "readers never ran");
    assert_eq!(observed_version(&cell), VERSIONS);
    assert_eq!(cell.publish_count(), VERSIONS as u64);
}
