//! Model-based property tests for the storage engine: a `BTreeMap`
//! reference model must agree with the table under arbitrary interleavings
//! of inserts, upserts, deletes and scans; secondary-index range scans must
//! equal full-scan filtering.

use proptest::prelude::*;
use rcc_common::{Column, DataType, Row, Schema, Value};
use rcc_storage::{KeyRange, Table};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Upsert(i64, i64),
    Delete(i64),
    Get(i64),
    RangeScan(i64, i64),
    IndexScan(i64, i64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((-50i64..50), (-100i64..100)).prop_map(|(k, v)| Op::Upsert(k, v)),
        (-50i64..50).prop_map(Op::Delete),
        (-50i64..50).prop_map(Op::Get),
        ((-60i64..60), (-60i64..60)).prop_map(|(a, b)| Op::RangeScan(a.min(b), a.max(b))),
        ((-110i64..110), (-110i64..110)).prop_map(|(a, b)| Op::IndexScan(a.min(b), a.max(b))),
    ]
}

fn table() -> Table {
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Int),
    ]);
    let mut t = Table::new("t", schema, vec![0]);
    t.create_index("ix_v", vec![1]).unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn table_agrees_with_btreemap_model(ops in proptest::collection::vec(op(), 1..120)) {
        let mut table = table();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Upsert(k, v) => {
                    table.upsert(Row::new(vec![Value::Int(k), Value::Int(v)])).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let t_old = table.delete(&[Value::Int(k)]);
                    let m_old = model.remove(&k);
                    prop_assert_eq!(t_old.is_some(), m_old.is_some());
                }
                Op::Get(k) => {
                    let t_val = table
                        .get(&[Value::Int(k)])
                        .map(|r| r.get(1).as_int().unwrap());
                    prop_assert_eq!(t_val, model.get(&k).copied());
                }
                Op::RangeScan(lo, hi) => {
                    let rows = table.collect_range(
                        &KeyRange::between(Value::Int(lo), Value::Int(hi)),
                        |_| true,
                    );
                    let expect: Vec<(i64, i64)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    let got: Vec<(i64, i64)> = rows
                        .iter()
                        .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
                        .collect();
                    prop_assert_eq!(got, expect, "range [{}, {}]", lo, hi);
                }
                Op::IndexScan(lo, hi) => {
                    let via_index = table
                        .index_scan("ix_v", &KeyRange::between(Value::Int(lo), Value::Int(hi)))
                        .unwrap();
                    let mut via_filter: Vec<Row> = table
                        .collect_range(&KeyRange::all(), |r| {
                            let v = r.get(1).as_int().unwrap();
                            (lo..=hi).contains(&v)
                        });
                    // index order: (v, k); filter order: k — compare as sets
                    let mut a: Vec<(i64, i64)> = via_index
                        .iter()
                        .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
                        .collect();
                    let mut b: Vec<(i64, i64)> = via_filter
                        .drain(..)
                        .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
                        .collect();
                    a.sort();
                    b.sort();
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(table.row_count(), model.len());
        }
    }

    #[test]
    fn index_scan_results_sorted_by_index_key(
        rows in proptest::collection::btree_map(-50i64..50, -50i64..50, 0..60),
        lo in -60i64..60,
    ) {
        let mut table = table();
        for (k, v) in &rows {
            table.insert(Row::new(vec![Value::Int(*k), Value::Int(*v)])).unwrap();
        }
        let hits = table.index_scan("ix_v", &KeyRange::at_least(Value::Int(lo))).unwrap();
        for w in hits.windows(2) {
            let a = w[0].get(1).as_int().unwrap();
            let b = w[1].get(1).as_int().unwrap();
            prop_assert!(a <= b, "index scan must return index order");
        }
    }

    #[test]
    fn range_intersection_matches_double_filter(
        a_lo in -20i64..20, a_hi in -20i64..20,
        b_lo in -20i64..20, b_hi in -20i64..20,
        probe in -25i64..25,
    ) {
        let a = KeyRange::between(Value::Int(a_lo.min(a_hi)), Value::Int(a_lo.max(a_hi)));
        let b = KeyRange::between(Value::Int(b_lo.min(b_hi)), Value::Int(b_lo.max(b_hi)));
        let both = a.intersect(&b);
        let v = Value::Int(probe);
        prop_assert_eq!(both.contains(&v), a.contains(&v) && b.contains(&v));
    }

    #[test]
    fn contains_range_is_consistent_with_membership(
        a_lo in -20i64..20, a_hi in -20i64..20,
        b_lo in -20i64..20, b_hi in -20i64..20,
    ) {
        let a = KeyRange::between(Value::Int(a_lo.min(a_hi)), Value::Int(a_lo.max(a_hi)));
        let b = KeyRange::between(Value::Int(b_lo.min(b_hi)), Value::Int(b_lo.max(b_hi)));
        if a.contains_range(&b) {
            // every point of b must be in a
            for p in (b_lo.min(b_hi))..=(b_lo.max(b_hi)) {
                prop_assert!(a.contains(&Value::Int(p)), "p={p}");
            }
        }
    }
}
