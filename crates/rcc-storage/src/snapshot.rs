//! Copy-on-write table snapshots with epoch-style publication.
//!
//! The hot read path of the cache is the scan, and the paper's whole
//! premise is that scans are served locally while replication refreshes
//! arrive concurrently. Holding a reader/writer lock for the duration of a
//! scan (the pre-snapshot design) lets one refresh writer stall every
//! reader. Here a table is instead an immutable [`TableSnapshot`]
//! published through a [`TableCell`]: readers grab an `Arc` to the current
//! snapshot and then scan entirely lock-free; writers clone the current
//! snapshot (copy-on-write), mutate their private copy, and publish it
//! with an atomic epoch bump. A scan therefore never blocks behind a
//! refresh and never observes a torn table state — it sees the table
//! exactly as of some publish, in full.
//!
//! ## Publication protocol
//!
//! The cell keeps a small ring of `SLOTS` slots, each holding an
//! `Arc<Table>`, plus a monotonically increasing `epoch`. Publish `e`
//! installs the new snapshot into slot `(e + 1) % SLOTS` *before* bumping
//! the epoch (release store), so the slot named by any observed epoch
//! always holds a fully published snapshot. Readers load the epoch
//! (acquire), lock that slot's `RwLock` just long enough to clone the
//! `Arc` — an O(1) refcount bump, never held across the scan — and go.
//! A reader that gets lapped by `SLOTS` publishes between the epoch load
//! and the slot read simply clones a *newer* published snapshot, which is
//! still atomic (the slot content is only ever replaced wholesale under
//! the slot's write lock). Writers serialize on a separate mutex so two
//! publishers can never interleave their read-copy-update cycles and lose
//! an update.

use crate::table::Table;
use parking_lot::{Mutex, MutexGuard, RwLock};
use rcc_common::Result;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An immutable, atomically published table state. Everything on [`Table`]
/// that takes `&self` (scans, seeks, index reads, stats) is available on a
/// snapshot; mutation requires going back through [`TableCell`].
pub type TableSnapshot = Arc<Table>;

/// Ring size for the publication slots. Small: a reader only contends with
/// a writer if `SLOTS` publishes complete between its epoch load and its
/// slot read, and even then it just briefly waits for one `Arc` store.
const SLOTS: usize = 4;

/// Shared handle to one table: an epoch-published snapshot ring plus a
/// writer lock. Replaces the old `Arc<RwLock<Table>>` handle — readers no
/// longer take any per-scan lock, and a replication refresh can never
/// stall them.
pub struct TableCell {
    slots: [RwLock<TableSnapshot>; SLOTS],
    /// Publish epoch; `epoch % SLOTS` names the current slot.
    epoch: AtomicUsize,
    /// Serializes writers (copy-on-write cycles must not interleave).
    writer: Mutex<()>,
}

impl TableCell {
    /// Wrap `table` as the initial published snapshot.
    pub fn new(table: Table) -> TableCell {
        let initial = Arc::new(table);
        TableCell {
            slots: std::array::from_fn(|_| RwLock::new(Arc::clone(&initial))),
            epoch: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The current published snapshot. The internal slot lock is held only
    /// for the `Arc` clone — O(1), never across the caller's scan — so
    /// readers are never blocked by an in-flight refresh.
    pub fn snapshot(&self) -> TableSnapshot {
        let epoch = self.epoch.load(Ordering::Acquire);
        let guard = self.slots[epoch % SLOTS].read();
        Arc::clone(&guard)
    }

    /// Number of snapshots published so far (0 for a freshly created cell).
    /// Monotonically increasing; feeds the `rcc_snapshot_publishes_total`
    /// metric.
    pub fn publish_count(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) as u64
    }

    /// Install `snapshot` as the new current state. Caller must hold the
    /// writer mutex.
    fn install(&self, snapshot: TableSnapshot) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let next = epoch.wrapping_add(1);
        *self.slots[next % SLOTS].write() = snapshot;
        self.epoch.store(next, Ordering::Release);
    }

    /// Copy-on-write update: clone the current snapshot, apply `f` to the
    /// private copy, and publish it atomically — but only if `f` succeeds.
    /// On error nothing is published, so readers never see a partially
    /// applied batch (all-or-nothing at table granularity).
    pub fn update<R>(&self, f: impl FnOnce(&mut Table) -> Result<R>) -> Result<R> {
        let mut writer = self.begin_write();
        let r = f(&mut writer)?;
        writer.publish();
        Ok(r)
    }

    /// Start an explicit copy-on-write transaction: the returned
    /// [`TableWriter`] derefs to a private mutable [`Table`] copy; call
    /// [`TableWriter::publish`] to install it, or drop it to abort.
    /// Holds the cell's writer lock for its lifetime.
    pub fn begin_write(&self) -> TableWriter<'_> {
        let lock = self.writer.lock();
        let working = Table::clone(&self.snapshot());
        TableWriter {
            cell: self,
            _lock: lock,
            working: Some(working),
        }
    }
}

impl std::fmt::Debug for TableCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCell")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("table", &self.snapshot().name().to_string())
            .finish()
    }
}

/// An in-flight copy-on-write transaction on a [`TableCell`]. Mutations go
/// to a private copy; nothing is visible to readers until
/// [`TableWriter::publish`]. Dropping without publishing aborts.
pub struct TableWriter<'a> {
    cell: &'a TableCell,
    _lock: MutexGuard<'a, ()>,
    /// `Some` until published; `publish` moves the table out.
    working: Option<Table>,
}

impl TableWriter<'_> {
    /// Atomically publish the working copy as the new current snapshot.
    pub fn publish(mut self) {
        if let Some(working) = self.working.take() {
            self.cell.install(Arc::new(working));
        }
    }
}

impl Deref for TableWriter<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        self.working.as_ref().expect("writer already published")
    }
}

impl DerefMut for TableWriter<'_> {
    fn deref_mut(&mut self) -> &mut Table {
        self.working.as_mut().expect("writer already published")
    }
}

impl std::fmt::Debug for TableWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableWriter")
            .field("published", &self.working.is_none())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::KeyRange;
    use rcc_common::{Column, DataType, Row, Schema, Value};

    fn tiny() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        Table::new("t", schema, vec![0])
    }

    fn row(id: i64, v: i64) -> Row {
        Row::new(vec![Value::Int(id), Value::Int(v)])
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let cell = TableCell::new(tiny());
        cell.update(|t| t.insert(row(1, 10))).unwrap();
        let before = cell.snapshot();
        cell.update(|t| t.insert(row(2, 20))).unwrap();
        assert_eq!(before.row_count(), 1, "old snapshot unchanged");
        assert_eq!(cell.snapshot().row_count(), 2);
        assert_eq!(cell.publish_count(), 2);
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let cell = TableCell::new(tiny());
        cell.update(|t| t.insert(row(1, 10))).unwrap();
        let err = cell.update(|t| {
            t.insert(row(2, 20))?;
            t.insert(row(1, 99)) // duplicate key → error
        });
        assert!(err.is_err());
        let snap = cell.snapshot();
        assert_eq!(snap.row_count(), 1, "partial batch not published");
        assert_eq!(cell.publish_count(), 1);
    }

    #[test]
    fn writer_publish_and_abort() {
        let cell = TableCell::new(tiny());
        let mut w = cell.begin_write();
        w.insert(row(1, 1)).unwrap();
        w.publish();
        assert_eq!(cell.snapshot().row_count(), 1);
        let mut w = cell.begin_write();
        w.insert(row(2, 2)).unwrap();
        drop(w); // abort
        assert_eq!(cell.snapshot().row_count(), 1);
        assert_eq!(cell.publish_count(), 1);
    }

    #[test]
    fn concurrent_readers_see_whole_snapshots() {
        let cell = Arc::new(TableCell::new(tiny()));
        // each publish i installs i rows all carrying marker i
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=200i64 {
                    cell.update(|t| {
                        t.truncate();
                        for k in 0..i {
                            t.insert(row(k, i))?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let snap = cell.snapshot();
                        let rows = snap.collect_range(&KeyRange::all(), |_| true);
                        if rows.is_empty() {
                            continue;
                        }
                        let marker = rows[0].get(1).clone();
                        assert!(
                            rows.iter().all(|r| r.get(1) == &marker),
                            "torn snapshot: mixed markers"
                        );
                        assert_eq!(
                            rows.len() as i64,
                            marker.as_int().unwrap(),
                            "row count must match the publish marker"
                        );
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
