//! Table statistics for cost estimation.
//!
//! The paper's shadow database stores *back-end* statistics on the cache so
//! the optimizer costs plans against the real data distribution (Sec. 3
//! point 1). `TableStats` is that artifact: computed once on the master
//! table and installed in the cache catalog for both shadow tables and
//! cached views.

use crate::range::KeyRange;
use crate::table::Table;
use rcc_common::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// Number of histogram buckets kept per numeric column.
const HISTOGRAM_BUCKETS: usize = 64;

/// Per-column statistics: min/max, distinct estimate and an equi-width
/// histogram for numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Number of distinct values observed.
    pub distinct: u64,
    /// Count of NULLs.
    pub nulls: u64,
    /// Equi-width bucket counts over `[min, max]` (numeric columns only).
    pub histogram: Vec<u64>,
}

impl ColumnStats {
    fn empty() -> ColumnStats {
        ColumnStats {
            min: None,
            max: None,
            distinct: 0,
            nulls: 0,
            histogram: Vec::new(),
        }
    }

    fn numeric_bounds(&self) -> Option<(f64, f64)> {
        let lo = self.min.as_ref()?.as_float().ok()?;
        let hi = self.max.as_ref()?.as_float().ok()?;
        Some((lo, hi))
    }

    /// Fraction of rows whose value falls in `range`, estimated from the
    /// histogram (with linear interpolation inside boundary buckets) or, for
    /// non-numeric columns, from a uniform min/max assumption.
    pub fn range_selectivity(&self, range: &KeyRange, row_count: u64) -> f64 {
        if row_count == 0 {
            return 0.0;
        }
        if range.is_full() {
            return 1.0;
        }
        let Some((min, max)) = self.numeric_bounds() else {
            // Non-numeric or empty: fall back to a fixed guess.
            return 0.33;
        };
        let lo = match &range.low {
            Bound::Unbounded => min,
            Bound::Included(v) | Bound::Excluded(v) => v.as_float().unwrap_or(min),
        };
        let hi = match &range.high {
            Bound::Unbounded => max,
            Bound::Included(v) | Bound::Excluded(v) => v.as_float().unwrap_or(max),
        };
        let lo = lo.max(min);
        let hi = hi.min(max);
        if hi < lo {
            return 0.0;
        }
        if self.histogram.is_empty() || max <= min {
            // Degenerate: uniform assumption over [min, max].
            let width = (max - min).max(f64::EPSILON);
            return ((hi - lo) / width).clamp(0.0, 1.0);
        }
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let nbuckets = self.histogram.len() as f64;
        let bucket_width = (max - min) / nbuckets;
        let mut covered = 0.0;
        for (i, &count) in self.histogram.iter().enumerate() {
            let b_lo = min + i as f64 * bucket_width;
            let b_hi = b_lo + bucket_width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            if overlap > 0.0 {
                covered += count as f64 * (overlap / bucket_width).min(1.0);
            }
        }
        // Point ranges (lo == hi) get the equality estimate instead.
        if hi == lo {
            return self.eq_selectivity(row_count);
        }
        (covered / total as f64).clamp(0.0, 1.0)
    }

    /// Fraction of rows expected to match an equality predicate.
    pub fn eq_selectivity(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            return 0.0;
        }
        if self.distinct == 0 {
            return 1.0 / row_count as f64;
        }
        1.0 / self.distinct as f64
    }
}

/// Statistics for one table (or materialized view).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Total rows.
    pub row_count: u64,
    /// Average serialized row width in bytes.
    pub avg_row_bytes: f64,
    /// Per-column stats, keyed by column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Compute full statistics by scanning `table`.
    pub fn compute(table: &Table) -> TableStats {
        let schema = table.schema();
        let ncols = schema.len();
        let mut mins: Vec<Option<Value>> = vec![None; ncols];
        let mut maxs: Vec<Option<Value>> = vec![None; ncols];
        let mut nulls = vec![0u64; ncols];
        let mut distinct: Vec<std::collections::HashSet<Value>> = (0..ncols)
            .map(|_| std::collections::HashSet::new())
            .collect();
        let mut total_bytes = 0usize;
        let mut n = 0u64;

        for row in table.iter() {
            n += 1;
            total_bytes += row.byte_width();
            for (i, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                if mins[i].as_ref().map(|m| v < m).unwrap_or(true) {
                    mins[i] = Some(v.clone());
                }
                if maxs[i].as_ref().map(|m| v > m).unwrap_or(true) {
                    maxs[i] = Some(v.clone());
                }
                // Cap the distinct tracker so giant tables don't blow memory;
                // beyond the cap we extrapolate as "all distinct".
                if distinct[i].len() < 100_000 {
                    distinct[i].insert(v.clone());
                }
            }
        }

        // Histogram pass for numeric columns.
        let mut histograms: Vec<Vec<u64>> = vec![Vec::new(); ncols];
        for i in 0..ncols {
            let (Some(lo), Some(hi)) = (&mins[i], &maxs[i]) else {
                continue;
            };
            let (Ok(lo), Ok(hi)) = (lo.as_float(), hi.as_float()) else {
                continue;
            };
            if hi > lo {
                histograms[i] = vec![0u64; HISTOGRAM_BUCKETS];
                let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                for row in table.iter() {
                    if let Ok(v) = row.get(i).as_float() {
                        let mut b = ((v - lo) / width) as usize;
                        if b >= HISTOGRAM_BUCKETS {
                            b = HISTOGRAM_BUCKETS - 1;
                        }
                        histograms[i][b] += 1;
                    }
                }
            }
        }

        let mut columns = HashMap::with_capacity(ncols);
        for i in 0..ncols {
            let d = if distinct[i].len() >= 100_000 {
                n.saturating_sub(nulls[i])
            } else {
                distinct[i].len() as u64
            };
            columns.insert(
                schema.column(i).name.clone(),
                ColumnStats {
                    min: mins[i].clone(),
                    max: maxs[i].clone(),
                    distinct: d,
                    nulls: nulls[i],
                    histogram: std::mem::take(&mut histograms[i]),
                },
            );
        }

        TableStats {
            row_count: n,
            avg_row_bytes: if n > 0 {
                total_bytes as f64 / n as f64
            } else {
                0.0
            },
            columns,
        }
    }

    /// Stats for a column by name (falls back to an empty placeholder).
    pub fn column(&self, name: &str) -> ColumnStats {
        self.columns
            .get(name)
            .cloned()
            .unwrap_or_else(ColumnStats::empty)
    }

    /// Estimated rows matching a range predicate on `column`.
    pub fn estimate_range_rows(&self, column: &str, range: &KeyRange) -> f64 {
        self.row_count as f64 * self.column(column).range_selectivity(range, self.row_count)
    }

    /// Estimated rows matching an equality predicate on `column`.
    pub fn estimate_eq_rows(&self, column: &str) -> f64 {
        self.row_count as f64 * self.column(column).eq_selectivity(self.row_count)
    }

    /// Estimated total bytes in the table.
    pub fn total_bytes(&self) -> f64 {
        self.row_count as f64 * self.avg_row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Row, Schema};

    fn numbered(n: i64) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        let mut t = Table::new("t", schema, vec![0]);
        for i in 0..n {
            t.insert(Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Str(format!("name{i}")),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn basic_counts() {
        let stats = TableStats::compute(&numbered(1000));
        assert_eq!(stats.row_count, 1000);
        assert!(stats.avg_row_bytes > 16.0);
        assert_eq!(stats.column("id").distinct, 1000);
        assert_eq!(stats.column("grp").distinct, 10);
    }

    #[test]
    fn range_selectivity_tracks_fraction() {
        let stats = TableStats::compute(&numbered(1000));
        let sel = stats
            .column("id")
            .range_selectivity(&KeyRange::less_than(Value::Int(100)), stats.row_count);
        assert!((sel - 0.1).abs() < 0.03, "sel={sel}");
        let rows =
            stats.estimate_range_rows("id", &KeyRange::between(Value::Int(250), Value::Int(749)));
        assert!((rows - 500.0).abs() < 40.0, "rows={rows}");
    }

    #[test]
    fn eq_selectivity_uses_distinct() {
        let stats = TableStats::compute(&numbered(1000));
        assert!((stats.estimate_eq_rows("grp") - 100.0).abs() < 1.0);
        assert!((stats.estimate_eq_rows("id") - 1.0).abs() < 0.01);
    }

    #[test]
    fn full_range_is_one() {
        let stats = TableStats::compute(&numbered(100));
        let sel = stats.column("id").range_selectivity(&KeyRange::all(), 100);
        assert_eq!(sel, 1.0);
    }

    #[test]
    fn out_of_domain_range_is_zero() {
        let stats = TableStats::compute(&numbered(100));
        let sel = stats
            .column("id")
            .range_selectivity(&KeyRange::between(Value::Int(500), Value::Int(600)), 100);
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn empty_table_stats() {
        let stats = TableStats::compute(&numbered(0));
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.estimate_eq_rows("id"), 0.0);
    }

    #[test]
    fn nulls_counted() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("x", DataType::Int),
        ]);
        let mut t = Table::new("t", schema, vec![0]);
        t.insert(Row::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        t.insert(Row::new(vec![Value::Int(2), Value::Int(5)]))
            .unwrap();
        let stats = TableStats::compute(&t);
        assert_eq!(stats.column("x").nulls, 1);
        assert_eq!(stats.column("x").distinct, 1);
    }

    #[test]
    fn missing_column_is_placeholder() {
        let stats = TableStats::compute(&numbered(10));
        let c = stats.column("ghost");
        assert_eq!(c.distinct, 0);
        assert!(c.min.is_none());
    }
}
