//! Durable store: WAL + checkpoint pages behind the in-memory tables.
//!
//! A data directory holds two files:
//!
//! * `wal.log` — the write-ahead log ([`crate::wal`]). Committed
//!   transactions and replication watermarks are appended here; the sync
//!   policy decides when they become durable.
//! * `pages.db` — the latest checkpoint, written page-at-a-time through the
//!   buffer pool ([`crate::bufpool`]) and published with an atomic rename.
//!   Page 0 is a header (magic, payload length, CRC); the payload spans the
//!   remaining pages and captures every table's rows, the replication
//!   watermarks, the log position, and the simulation clock.
//!
//! Recovery order on open: read the checkpoint (if any), then scan the WAL,
//! keeping only commits newer than the checkpoint's transaction id and the
//! latest watermark per region. A torn WAL tail is truncated; a checkpoint
//! is either whole (rename is atomic) or absent, so the pair can always be
//! reconciled. After a checkpoint succeeds the WAL is reset; a crash
//! between the rename and the reset is safe because replay deduplicates by
//! transaction id.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rcc_common::{Error, Result, Row};

use crate::bufpool::BufferPool;
use crate::codec::{self, crc32, Reader};
use crate::pager::{DiskManager, PAGE_SIZE};
use crate::wal::{CommitRecord, SyncPolicy, Wal, WalRecord, WatermarkRecord};

/// File magic for checkpoint page files.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"RCCCKP01";

/// Default buffer-pool frame budget. Deliberately small: checkpoint
/// payloads are larger than `budget * PAGE_SIZE`, so every checkpoint
/// exercises eviction and write-back rather than hiding in cache.
pub const DEFAULT_FRAME_BUDGET: usize = 8;

const WAL_FILE: &str = "wal.log";
const PAGES_FILE: &str = "pages.db";
const PAGES_TMP: &str = "pages.db.tmp";

/// Counters describing one recovery pass, surfaced as a `recovery` event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL commit records replayed on top of the checkpoint.
    pub commits_replayed: u64,
    /// Bytes cut from the WAL's torn or corrupt tail.
    pub truncated_bytes: u64,
    /// Per-region replication watermarks restored.
    pub watermarks_restored: u64,
    /// Tables restored from the checkpoint.
    pub checkpoint_tables: u64,
    /// Rows restored from the checkpoint.
    pub checkpoint_rows: u64,
}

/// Everything [`DurableStore::open`] recovered from the data directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// Whether a checkpoint file was present.
    pub has_checkpoint: bool,
    /// Per-table rows captured by the checkpoint (empty without one).
    pub tables: Vec<(String, Vec<Row>)>,
    /// Master log length at the checkpoint (the recovered log base).
    pub base_log_len: u64,
    /// Highest transaction id covered by the checkpoint.
    pub next_id: u64,
    /// WAL commits newer than the checkpoint, in commit order.
    pub commits: Vec<CommitRecord>,
    /// Latest persisted watermark per region (checkpoint ∪ WAL).
    pub watermarks: Vec<WatermarkRecord>,
    /// Highest simulation-clock millisecond seen anywhere in the state;
    /// restoring the clock here keeps currency accounting continuous.
    pub last_clock_ms: i64,
    /// Summary counters for the `recovery` journal event.
    pub stats: RecoveryStats,
}

struct CheckpointData {
    clock_ms: i64,
    log_len: u64,
    next_id: u64,
    watermarks: Vec<WatermarkRecord>,
    tables: Vec<(String, Vec<Row>)>,
}

/// Handle on an open data directory.
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    pool: Mutex<Option<Arc<BufferPool>>>,
    evictions: Arc<AtomicU64>,
    frame_budget: usize,
    last_checkpoint_ms: AtomicI64,
    checkpoint_mutex: Mutex<()>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("policy", &self.wal.policy())
            .field("wal_bytes", &self.wal.bytes())
            .field("wal_records", &self.wal.records())
            .finish()
    }
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Storage(format!("durable {op} {}: {e}", path.display()))
}

fn encode_checkpoint(
    tables: &[(String, Vec<Row>)],
    watermarks: &[WatermarkRecord],
    log_len: u64,
    next_id: u64,
    clock_ms: i64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&clock_ms.to_le_bytes());
    out.extend_from_slice(&log_len.to_le_bytes());
    out.extend_from_slice(&next_id.to_le_bytes());
    out.extend_from_slice(&(watermarks.len() as u32).to_le_bytes());
    for w in watermarks {
        codec::encode_str(&w.region, &mut out);
        out.extend_from_slice(&w.cursor.to_le_bytes());
        out.extend_from_slice(&w.heartbeat_ms.to_le_bytes());
    }
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for (name, rows) in tables {
        codec::encode_str(name, &mut out);
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for row in rows {
            codec::encode_values(row.values(), &mut out);
        }
    }
    out
}

fn decode_checkpoint(payload: &[u8]) -> Result<CheckpointData> {
    let mut r = Reader::new(payload);
    let clock_ms = r.i64()?;
    let log_len = r.u64()?;
    let next_id = r.u64()?;
    let wm_count = r.u32()? as usize;
    let mut watermarks = Vec::with_capacity(wm_count.min(1024));
    for _ in 0..wm_count {
        watermarks.push(WatermarkRecord {
            region: r.str()?,
            cursor: r.u64()?,
            heartbeat_ms: r.i64()?,
        });
    }
    let table_count = r.u32()? as usize;
    let mut tables = Vec::with_capacity(table_count.min(1024));
    for _ in 0..table_count {
        let name = r.str()?;
        let row_count = r.u32()? as usize;
        if row_count > r.remaining() {
            return Err(Error::Storage(format!(
                "checkpoint table {name} claims {row_count} rows in {} bytes",
                r.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            rows.push(Row::new(r.values()?));
        }
        tables.push((name, rows));
    }
    if !r.is_exhausted() {
        return Err(Error::Storage(format!(
            "checkpoint payload has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(CheckpointData {
        clock_ms,
        log_len,
        next_id,
        watermarks,
        tables,
    })
}

/// Read the checkpoint through a buffer pool; errors mean real corruption
/// (the rename protocol never exposes a partial file).
fn read_checkpoint(pool: &BufferPool) -> Result<CheckpointData> {
    let (magic, payload_len, crc) = pool.with_page(0, |p| {
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&p[..8]);
        let mut len = [0u8; 8];
        len.copy_from_slice(&p[8..16]);
        let mut crc = [0u8; 4];
        crc.copy_from_slice(&p[16..20]);
        (magic, u64::from_le_bytes(len), u32::from_le_bytes(crc))
    })?;
    if &magic != CHECKPOINT_MAGIC {
        return Err(Error::Storage("checkpoint magic mismatch".into()));
    }
    let available = (pool.disk().num_pages().saturating_sub(1)) * PAGE_SIZE as u64;
    if payload_len > available {
        return Err(Error::Storage(format!(
            "checkpoint claims {payload_len} payload bytes, file holds {available}"
        )));
    }
    let mut payload = Vec::with_capacity(payload_len as usize);
    let mut remaining = payload_len as usize;
    let mut page = 1u64;
    while remaining > 0 {
        let take = remaining.min(PAGE_SIZE);
        pool.with_page(page, |p| payload.extend_from_slice(&p[..take]))?;
        remaining -= take;
        page += 1;
    }
    if crc32(&payload) != crc {
        return Err(Error::Storage("checkpoint payload CRC mismatch".into()));
    }
    decode_checkpoint(&payload)
}

impl DurableStore {
    /// Open a data directory with the default frame budget.
    pub fn open(dir: &Path, policy: SyncPolicy) -> Result<(Arc<DurableStore>, RecoveredState)> {
        DurableStore::open_with_budget(dir, policy, DEFAULT_FRAME_BUDGET)
    }

    /// Open a data directory, recovering checkpoint + WAL state.
    pub fn open_with_budget(
        dir: &Path,
        policy: SyncPolicy,
        frame_budget: usize,
    ) -> Result<(Arc<DurableStore>, RecoveredState)> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("mkdir", dir, e))?;
        // A leftover .tmp means a checkpoint died before its rename; the
        // previous checkpoint (if any) plus the WAL are authoritative.
        let tmp = dir.join(PAGES_TMP);
        if tmp.exists() {
            std::fs::remove_file(&tmp).map_err(|e| io_err("rm tmp", &tmp, e))?;
        }

        let evictions = Arc::new(AtomicU64::new(0));
        let pages_path = dir.join(PAGES_FILE);
        let mut checkpoint = None;
        let mut pool = None;
        if pages_path.exists() {
            let disk = Arc::new(DiskManager::open(&pages_path)?);
            let p = Arc::new(BufferPool::new(disk, frame_budget, Arc::clone(&evictions)));
            checkpoint = Some(read_checkpoint(&p)?);
            pool = Some(p);
        }

        let (wal, wal_rec) = Wal::open(&dir.join(WAL_FILE), policy)?;

        let has_checkpoint = checkpoint.is_some();
        let (tables, base_log_len, next_id, clock_ms, mut watermark_map) = match checkpoint {
            Some(c) => (c.tables, c.log_len, c.next_id, c.clock_ms, c.watermarks),
            None => (Vec::new(), 0, 0, i64::MIN, Vec::new()),
        };

        let mut commits = Vec::new();
        let mut last_clock_ms = clock_ms;
        for rec in wal_rec.records {
            match rec {
                WalRecord::Commit(c) => {
                    last_clock_ms = last_clock_ms.max(c.commit_ms);
                    if c.id > next_id {
                        commits.push(c);
                    }
                }
                WalRecord::Watermark(w) => {
                    last_clock_ms = last_clock_ms.max(w.heartbeat_ms);
                    match watermark_map.iter_mut().find(|m| m.region == w.region) {
                        Some(slot) => *slot = w,
                        None => watermark_map.push(w),
                    }
                }
            }
        }

        let checkpoint_rows: u64 = tables.iter().map(|(_, rows)| rows.len() as u64).sum();
        let stats = RecoveryStats {
            commits_replayed: commits.len() as u64,
            truncated_bytes: wal_rec.truncated_bytes,
            watermarks_restored: watermark_map.len() as u64,
            checkpoint_tables: tables.len() as u64,
            checkpoint_rows,
        };
        let state = RecoveredState {
            has_checkpoint,
            tables,
            base_log_len,
            next_id,
            commits,
            watermarks: watermark_map,
            last_clock_ms,
            stats,
        };
        let store = DurableStore {
            dir: dir.to_path_buf(),
            wal,
            pool: Mutex::new(pool),
            evictions,
            frame_budget,
            last_checkpoint_ms: AtomicI64::new(if has_checkpoint { clock_ms } else { -1 }),
            checkpoint_mutex: Mutex::new(()),
        };
        Ok((Arc::new(store), state))
    }

    /// Append a commit record; under [`SyncPolicy::Always`] it is durable
    /// on return. Returns the LSN for a later [`DurableStore::sync_commit`].
    pub fn append_commit(&self, rec: &CommitRecord) -> Result<u64> {
        self.wal.append(&WalRecord::Commit(rec.clone()))
    }

    /// Block until the commit at `lsn` is durable (group-commit path).
    pub fn sync_commit(&self, lsn: u64) -> Result<()> {
        self.wal.sync_to(lsn)
    }

    /// Persist a replication watermark. Advisory: watermarks ride the next
    /// fsync rather than forcing their own (a lost watermark only costs a
    /// clamped, idempotent re-propagation after restart).
    pub fn append_watermark(&self, rec: &WatermarkRecord) -> Result<()> {
        self.wal
            .append(&WalRecord::Watermark(rec.clone()))
            .map(|_| ())
    }

    /// Write a checkpoint: all `tables`, the replication `watermarks`, the
    /// log position, and the clock. Published atomically; the WAL is reset
    /// once the new checkpoint is on disk.
    pub fn checkpoint(
        &self,
        tables: &[(String, Vec<Row>)],
        watermarks: &[WatermarkRecord],
        log_len: u64,
        next_id: u64,
        clock_ms: i64,
    ) -> Result<()> {
        let _guard = self.checkpoint_mutex.lock();
        let payload = encode_checkpoint(tables, watermarks, log_len, next_id, clock_ms);
        let tmp = self.dir.join(PAGES_TMP);
        if tmp.exists() {
            std::fs::remove_file(&tmp).map_err(|e| io_err("rm tmp", &tmp, e))?;
        }
        {
            let disk = Arc::new(DiskManager::open(&tmp)?);
            let pool = BufferPool::new(disk, self.frame_budget, Arc::clone(&self.evictions));
            let header_page = pool.allocate_page()?;
            pool.with_page_mut(header_page, |p| {
                p[..8].copy_from_slice(CHECKPOINT_MAGIC);
                p[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
                p[16..20].copy_from_slice(&crc32(&payload).to_le_bytes());
            })?;
            for chunk in payload.chunks(PAGE_SIZE) {
                let page = pool.allocate_page()?;
                pool.with_page_mut(page, |p| p[..chunk.len()].copy_from_slice(chunk))?;
            }
            pool.flush_all()?;
        }
        let live = self.dir.join(PAGES_FILE);
        std::fs::rename(&tmp, &live).map_err(|e| io_err("rename", &live, e))?;
        self.wal.reset()?;
        let disk = Arc::new(DiskManager::open(&live)?);
        *self.pool.lock() = Some(Arc::new(BufferPool::new(
            disk,
            self.frame_budget,
            Arc::clone(&self.evictions),
        )));
        self.last_checkpoint_ms.store(clock_ms, Ordering::Relaxed);
        Ok(())
    }

    /// Data directory this store was opened on.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The WAL durability policy.
    pub fn policy(&self) -> SyncPolicy {
        self.wal.policy()
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// WAL records since the last checkpoint.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Lifetime fsync count.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Buffer-pool frames currently resident (0 before any checkpoint).
    pub fn bufpool_frames_in_use(&self) -> u64 {
        self.pool
            .lock()
            .as_ref()
            .map_or(0, |p| p.occupancy() as u64)
    }

    /// Buffer-pool frame budget.
    pub fn bufpool_capacity(&self) -> u64 {
        self.frame_budget as u64
    }

    /// Lifetime buffer-pool evictions across checkpoint pool swaps.
    pub fn bufpool_evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Simulation-clock ms of the last checkpoint, or `None` if none.
    pub fn last_checkpoint_ms(&self) -> Option<i64> {
        let ms = self.last_checkpoint_ms.load(Ordering::Relaxed);
        (ms >= 0).then_some(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RowChange;
    use rcc_common::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rcc-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn commit(id: u64, ms: i64) -> CommitRecord {
        CommitRecord {
            id,
            commit_ms: ms,
            changes: vec![(
                "t".into(),
                RowChange::Insert(Row::new(vec![Value::Int(id as i64)])),
            )],
        }
    }

    #[test]
    fn wal_only_recovery() {
        let dir = temp_dir("walonly");
        {
            let (store, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            assert!(!state.has_checkpoint);
            store.append_commit(&commit(1, 100)).unwrap();
            store.append_commit(&commit(2, 200)).unwrap();
            store
                .append_watermark(&WatermarkRecord {
                    region: "CR1".into(),
                    cursor: 2,
                    heartbeat_ms: 150,
                })
                .unwrap();
        }
        let (_, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(state.commits.len(), 2);
        assert_eq!(state.next_id, 0);
        assert_eq!(state.watermarks.len(), 1);
        assert_eq!(state.watermarks[0].cursor, 2);
        assert_eq!(state.last_clock_ms, 200);
        assert_eq!(state.stats.commits_replayed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_wal_tail() {
        let dir = temp_dir("ckpt");
        let rows: Vec<Row> = (0..5000)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))]))
            .collect();
        {
            let (store, _) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            store.append_commit(&commit(1, 100)).unwrap();
            store
                .checkpoint(
                    &[("t".into(), rows.clone())],
                    &[WatermarkRecord {
                        region: "CR1".into(),
                        cursor: 1,
                        heartbeat_ms: 90,
                    }],
                    1,
                    1,
                    100,
                )
                .unwrap();
            assert_eq!(store.wal_records(), 0, "wal reset by checkpoint");
            // The payload spans far more pages than the frame budget, so
            // the checkpoint write itself must have evicted frames.
            assert!(store.bufpool_evictions() > 0);
            store.append_commit(&commit(2, 300)).unwrap();
        }
        let (store, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert!(state.has_checkpoint);
        assert_eq!(state.base_log_len, 1);
        assert_eq!(state.next_id, 1);
        assert_eq!(state.tables.len(), 1);
        assert_eq!(state.tables[0].1, rows);
        // Only the post-checkpoint commit replays.
        assert_eq!(state.commits.len(), 1);
        assert_eq!(state.commits[0].id, 2);
        assert_eq!(state.watermarks.len(), 1);
        assert_eq!(state.last_clock_ms, 300);
        assert!(store.last_checkpoint_ms().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_commits_in_wal_are_skipped() {
        let dir = temp_dir("dedupe");
        {
            let (store, _) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            store.append_commit(&commit(1, 10)).unwrap();
            store.append_commit(&commit(2, 20)).unwrap();
            // Checkpoint covering both, but crash before wal.reset():
            // simulate by checkpointing then re-appending the same ids.
            store.checkpoint(&[], &[], 2, 2, 20).unwrap();
            store.append_commit(&commit(1, 10)).unwrap();
            store.append_commit(&commit(2, 20)).unwrap();
            store.append_commit(&commit(3, 30)).unwrap();
        }
        let (_, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(state.next_id, 2);
        let ids: Vec<u64> = state.commits.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![3], "ids covered by the checkpoint are skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_checkpoint_tmp_is_discarded() {
        let dir = temp_dir("tmp");
        {
            let (store, _) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            store.append_commit(&commit(1, 10)).unwrap();
        }
        std::fs::write(dir.join(PAGES_TMP), b"half a checkpoint").unwrap();
        let (_, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert!(!state.has_checkpoint);
        assert_eq!(state.commits.len(), 1);
        assert!(!dir.join(PAGES_TMP).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
