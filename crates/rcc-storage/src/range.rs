//! Key ranges for index seeks.

use rcc_common::Value;
use std::ops::Bound;

/// A (possibly half-open) range over a single index key column, used to
/// drive clustered or secondary index seeks.
///
/// Multi-column clustered keys seek on a *prefix*: the range applies to the
/// first key column and the remaining columns are unconstrained, which is
/// exactly what the paper's workload needs (`c_custkey < $K`,
/// `o_custkey = ?`).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRange {
    /// Lower bound on the first key column.
    pub low: Bound<Value>,
    /// Upper bound on the first key column.
    pub high: Bound<Value>,
}

impl KeyRange {
    /// The full range (a scan).
    pub fn all() -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    /// An exact-match range (`key = v`).
    pub fn eq(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(v.clone()),
            high: Bound::Included(v),
        }
    }

    /// `low <= key <= high`.
    pub fn between(low: Value, high: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(low),
            high: Bound::Included(high),
        }
    }

    /// `key < v`.
    pub fn less_than(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: Bound::Excluded(v),
        }
    }

    /// `key <= v`.
    pub fn at_most(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Unbounded,
            high: Bound::Included(v),
        }
    }

    /// `key > v`.
    pub fn greater_than(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Excluded(v),
            high: Bound::Unbounded,
        }
    }

    /// `key >= v`.
    pub fn at_least(v: Value) -> KeyRange {
        KeyRange {
            low: Bound::Included(v),
            high: Bound::Unbounded,
        }
    }

    /// Does `v` fall inside this range?
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        };
        let hi_ok = match &self.high {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        };
        lo_ok && hi_ok
    }

    /// True when the range is the trivial full scan.
    pub fn is_full(&self) -> bool {
        matches!(
            (&self.low, &self.high),
            (Bound::Unbounded, Bound::Unbounded)
        )
    }

    /// Does this range contain every value of `other`? Used for view-match
    /// predicate subsumption: a selection view is usable only when its
    /// retained range covers the query's range on that column.
    pub fn contains_range(&self, other: &KeyRange) -> bool {
        let low_ok = match (&self.low, &other.low) {
            (Bound::Unbounded, _) => true,
            (_, Bound::Unbounded) => false,
            (Bound::Included(a), Bound::Included(b) | Bound::Excluded(b)) => b >= a,
            (Bound::Excluded(a), Bound::Excluded(b)) => b >= a,
            (Bound::Excluded(a), Bound::Included(b)) => b > a,
        };
        let high_ok = match (&self.high, &other.high) {
            (Bound::Unbounded, _) => true,
            (_, Bound::Unbounded) => false,
            (Bound::Included(a), Bound::Included(b) | Bound::Excluded(b)) => b <= a,
            (Bound::Excluded(a), Bound::Excluded(b)) => b <= a,
            (Bound::Excluded(a), Bound::Included(b)) => b < a,
        };
        low_ok && high_ok
    }

    /// Intersect two ranges (tightest bounds win).
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        fn tighter_low(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Included(x), Bound::Included(y)) => {
                    Bound::Included(if x >= y { x.clone() } else { y.clone() })
                }
                (Bound::Excluded(x), Bound::Excluded(y)) => {
                    Bound::Excluded(if x >= y { x.clone() } else { y.clone() })
                }
                (Bound::Included(x), Bound::Excluded(y)) => {
                    if y >= x {
                        Bound::Excluded(y.clone())
                    } else {
                        Bound::Included(x.clone())
                    }
                }
                (Bound::Excluded(x), Bound::Included(y)) => {
                    if x >= y {
                        Bound::Excluded(x.clone())
                    } else {
                        Bound::Included(y.clone())
                    }
                }
            }
        }
        fn tighter_high(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Included(x), Bound::Included(y)) => {
                    Bound::Included(if x <= y { x.clone() } else { y.clone() })
                }
                (Bound::Excluded(x), Bound::Excluded(y)) => {
                    Bound::Excluded(if x <= y { x.clone() } else { y.clone() })
                }
                (Bound::Included(x), Bound::Excluded(y)) => {
                    if y <= x {
                        Bound::Excluded(y.clone())
                    } else {
                        Bound::Included(x.clone())
                    }
                }
                (Bound::Excluded(x), Bound::Included(y)) => {
                    if x <= y {
                        Bound::Excluded(x.clone())
                    } else {
                        Bound::Included(y.clone())
                    }
                }
            }
        }
        KeyRange {
            low: tighter_low(&self.low, &other.low),
            high: tighter_high(&self.high, &other.high),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn containment() {
        let r = KeyRange::between(i(10), i(20));
        assert!(r.contains(&i(10)));
        assert!(r.contains(&i(20)));
        assert!(!r.contains(&i(9)));
        assert!(!r.contains(&i(21)));
        assert!(KeyRange::less_than(i(5)).contains(&i(4)));
        assert!(!KeyRange::less_than(i(5)).contains(&i(5)));
        assert!(KeyRange::greater_than(i(5)).contains(&i(6)));
        assert!(!KeyRange::greater_than(i(5)).contains(&i(5)));
        assert!(KeyRange::at_least(i(5)).contains(&i(5)));
        assert!(KeyRange::at_most(i(5)).contains(&i(5)));
        assert!(KeyRange::all().contains(&i(0)));
    }

    #[test]
    fn eq_range_matches_single_value() {
        let r = KeyRange::eq(i(7));
        assert!(r.contains(&i(7)));
        assert!(!r.contains(&i(8)));
        assert!(!r.contains(&i(6)));
    }

    #[test]
    fn intersection_tightens() {
        let a = KeyRange::at_least(i(10));
        let b = KeyRange::less_than(i(20));
        let c = a.intersect(&b);
        assert!(c.contains(&i(10)));
        assert!(c.contains(&i(19)));
        assert!(!c.contains(&i(20)));
        assert!(!c.contains(&i(9)));

        // excluded beats included at the same point
        let d = KeyRange::at_least(i(10)).intersect(&KeyRange::greater_than(i(10)));
        assert!(!d.contains(&i(10)));
        assert!(d.contains(&i(11)));
    }

    #[test]
    fn range_containment() {
        let all = KeyRange::all();
        let mid = KeyRange::between(i(10), i(20));
        assert!(all.contains_range(&mid));
        assert!(!mid.contains_range(&all));
        assert!(mid.contains_range(&KeyRange::between(i(12), i(18))));
        assert!(mid.contains_range(&mid));
        assert!(!mid.contains_range(&KeyRange::between(i(5), i(15))));
        assert!(KeyRange::at_least(i(0)).contains_range(&KeyRange::greater_than(i(0))));
        assert!(!KeyRange::greater_than(i(0)).contains_range(&KeyRange::at_least(i(0))));
        assert!(KeyRange::less_than(i(10)).contains_range(&KeyRange::at_most(i(9))));
        assert!(!KeyRange::less_than(i(10)).contains_range(&KeyRange::at_most(i(10))));
    }

    #[test]
    fn full_detection() {
        assert!(KeyRange::all().is_full());
        assert!(!KeyRange::eq(i(1)).is_full());
    }
}
