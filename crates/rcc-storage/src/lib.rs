#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! In-memory table storage for the RCC mini-DBMS.
//!
//! This crate plays the role SQL Server's storage engine plays in the paper:
//! heap-less tables organized by a clustered BTree index, optional secondary
//! indexes, range scans/seeks, and per-table statistics used by the cost
//! model. Tables execute in memory — the paper's experiments depend only on
//! *relative* access-path costs and data volumes — while the durability
//! layer ([`durable`], [`wal`], [`bufpool`], [`pager`], [`codec`]) gives the
//! back-end an optional disk-backed mode: WAL-before-publish commits,
//! paged checkpoints behind a buffer pool, and crash recovery that restores
//! committed tables *and* replication watermarks. This crate (plus
//! `rcc-bench`) is the only place in the workspace allowed to touch the
//! filesystem; `workspace-lint` enforces that boundary.

pub mod bufpool;
pub mod codec;
pub mod durable;
pub mod engine;
pub mod index;
pub mod pager;
pub mod range;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod wal;

pub use bufpool::BufferPool;
pub use durable::{DurableStore, RecoveredState, RecoveryStats};
pub use engine::{StorageEngine, TableHandle};
pub use index::SecondaryIndex;
pub use pager::{DiskManager, PAGE_SIZE};
pub use range::KeyRange;
pub use snapshot::{TableCell, TableSnapshot, TableWriter};
pub use stats::{ColumnStats, TableStats};
pub use table::{MorselPlan, RowChange, Table};
pub use wal::{CommitRecord, SyncPolicy, Wal, WalRecord, WatermarkRecord};
