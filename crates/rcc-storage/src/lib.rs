#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! In-memory table storage for the RCC mini-DBMS.
//!
//! This crate plays the role SQL Server's storage engine plays in the paper:
//! heap-less tables organized by a clustered BTree index, optional secondary
//! indexes, range scans/seeks, and per-table statistics used by the cost
//! model. Everything is deliberately simple and in-memory — the paper's
//! experiments depend only on *relative* access-path costs and data volumes,
//! both of which this engine models and actually executes.

pub mod engine;
pub mod index;
pub mod range;
pub mod snapshot;
pub mod stats;
pub mod table;

pub use engine::{StorageEngine, TableHandle};
pub use index::SecondaryIndex;
pub use range::KeyRange;
pub use snapshot::{TableCell, TableSnapshot, TableWriter};
pub use stats::{ColumnStats, TableStats};
pub use table::{MorselPlan, RowChange, Table};
