//! Tables organized by a clustered BTree index.

use crate::index::SecondaryIndex;
use crate::range::KeyRange;
use rcc_common::{Error, Result, Row, Schema, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A logged change to a single row, the unit shipped through the
/// replication log and applied by distribution agents in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum RowChange {
    /// Insert a full row.
    Insert(Row),
    /// Replace the row with clustered key `key` by `row`.
    Update {
        /// Clustered key of the target row.
        key: Vec<Value>,
        /// The (new) row value.
        row: Row,
    },
    /// Delete the row with clustered key `key`.
    Delete {
        /// Clustered key of the target row.
        key: Vec<Value>,
    },
}

/// An in-memory table: rows stored in clustered-key order inside a BTree,
/// plus any number of secondary indexes kept in sync on every mutation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Ordinals of the clustered key columns, in key order.
    key: Vec<usize>,
    rows: BTreeMap<Vec<Value>, Row>,
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table clustered on the given key-column ordinals.
    ///
    /// # Panics
    /// Panics if `key` is empty or references columns outside the schema —
    /// both are construction-time programming errors.
    pub fn new(name: impl Into<String>, schema: Schema, key: Vec<usize>) -> Table {
        assert!(!key.is_empty(), "a table needs a clustered key");
        assert!(
            key.iter().all(|&k| k < schema.len()),
            "key ordinal out of range"
        );
        Table {
            name: name.into(),
            schema,
            key,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema of stored rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Clustered key column ordinals.
    pub fn key_ordinals(&self) -> &[usize] {
        &self.key
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Extract the clustered key of a row.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.key.iter().map(|&i| row.get(i).clone()).collect()
    }

    /// Add a secondary index over the given column ordinals. Existing rows
    /// are indexed immediately.
    pub fn create_index(&mut self, name: impl Into<String>, columns: Vec<usize>) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|ix| ix.name() == name) {
            return Err(Error::AlreadyExists(format!("index {name}")));
        }
        let mut ix = SecondaryIndex::new(name, columns);
        for (key, row) in &self.rows {
            ix.insert(row, key.clone());
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Find a secondary index whose *first* column is `col`, if any.
    pub fn index_on(&self, col: usize) -> Option<&SecondaryIndex> {
        self.indexes
            .iter()
            .find(|ix| ix.columns().first() == Some(&col))
    }

    /// Insert a row; errors on duplicate clustered key.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Storage(format!(
                "row arity {} does not match schema arity {} for table {}",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        let key = self.key_of(&row);
        if self.rows.contains_key(&key) {
            return Err(Error::Storage(format!(
                "duplicate clustered key {key:?} in table {}",
                self.name
            )));
        }
        for ix in &mut self.indexes {
            ix.insert(&row, key.clone());
        }
        self.rows.insert(key, row);
        Ok(())
    }

    /// Insert or replace by clustered key (used by replication apply).
    pub fn upsert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Storage(format!(
                "row arity {} does not match schema arity {} for table {}",
                row.len(),
                self.schema.len(),
                self.name
            )));
        }
        let key = self.key_of(&row);
        if let Some(old) = self.rows.remove(&key) {
            for ix in &mut self.indexes {
                ix.remove(&old, &key);
            }
        }
        for ix in &mut self.indexes {
            ix.insert(&row, key.clone());
        }
        self.rows.insert(key, row);
        Ok(())
    }

    /// Delete by clustered key; returns the old row if present.
    pub fn delete(&mut self, key: &[Value]) -> Option<Row> {
        let old = self.rows.remove(key)?;
        for ix in &mut self.indexes {
            ix.remove(&old, key);
        }
        Some(old)
    }

    /// Replace the row at `key` with `row` (key columns of `row` must match
    /// `key`; enforced).
    pub fn update(&mut self, key: &[Value], row: Row) -> Result<()> {
        if self.key_of(&row) != key {
            return Err(Error::Storage(
                "update row's key columns do not match the target key".into(),
            ));
        }
        if !self.rows.contains_key(key) {
            return Err(Error::Storage(format!("update target {key:?} not found")));
        }
        self.upsert(row)
    }

    /// Apply a logged [`RowChange`]. Replication delivers these in commit
    /// order; apply is idempotent for inserts (they degrade to upserts) so a
    /// re-delivered batch cannot wedge an agent.
    pub fn apply(&mut self, change: &RowChange) -> Result<()> {
        match change {
            RowChange::Insert(row) => self.upsert(row.clone()),
            RowChange::Update { row, .. } => self.upsert(row.clone()),
            RowChange::Delete { key } => {
                self.delete(key);
                Ok(())
            }
        }
    }

    /// Point lookup by full clustered key.
    pub fn get(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Translate the single-column range's lower bound into a bound over
    /// full composite keys: bound the first component, leave the rest open.
    fn composite_low(range: &KeyRange) -> Bound<Vec<Value>> {
        match &range.low {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(v) => Bound::Included(vec![v.clone()]),
            // For an excluded lower bound on a composite key we must skip
            // every key with that first component, so scan from Included and
            // filter in the scan loop.
            Bound::Excluded(v) => Bound::Included(vec![v.clone()]),
        }
    }

    /// True once a composite key's first component has passed the range's
    /// upper bound — keys are sorted by first component, so the scan can
    /// stop.
    fn above_high(range: &KeyRange, first: &Value) -> bool {
        match &range.high {
            Bound::Unbounded => false,
            Bound::Included(h) => first > h,
            Bound::Excluded(h) => first >= h,
        }
    }

    /// Visit every row that falls in `range` on the *first* clustered key
    /// column and passes `filter`; `emit` receives survivors.
    ///
    /// This is the single scan primitive: executors push residual predicates
    /// down as `filter` so only qualifying rows are materialized.
    pub fn scan_range<F, E>(&self, range: &KeyRange, filter: F, emit: E)
    where
        F: FnMut(&Row) -> bool,
        E: FnMut(&Row),
    {
        self.scan_morsel(range, None, None, filter, emit);
    }

    /// Visit the slice of `range` between two composite-key cut points:
    /// rows with clustered key in `[start, end)` (either side `None` =
    /// unbounded). Cut points come from [`Table::plan_morsels`]; scanning
    /// each morsel of a plan and concatenating the outputs in morsel order
    /// visits exactly the rows `scan_range` would, in the same order —
    /// which is what makes parallel morsel scans bit-identical to serial
    /// execution.
    pub fn scan_morsel<F, E>(
        &self,
        range: &KeyRange,
        start: Option<&[Value]>,
        end: Option<&[Value]>,
        mut filter: F,
        mut emit: E,
    ) where
        F: FnMut(&Row) -> bool,
        E: FnMut(&Row),
    {
        // The morsel start is a real clustered key inside the range, so it
        // is always at or above the range's own lower bound and can simply
        // replace it (an O(log n) BTree seek rather than a skip-scan).
        let low: Bound<Vec<Value>> = match start {
            Some(k) => Bound::Included(k.to_vec()),
            None => Self::composite_low(range),
        };
        for (key, row) in self.rows.range((low, Bound::Unbounded)) {
            if let Some(end) = end {
                if key.as_slice() >= end {
                    break;
                }
            }
            let first = &key[0];
            if !range.contains(first) {
                if Self::above_high(range, first) {
                    break;
                }
                // Below the low bound (excluded case): keep going.
                continue;
            }
            if filter(row) {
                emit(row);
            }
        }
    }

    /// Columnar variant of [`Table::scan_morsel`]: append the surviving
    /// rows of the morsel directly into per-column output buffers instead
    /// of emitting `Row`s. `mapping[c]` names the source ordinal for output
    /// column `c`, so projection happens during the fill and rejected rows
    /// are never materialized. `keep` is `Result`-aware so residual
    /// predicate evaluation errors abort the fill instead of being
    /// smuggled through a side channel. Returns the number of rows
    /// appended. Visit order is identical to `scan_morsel`, which keeps
    /// morsel concatenation bit-identical to a serial scan.
    pub fn fill_morsel_columns<P>(
        &self,
        range: &KeyRange,
        start: Option<&[Value]>,
        end: Option<&[Value]>,
        mapping: &[usize],
        mut keep: P,
        cols: &mut [Vec<Value>],
    ) -> Result<usize>
    where
        P: FnMut(&Row) -> Result<bool>,
    {
        debug_assert_eq!(mapping.len(), cols.len());
        let low: Bound<Vec<Value>> = match start {
            Some(k) => Bound::Included(k.to_vec()),
            None => Self::composite_low(range),
        };
        let mut appended = 0usize;
        for (key, row) in self.rows.range((low, Bound::Unbounded)) {
            if let Some(end) = end {
                if key.as_slice() >= end {
                    break;
                }
            }
            let first = &key[0];
            if !range.contains(first) {
                if Self::above_high(range, first) {
                    break;
                }
                continue;
            }
            if keep(row)? {
                for (c, col) in cols.iter_mut().enumerate() {
                    col.push(row.get(mapping[c]).clone());
                }
                appended += 1;
            }
        }
        Ok(appended)
    }

    /// Split the rows of `range` into key-ordered morsels of roughly
    /// `target_rows` rows each. The returned plan's cut points are actual
    /// clustered keys, so morsel `i` covers `[cut[i-1], cut[i])` and the
    /// morsels partition the range exactly.
    pub fn plan_morsels(&self, range: &KeyRange, target_rows: usize) -> MorselPlan {
        let target = target_rows.max(1);
        let mut splits = Vec::new();
        let mut in_chunk = 0usize;
        let low = Self::composite_low(range);
        for (key, _) in self.rows.range((low, Bound::Unbounded)) {
            let first = &key[0];
            if !range.contains(first) {
                if Self::above_high(range, first) {
                    break;
                }
                continue;
            }
            if in_chunk == target {
                splits.push(key.clone());
                in_chunk = 0;
            }
            in_chunk += 1;
        }
        MorselPlan { splits }
    }

    /// Resolve the clustered keys selected by seeking the secondary index
    /// named `index` with `range`, in index order (then clustered-key
    /// order). Parallel index scans fetch this list serially — it is the
    /// ordered spine of the result — then chunk the point lookups across
    /// workers.
    pub fn index_pks(&self, index: &str, range: &KeyRange) -> Result<Vec<Vec<Value>>> {
        let ix = self
            .indexes
            .iter()
            .find(|ix| ix.name() == index)
            .ok_or_else(|| Error::NotFound(format!("index {index} on table {}", self.name)))?;
        let mut out = Vec::new();
        ix.scan(range, |pk| out.push(pk.to_vec()));
        Ok(out)
    }

    /// Collect rows in `range` passing `filter` into a vector.
    pub fn collect_range<F>(&self, range: &KeyRange, filter: F) -> Vec<Row>
    where
        F: FnMut(&Row) -> bool,
    {
        let mut out = Vec::new();
        let mut filter = filter;
        self.scan_range(range, |r| filter(r), |r| out.push(r.clone()));
        out
    }

    /// Full-table scan collecting everything.
    pub fn collect_all(&self) -> Vec<Row> {
        self.rows.values().cloned().collect()
    }

    /// Seek a secondary index named `index` with `range`, returning matching
    /// rows in index order (then clustered-key order).
    pub fn index_scan(&self, index: &str, range: &KeyRange) -> Result<Vec<Row>> {
        let ix = self
            .indexes
            .iter()
            .find(|ix| ix.name() == index)
            .ok_or_else(|| Error::NotFound(format!("index {index} on table {}", self.name)))?;
        let mut out = Vec::new();
        ix.scan(range, |pk| {
            if let Some(row) = self.rows.get(pk) {
                out.push(row.clone());
            }
        });
        Ok(out)
    }

    /// Iterate all rows in clustered order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// Remove all rows (keeps schema and index definitions).
    pub fn truncate(&mut self) {
        self.rows.clear();
        for ix in &mut self.indexes {
            ix.clear();
        }
    }
}

/// How one range scan splits into key-ordered morsels: a sorted list of
/// composite-key cut points (each an actual clustered key of the table).
/// Morsel `i` spans `[cut[i-1], cut[i])`; the first morsel starts at the
/// range's lower bound and the last runs to its upper bound. Produced by
/// [`Table::plan_morsels`], consumed by [`Table::scan_morsel`].
#[derive(Debug, Clone, PartialEq)]
pub struct MorselPlan {
    splits: Vec<Vec<Value>>,
}

impl MorselPlan {
    /// Number of morsels in the plan (always ≥ 1).
    pub fn morsel_count(&self) -> usize {
        self.splits.len() + 1
    }

    /// The `[start, end)` composite-key bounds of morsel `i`
    /// (`None` = unbounded side).
    ///
    /// # Panics
    /// Panics if `i >= morsel_count()`.
    pub fn bounds(&self, i: usize) -> (Option<&[Value]>, Option<&[Value]>) {
        assert!(i < self.morsel_count(), "morsel index out of range");
        let start = if i == 0 {
            None
        } else {
            Some(self.splits[i - 1].as_slice())
        };
        let end = self.splits.get(i).map(|k| k.as_slice());
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType};

    fn books() -> Table {
        let schema = Schema::new(vec![
            Column::new("isbn", DataType::Int),
            Column::new("title", DataType::Str),
            Column::new("price", DataType::Float),
        ]);
        let mut t = Table::new("books", schema, vec![0]);
        for (isbn, title, price) in [
            (3, "c", 30.0),
            (1, "a", 10.0),
            (2, "b", 20.0),
            (5, "e", 50.0),
            (4, "d", 40.0),
        ] {
            t.insert(Row::new(vec![
                Value::Int(isbn),
                Value::from(title),
                Value::Float(price),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_maintains_clustered_order() {
        let t = books();
        let isbns: Vec<i64> = t.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(isbns, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = books();
        let err = t
            .insert(Row::new(vec![
                Value::Int(1),
                Value::from("dup"),
                Value::Float(0.0),
            ]))
            .unwrap_err();
        assert!(matches!(err, Error::Storage(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = books();
        assert!(t.insert(Row::new(vec![Value::Int(9)])).is_err());
    }

    #[test]
    fn point_lookup() {
        let t = books();
        let r = t.get(&[Value::Int(3)]).unwrap();
        assert_eq!(r.get(1).as_str().unwrap(), "c");
        assert!(t.get(&[Value::Int(99)]).is_none());
    }

    #[test]
    fn range_scan_half_open() {
        let t = books();
        let rows = t.collect_range(&KeyRange::less_than(Value::Int(3)), |_| true);
        assert_eq!(rows.len(), 2);
        let rows = t.collect_range(&KeyRange::between(Value::Int(2), Value::Int(4)), |_| true);
        assert_eq!(rows.len(), 3);
        let rows = t.collect_range(&KeyRange::greater_than(Value::Int(4)), |_| true);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn scan_filter_pushdown() {
        let t = books();
        let rows = t.collect_range(&KeyRange::all(), |r| r.get(2).as_float().unwrap() > 25.0);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn update_and_delete_maintain_state() {
        let mut t = books();
        t.update(
            &[Value::Int(2)],
            Row::new(vec![Value::Int(2), Value::from("b2"), Value::Float(21.0)]),
        )
        .unwrap();
        assert_eq!(
            t.get(&[Value::Int(2)]).unwrap().get(1).as_str().unwrap(),
            "b2"
        );
        assert!(t
            .update(
                &[Value::Int(2)],
                Row::new(vec![Value::Int(3), Value::from("x"), Value::Float(0.0)])
            )
            .is_err());
        let old = t.delete(&[Value::Int(2)]).unwrap();
        assert_eq!(old.get(1).as_str().unwrap(), "b2");
        assert_eq!(t.row_count(), 4);
        assert!(t.delete(&[Value::Int(2)]).is_none());
    }

    #[test]
    fn secondary_index_scan() {
        let mut t = books();
        t.create_index("ix_price", vec![2]).unwrap();
        let rows = t
            .index_scan(
                "ix_price",
                &KeyRange::between(Value::Float(15.0), Value::Float(45.0)),
            )
            .unwrap();
        let prices: Vec<f64> = rows.iter().map(|r| r.get(2).as_float().unwrap()).collect();
        assert_eq!(prices, vec![20.0, 30.0, 40.0]);
        assert!(t.index_scan("nope", &KeyRange::all()).is_err());
    }

    #[test]
    fn index_tracks_mutations() {
        let mut t = books();
        t.create_index("ix_price", vec![2]).unwrap();
        t.upsert(Row::new(vec![
            Value::Int(1),
            Value::from("a"),
            Value::Float(99.0),
        ]))
        .unwrap();
        t.delete(&[Value::Int(5)]);
        let rows = t
            .index_scan("ix_price", &KeyRange::at_least(Value::Float(45.0)))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).as_int().unwrap(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = books();
        t.create_index("ix", vec![2]).unwrap();
        assert!(t.create_index("ix", vec![1]).is_err());
    }

    #[test]
    fn apply_row_changes() {
        let mut t = books();
        t.apply(&RowChange::Delete {
            key: vec![Value::Int(1)],
        })
        .unwrap();
        t.apply(&RowChange::Insert(Row::new(vec![
            Value::Int(10),
            Value::from("j"),
            Value::Float(1.0),
        ])))
        .unwrap();
        t.apply(&RowChange::Update {
            key: vec![Value::Int(10)],
            row: Row::new(vec![Value::Int(10), Value::from("j2"), Value::Float(2.0)]),
        })
        .unwrap();
        assert_eq!(
            t.get(&[Value::Int(10)]).unwrap().get(1).as_str().unwrap(),
            "j2"
        );
        assert!(t.get(&[Value::Int(1)]).is_none());
        // idempotent re-delivery
        t.apply(&RowChange::Insert(Row::new(vec![
            Value::Int(10),
            Value::from("j2"),
            Value::Float(2.0),
        ])))
        .unwrap();
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = books();
        t.create_index("ix_price", vec![2]).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert!(t
            .index_scan("ix_price", &KeyRange::all())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn morsels_partition_range_bit_identically() {
        let schema = Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("order", DataType::Int),
        ]);
        let mut t = Table::new("orders", schema, vec![0, 1]);
        for c in 1..=40 {
            for o in 1..=3 {
                t.insert(Row::new(vec![Value::Int(c), Value::Int(o)]))
                    .unwrap();
            }
        }
        let ranges = [
            KeyRange::all(),
            KeyRange::between(Value::Int(5), Value::Int(30)),
            KeyRange::greater_than(Value::Int(10)),
            KeyRange::less_than(Value::Int(3)),
            KeyRange::eq(Value::Int(7)),
            KeyRange::between(Value::Int(99), Value::Int(100)), // empty
        ];
        for range in &ranges {
            let serial = t.collect_range(range, |_| true);
            for target in [1usize, 7, 16, 1000] {
                let plan = t.plan_morsels(range, target);
                let mut merged = Vec::new();
                for i in 0..plan.morsel_count() {
                    let (start, end) = plan.bounds(i);
                    t.scan_morsel(range, start, end, |_| true, |r| merged.push(r.clone()));
                }
                assert_eq!(merged, serial, "range {range:?} target {target}");
            }
        }
    }

    #[test]
    fn morsel_sizes_near_target() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let mut t = Table::new("t", schema, vec![0]);
        for i in 0..100 {
            t.insert(Row::new(vec![Value::Int(i)])).unwrap();
        }
        let plan = t.plan_morsels(&KeyRange::all(), 32);
        assert_eq!(plan.morsel_count(), 4); // 32+32+32+4
        let mut counts = Vec::new();
        for i in 0..plan.morsel_count() {
            let (start, end) = plan.bounds(i);
            let mut n = 0usize;
            t.scan_morsel(&KeyRange::all(), start, end, |_| true, |_| n += 1);
            counts.push(n);
        }
        assert_eq!(counts, vec![32, 32, 32, 4]);
    }

    #[test]
    fn index_pks_follow_index_order() {
        let mut t = books();
        t.create_index("ix_price", vec![2]).unwrap();
        let pks = t
            .index_pks(
                "ix_price",
                &KeyRange::between(Value::Float(15.0), Value::Float(45.0)),
            )
            .unwrap();
        assert_eq!(
            pks,
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(3)],
                vec![Value::Int(4)]
            ]
        );
        assert!(t.index_pks("nope", &KeyRange::all()).is_err());
    }

    #[test]
    fn composite_key_prefix_scan() {
        let schema = Schema::new(vec![
            Column::new("cust", DataType::Int),
            Column::new("order", DataType::Int),
        ]);
        let mut t = Table::new("orders", schema, vec![0, 1]);
        for c in 1..=3 {
            for o in 1..=4 {
                t.insert(Row::new(vec![Value::Int(c), Value::Int(o * 10)]))
                    .unwrap();
            }
        }
        let rows = t.collect_range(&KeyRange::eq(Value::Int(2)), |_| true);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() == 2));
        // prefix scan respects excluded lower bound
        let rows = t.collect_range(&KeyRange::greater_than(Value::Int(2)), |_| true);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() == 3));
    }
}
