//! The storage engine: a named collection of concurrently accessible tables.

use crate::snapshot::TableCell;
use crate::table::Table;
use parking_lot::RwLock;
use rcc_common::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Shared handle to one table. Query operators call
/// [`TableCell::snapshot`] to obtain an immutable, atomically published
/// table state and scan it without holding any lock, while distribution
/// agents and DML apply replicated transactions through
/// [`TableCell::update`] / [`TableCell::begin_write`] — a copy-on-write
/// cycle that publishes the whole batch in one atomic epoch bump. Readers
/// are never stalled by a refresh and never observe a torn table.
pub type TableHandle = Arc<TableCell>;

/// A named set of tables, used both for the master database at the back-end
/// and for the cached materialized views (plus local heartbeat tables) at
/// the mid-tier cache.
#[derive(Debug, Default)]
pub struct StorageEngine {
    tables: RwLock<HashMap<String, TableHandle>>,
}

impl StorageEngine {
    /// An empty engine.
    pub fn new() -> StorageEngine {
        StorageEngine::default()
    }

    /// Register a table; errors if the name is taken.
    pub fn create_table(&self, table: Table) -> Result<TableHandle> {
        let name = table.name().to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("table {name}")));
        }
        let handle = Arc::new(TableCell::new(table));
        tables.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table; returns it if present.
    pub fn drop_table(&self, name: &str) -> Option<TableHandle> {
        self.tables.write().remove(&name.to_ascii_lowercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total snapshot publishes across all tables (monotonic while tables
    /// live; feeds the `rcc_snapshot_publishes_total` metric).
    pub fn total_publishes(&self) -> u64 {
        self.tables
            .read()
            .values()
            .map(|cell| cell.publish_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Row, Schema, Value};

    fn tiny(name: &str) -> Table {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        Table::new(name, schema, vec![0])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("Books")).unwrap();
        assert!(eng.table("books").is_ok());
        assert!(eng.table("BOOKS").is_ok());
        assert!(eng.contains("bOOks"));
        assert!(eng.table("reviews").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("t")).unwrap();
        assert!(matches!(
            eng.create_table(tiny("T")),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn drop_removes() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("t")).unwrap();
        assert!(eng.drop_table("t").is_some());
        assert!(eng.drop_table("t").is_none());
        assert!(!eng.contains("t"));
    }

    #[test]
    fn handles_share_state() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("t")).unwrap();
        let h1 = eng.table("t").unwrap();
        let h2 = eng.table("t").unwrap();
        h1.update(|t| t.insert(Row::new(vec![Value::Int(1)])))
            .unwrap();
        assert_eq!(h2.snapshot().row_count(), 1);
    }

    #[test]
    fn publish_counter_totals_across_tables() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("a")).unwrap();
        eng.create_table(tiny("b")).unwrap();
        assert_eq!(eng.total_publishes(), 0);
        let a = eng.table("a").unwrap();
        a.update(|t| t.insert(Row::new(vec![Value::Int(1)])))
            .unwrap();
        let b = eng.table("b").unwrap();
        b.update(|t| t.insert(Row::new(vec![Value::Int(1)])))
            .unwrap();
        b.update(|t| t.insert(Row::new(vec![Value::Int(2)])))
            .unwrap();
        assert_eq!(eng.total_publishes(), 3);
    }

    #[test]
    fn names_sorted() {
        let eng = StorageEngine::new();
        eng.create_table(tiny("zeta")).unwrap();
        eng.create_table(tiny("alpha")).unwrap();
        assert_eq!(
            eng.table_names(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
    }
}
