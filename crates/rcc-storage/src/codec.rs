//! Binary codec for durable records: values, rows, and row changes.
//!
//! Every on-disk artifact (WAL frames, checkpoint pages) serializes rows
//! through this module so the format has a single definition. The encoding
//! is little-endian and length-prefixed:
//!
//! ```text
//! value   := tag:u8 payload
//!            tag 0 Null | 1 Int(i64) | 2 Float(f64 bits) |
//!            3 Str(len:u32 bytes) | 4 Bool(u8) | 5 Timestamp(i64)
//! row     := count:u32 value*
//! change  := tag:u8 ...
//!            tag 1 Insert(row) | 2 Update(key:row new:row) | 3 Delete(key:row)
//! ```
//!
//! Decoding is strict: unknown tags, short buffers, and trailing garbage in
//! fixed-width fields surface as [`Error::Storage`] so corruption is caught
//! at the frame that carries it rather than misread as data.

use rcc_common::{Error, Result, Row, Value};

use crate::table::RowChange;

/// CRC32 (IEEE 802.3, polynomial `0xEDB88320`) over `bytes`.
///
/// Hand-rolled table-driven implementation: the workspace is offline and
/// vendors no checksum crate, and WAL framing only needs the standard
/// reflected CRC32.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append the encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Int(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(v) => {
            out.push(4);
            out.push(u8::from(*v));
        }
        Value::Timestamp(ms) => {
            out.push(5);
            out.extend_from_slice(&ms.to_le_bytes());
        }
    }
}

/// Append the encoding of `values` (count-prefixed) to `out`.
pub fn encode_values(values: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        encode_value(v, out);
    }
}

/// Append the encoding of `change` to `out`.
pub fn encode_change(change: &RowChange, out: &mut Vec<u8>) {
    match change {
        RowChange::Insert(row) => {
            out.push(1);
            encode_values(row.values(), out);
        }
        RowChange::Update { key, row } => {
            out.push(2);
            encode_values(key, out);
            encode_values(row.values(), out);
        }
        RowChange::Delete { key } => {
            out.push(3);
            encode_values(key, out);
        }
    }
}

/// Append a length-prefixed UTF-8 string to `out`.
pub fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Strict cursor over an encoded buffer; every read checks bounds.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Storage(format!(
                "record truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Storage("record holds invalid UTF-8".into()))
    }

    /// Decode one [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::Str(self.str()?)),
            4 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(Error::Storage(format!("invalid bool byte {b}"))),
            },
            5 => Ok(Value::Timestamp(self.i64()?)),
            tag => Err(Error::Storage(format!("unknown value tag {tag}"))),
        }
    }

    /// Decode a count-prefixed list of values.
    pub fn values(&mut self) -> Result<Vec<Value>> {
        let count = self.u32()? as usize;
        // Guard against absurd counts from corrupt frames before allocating.
        if count > self.remaining() {
            return Err(Error::Storage(format!(
                "value count {count} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.value()?);
        }
        Ok(out)
    }

    /// Decode one [`RowChange`].
    pub fn change(&mut self) -> Result<RowChange> {
        match self.u8()? {
            1 => Ok(RowChange::Insert(Row::new(self.values()?))),
            2 => {
                let key = self.values()?;
                let row = Row::new(self.values()?);
                Ok(RowChange::Update { key, row })
            }
            3 => Ok(RowChange::Delete {
                key: self.values()?,
            }),
            tag => Err(Error::Storage(format!("unknown change tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_change(change: &RowChange) -> RowChange {
        let mut buf = Vec::new();
        encode_change(change, &mut buf);
        let mut r = Reader::new(&buf);
        let decoded = r.change().unwrap();
        assert!(r.is_exhausted());
        decoded
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let values = vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Str("héllo \u{1F980}".into()),
            Value::Bool(true),
            Value::Timestamp(1_700_000_000_123),
        ];
        let mut buf = Vec::new();
        encode_values(&values, &mut buf);
        let decoded = Reader::new(&buf).values().unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn change_roundtrip() {
        let insert = RowChange::Insert(Row::new(vec![Value::Int(7), Value::Str("x".into())]));
        assert_eq!(roundtrip_change(&insert), insert);
        let update = RowChange::Update {
            key: vec![Value::Int(7)],
            row: Row::new(vec![Value::Int(7), Value::Str("y".into())]),
        };
        assert_eq!(roundtrip_change(&update), update);
        let delete = RowChange::Delete {
            key: vec![Value::Int(7)],
        };
        assert_eq!(roundtrip_change(&delete), delete);
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        encode_value(&Value::Str("hello".into()), &mut buf);
        for cut in 0..buf.len() {
            assert!(Reader::new(&buf[..cut]).value().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tags_are_errors() {
        assert!(Reader::new(&[9]).value().is_err());
        assert!(Reader::new(&[0]).change().is_err());
        assert!(Reader::new(&[4, 2]).value().is_err());
    }

    #[test]
    fn hostile_count_does_not_overallocate() {
        let mut buf = vec![];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Reader::new(&buf).values().is_err());
    }
}
