//! Secondary indexes.

use crate::range::KeyRange;
use rcc_common::{Row, Value};
use std::collections::BTreeSet;
use std::ops::Bound;

/// A secondary BTree index mapping (index-key, clustered-key) pairs to row
/// locations. Including the clustered key in the BTree key makes duplicate
/// index keys unambiguous, the same trick real engines use.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    name: String,
    /// Ordinals (into the table schema) of the indexed columns.
    columns: Vec<usize>,
    /// (index key values ++ clustered key values).
    entries: BTreeSet<(Vec<Value>, Vec<Value>)>,
}

impl SecondaryIndex {
    /// Create an empty index over the given column ordinals.
    ///
    /// # Panics
    /// Panics if `columns` is empty.
    pub fn new(name: impl Into<String>, columns: Vec<usize>) -> SecondaryIndex {
        assert!(!columns.is_empty(), "an index needs at least one column");
        SecondaryIndex {
            name: name.into(),
            columns,
            entries: BTreeSet::new(),
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column ordinals.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of entries (== table row count once synced).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.columns.iter().map(|&i| row.get(i).clone()).collect()
    }

    /// Add an entry for `row` stored at clustered key `pk`.
    pub fn insert(&mut self, row: &Row, pk: Vec<Value>) {
        self.entries.insert((self.key_of(row), pk));
    }

    /// Remove the entry for `row` stored at clustered key `pk`.
    pub fn remove(&mut self, row: &Row, pk: &[Value]) {
        self.entries.remove(&(self.key_of(row), pk.to_vec()));
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Visit the clustered keys of all rows whose *first* indexed column
    /// falls in `range`, in index order.
    pub fn scan<E>(&self, range: &KeyRange, mut emit: E)
    where
        E: FnMut(&[Value]),
    {
        let low: Bound<(Vec<Value>, Vec<Value>)> = match &range.low {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(v) | Bound::Excluded(v) => {
                Bound::Included((vec![v.clone()], Vec::new()))
            }
        };
        for (key, pk) in self.entries.range((low, Bound::Unbounded)) {
            let first = &key[0];
            if !range.contains(first) {
                let above_high = match &range.high {
                    Bound::Unbounded => false,
                    Bound::Included(h) => first > h,
                    Bound::Excluded(h) => first >= h,
                };
                if above_high {
                    break;
                }
                continue;
            }
            emit(pk);
        }
    }

    /// Estimate of entries in `range` (exact here, since we can count).
    pub fn count_in(&self, range: &KeyRange) -> usize {
        let mut n = 0;
        self.scan(range, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::Row;

    fn row(k: i64, v: i64) -> Row {
        Row::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn sample() -> SecondaryIndex {
        // index on column 1 (v); clustered key = column 0 (k)
        let mut ix = SecondaryIndex::new("ix", vec![1]);
        for (k, v) in [(1, 30), (2, 10), (3, 20), (4, 10)] {
            ix.insert(&row(k, v), vec![Value::Int(k)]);
        }
        ix
    }

    #[test]
    fn scan_in_index_order_with_duplicates() {
        let ix = sample();
        let mut pks = Vec::new();
        ix.scan(&KeyRange::all(), |pk| pks.push(pk[0].as_int().unwrap()));
        // v=10 twice (pk 2 then 4), v=20 (pk 3), v=30 (pk 1)
        assert_eq!(pks, vec![2, 4, 3, 1]);
    }

    #[test]
    fn range_scans() {
        let ix = sample();
        assert_eq!(ix.count_in(&KeyRange::eq(Value::Int(10))), 2);
        assert_eq!(
            ix.count_in(&KeyRange::between(Value::Int(10), Value::Int(20))),
            3
        );
        assert_eq!(ix.count_in(&KeyRange::greater_than(Value::Int(20))), 1);
        assert_eq!(ix.count_in(&KeyRange::less_than(Value::Int(10))), 0);
    }

    #[test]
    fn remove_specific_entry() {
        let mut ix = sample();
        ix.remove(&row(4, 10), &[Value::Int(4)]);
        assert_eq!(ix.count_in(&KeyRange::eq(Value::Int(10))), 1);
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut ix = sample();
        ix.clear();
        assert!(ix.is_empty());
    }
}
