//! Fixed-budget buffer pool over a [`DiskManager`].
//!
//! The pool caches a bounded number of page frames and evicts with the
//! clock (second-chance) algorithm: every frame carries a reference bit set
//! on access; the clock hand sweeps, clearing reference bits, and evicts
//! the first unpinned frame whose bit is already clear. Dirty frames are
//! written back before their frame is reused. Pin counts protect a frame
//! for the duration of a page closure; pinned frames are never evicted.
//!
//! Access goes through closures ([`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`]) rather than guards, which keeps the
//! frame-table lock scope explicit and makes pin/unpin impossible to leak.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rcc_common::{Error, Result};

use crate::pager::{DiskManager, PAGE_SIZE};

struct Frame {
    page: u64,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
}

/// Bounded page cache with clock eviction and dirty write-back.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    inner: Mutex<PoolInner>,
    capacity: usize,
    evictions: Arc<AtomicU64>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool of at most `capacity` frames over `disk`. The eviction
    /// counter is shared so totals survive pool swaps across checkpoints.
    pub fn new(disk: Arc<DiskManager>, capacity: usize, evictions: Arc<AtomicU64>) -> BufferPool {
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
            }),
            capacity: capacity.max(1),
            evictions,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Find or load the frame for `page`, pin it, and return its index.
    fn pin(&self, inner: &mut PoolInner, page: u64) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&page) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            inner.frames[idx].referenced = true;
            inner.frames[idx].pins += 1;
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.disk.read_page(page, &mut data)?;
        let idx = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                page,
                data,
                dirty: false,
                pins: 0,
                referenced: false,
            });
            inner.frames.len() - 1
        } else {
            let victim = self.find_victim(inner)?;
            let old = &mut inner.frames[victim];
            if old.dirty {
                self.disk.write_page(old.page, &old.data)?;
            }
            inner.map.remove(&inner.frames[victim].page);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let frame = &mut inner.frames[victim];
            frame.page = page;
            frame.data = data;
            frame.dirty = false;
            frame.referenced = false;
            victim
        };
        inner.map.insert(page, idx);
        inner.frames[idx].pins += 1;
        inner.frames[idx].referenced = true;
        Ok(idx)
    }

    /// Clock sweep: clear reference bits until an unpinned, unreferenced
    /// frame comes under the hand.
    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize> {
        let n = inner.frames.len();
        // Two full sweeps: the first may only clear reference bits.
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[idx];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(Error::Storage(format!(
            "buffer pool exhausted: all {n} frames pinned"
        )))
    }

    /// Run `f` over an immutable view of `page`.
    pub fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.pin(&mut inner, page)?;
        let out = f(&inner.frames[idx].data);
        inner.frames[idx].pins -= 1;
        Ok(out)
    }

    /// Run `f` over a mutable view of `page`, marking the frame dirty.
    pub fn with_page_mut<R>(
        &self,
        page: u64,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.pin(&mut inner, page)?;
        let out = f(&mut inner.frames[idx].data);
        inner.frames[idx].dirty = true;
        inner.frames[idx].pins -= 1;
        Ok(out)
    }

    /// Allocate a fresh page on disk (not yet cached).
    pub fn allocate_page(&self) -> Result<u64> {
        self.disk.allocate()
    }

    /// Write every dirty frame back and fsync the file.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in &mut inner.frames {
            if frame.dirty {
                self.disk.write_page(frame.page, &frame.data)?;
                frame.dirty = false;
            }
        }
        drop(inner);
        self.disk.sync()
    }

    /// Frames currently resident.
    pub fn occupancy(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Frame budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Evictions since the shared counter was created.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` since this pool was created.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(tag: &str, capacity: usize) -> (BufferPool, std::path::PathBuf) {
        let path =
            std::env::temp_dir().join(format!("rcc-bufpool-{}-{tag}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        (
            BufferPool::new(disk, capacity, Arc::new(AtomicU64::new(0))),
            path,
        )
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, path) = pool("dirty", 2);
        for i in 0..4u64 {
            pool.allocate_page().unwrap();
            pool.with_page_mut(i, |p| p[0] = i as u8 + 1).unwrap();
        }
        // Capacity 2 with 4 pages touched: at least 2 evictions happened and
        // the evicted dirty pages must already be on disk.
        assert!(pool.evictions() >= 2);
        assert_eq!(pool.occupancy(), 2);
        for i in 0..4u64 {
            let byte = pool.with_page(i, |p| p[0]).unwrap();
            assert_eq!(byte, i as u8 + 1, "page {i}");
        }
        pool.flush_all().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clock_gives_second_chances() {
        let (pool, path) = pool("clock", 2);
        for _ in 0..4 {
            pool.allocate_page().unwrap();
        }
        // Fill both frames, then load page 2: the sweep clears both bits and
        // evicts frame 0. State: [2 (ref), 1 (clear)], hand past frame 0.
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        pool.with_page(2, |_| ()).unwrap();
        // Load page 3: page 1's bit is clear, page 2's is set, so the clock
        // must give page 2 a second chance and evict page 1.
        pool.with_page(3, |_| ()).unwrap();
        let (hits, misses) = pool.hit_stats();
        pool.with_page(2, |_| ()).unwrap();
        assert_eq!(pool.hit_stats(), (hits + 1, misses), "page 2 was evicted");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_persists_across_reopen() {
        let (pool, path) = pool("flush", 4);
        let page = pool.allocate_page().unwrap();
        pool.with_page_mut(page, |p| p[..4].copy_from_slice(b"RCCD"))
            .unwrap();
        pool.flush_all().unwrap();
        drop(pool);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let pool2 = BufferPool::new(disk, 4, Arc::new(AtomicU64::new(0)));
        let head = pool2.with_page(page, |p| p[..4].to_vec()).unwrap();
        assert_eq!(&head, b"RCCD");
        std::fs::remove_file(&path).unwrap();
    }
}
