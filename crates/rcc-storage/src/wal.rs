//! Write-ahead log with CRC-framed records and torn-tail recovery.
//!
//! The log is a single append-only file. It opens with an 8-byte magic
//! (`RCCWAL01`); every record after that is framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Payloads are encoded by [`crate::codec`] and carry either a committed
//! transaction or a replication-watermark update. Recovery scans from the
//! magic forward and stops at the first frame whose length is implausible,
//! whose CRC does not match, or whose payload fails strict decoding; the
//! file is truncated back to the last valid frame so a torn tail from a
//! crash mid-append can never resurrect an unacknowledged suffix.
//!
//! Durability policy is chosen at open time ([`SyncPolicy`]):
//!
//! * `Always` — `fsync` inside [`Wal::append`], before the caller publishes
//!   the COW epoch. Strict WAL-before-visibility.
//! * `Group` — `append` only buffers in the OS; committers call
//!   [`Wal::sync_to`] after publishing, where the first waiter becomes the
//!   flush leader and one `fsync` covers every record appended so far.
//!   A commit may be briefly visible-but-not-yet-durable; it is never
//!   acknowledged before it is durable, and recovery simply replays the
//!   longest durable prefix.
//! * `Never` — no fsync; for benchmarks establishing the no-durability
//!   ceiling.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, PoisonError};

use parking_lot::Mutex;
use rcc_common::{Error, Result};

use crate::codec::{self, crc32, Reader};
use crate::table::RowChange;

/// File magic for WAL files (8 bytes, includes a format version).
pub const WAL_MAGIC: &[u8; 8] = b"RCCWAL01";

/// Maximum plausible payload length; frames claiming more are corruption.
const MAX_PAYLOAD: u32 = 1 << 30;

/// When acknowledged commits become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` on every append, before the COW epoch is published.
    Always,
    /// Leader-batched group commit: publish first, `fsync` before the ack.
    Group,
    /// Never `fsync` (benchmark baseline; crash durability not provided).
    Never,
}

/// A committed transaction as logged: id, commit timestamp, and the
/// per-table row changes in application order.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Transaction id (1-based, dense, assigned at commit).
    pub id: u64,
    /// Commit timestamp on the simulation clock, in milliseconds.
    pub commit_ms: i64,
    /// `(table, change)` pairs in the order they were applied.
    pub changes: Vec<(String, RowChange)>,
}

/// A replication agent's last-propagated position, persisted per region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatermarkRecord {
    /// Currency-region name the agent serves.
    pub region: String,
    /// Master-log cursor the agent has propagated through.
    pub cursor: u64,
    /// Last heartbeat timestamp propagated to the cache, ms (−1 = none).
    pub heartbeat_ms: i64,
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction.
    Commit(CommitRecord),
    /// A replication watermark update.
    Watermark(WatermarkRecord),
}

const TAG_COMMIT: u8 = 1;
const TAG_WATERMARK: u8 = 2;

/// Encode a record payload (without framing).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Commit(c) => {
            out.push(TAG_COMMIT);
            out.extend_from_slice(&c.id.to_le_bytes());
            out.extend_from_slice(&c.commit_ms.to_le_bytes());
            out.extend_from_slice(&(c.changes.len() as u32).to_le_bytes());
            for (table, change) in &c.changes {
                codec::encode_str(table, &mut out);
                codec::encode_change(change, &mut out);
            }
        }
        WalRecord::Watermark(w) => {
            out.push(TAG_WATERMARK);
            codec::encode_str(&w.region, &mut out);
            out.extend_from_slice(&w.cursor.to_le_bytes());
            out.extend_from_slice(&w.heartbeat_ms.to_le_bytes());
        }
    }
    out
}

/// Decode a record payload produced by [`encode_record`]. Strict: trailing
/// bytes after the record are corruption.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_COMMIT => {
            let id = r.u64()?;
            let commit_ms = r.i64()?;
            let count = r.u32()? as usize;
            if count > r.remaining() {
                return Err(Error::Storage(format!(
                    "commit claims {count} changes in {} bytes",
                    r.remaining()
                )));
            }
            let mut changes = Vec::with_capacity(count);
            for _ in 0..count {
                let table = r.str()?;
                let change = r.change()?;
                changes.push((table, change));
            }
            WalRecord::Commit(CommitRecord {
                id,
                commit_ms,
                changes,
            })
        }
        TAG_WATERMARK => WalRecord::Watermark(WatermarkRecord {
            region: r.str()?,
            cursor: r.u64()?,
            heartbeat_ms: r.i64()?,
        }),
        tag => return Err(Error::Storage(format!("unknown wal record tag {tag}"))),
    };
    if !r.is_exhausted() {
        return Err(Error::Storage(format!(
            "wal record has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(rec)
}

/// Frame a payload for appending: length, CRC, payload.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a WAL byte buffer.
#[derive(Debug)]
pub struct WalScan {
    /// Records recovered, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid frame (≥ magic length).
    pub valid_len: u64,
}

/// Scan `buf` (a full WAL file image) and return the longest valid prefix.
///
/// Never errors on corruption: the scan simply stops at the first bad
/// frame. A missing or mismatched magic yields zero records with
/// `valid_len` equal to the magic length (the file will be rewritten).
pub fn scan(buf: &[u8]) -> WalScan {
    let magic_len = WAL_MAGIC.len() as u64;
    if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalScan {
            records: Vec::new(),
            valid_len: magic_len,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if buf.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        if len > MAX_PAYLOAD || buf.len() - pos - 8 < len as usize {
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        pos += 8 + len as usize;
    }
    WalScan {
        records,
        valid_len: pos as u64,
    }
}

struct WalFile {
    file: File,
    len: u64,
}

struct GroupSync {
    synced: u64,
    flushing: bool,
}

/// The open write-ahead log.
pub struct Wal {
    state: Mutex<WalFile>,
    group: StdMutex<GroupSync>,
    group_cv: Condvar,
    policy: SyncPolicy,
    bytes: AtomicU64,
    records: AtomicU64,
    fsyncs: AtomicU64,
}

/// What [`Wal::open`] recovered from an existing log file.
#[derive(Debug)]
pub struct WalRecovery {
    /// Records in the longest valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes cut from a torn or corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
}

fn io_err(op: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("wal {op}: {e}"))
}

impl Wal {
    /// Open (creating if absent) the log at `path`, recovering its valid
    /// prefix and truncating any torn tail in place.
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<(Wal, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| io_err("read", e))?;
        let scanned = scan(&buf);
        let had_magic = buf.len() >= WAL_MAGIC.len() && &buf[..WAL_MAGIC.len()] == WAL_MAGIC;
        if !had_magic {
            file.set_len(0).map_err(|e| io_err("truncate", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek", e))?;
            file.write_all(WAL_MAGIC).map_err(|e| io_err("write", e))?;
            file.sync_data().map_err(|e| io_err("fsync", e))?;
        } else if scanned.valid_len < buf.len() as u64 {
            file.set_len(scanned.valid_len)
                .map_err(|e| io_err("truncate", e))?;
            file.sync_data().map_err(|e| io_err("fsync", e))?;
        }
        let truncated_bytes = if had_magic {
            (buf.len() as u64).saturating_sub(scanned.valid_len)
        } else {
            buf.len() as u64
        };
        let len = scanned.valid_len.max(WAL_MAGIC.len() as u64);
        file.seek(SeekFrom::Start(len))
            .map_err(|e| io_err("seek", e))?;
        let record_count = scanned.records.len() as u64;
        let wal = Wal {
            state: Mutex::new(WalFile { file, len }),
            group: StdMutex::new(GroupSync {
                synced: len,
                flushing: false,
            }),
            group_cv: Condvar::new(),
            policy,
            bytes: AtomicU64::new(len),
            records: AtomicU64::new(record_count),
            fsyncs: AtomicU64::new(0),
        };
        Ok((
            wal,
            WalRecovery {
                records: scanned.records,
                truncated_bytes,
            },
        ))
    }

    /// Append one record; returns the LSN (file length after the frame).
    ///
    /// Under [`SyncPolicy::Always`] the frame is fsynced before returning,
    /// so callers may publish the corresponding in-memory state immediately.
    pub fn append(&self, rec: &WalRecord) -> Result<u64> {
        let framed = frame_record(&encode_record(rec));
        let mut state = self.state.lock();
        state
            .file
            .write_all(&framed)
            .map_err(|e| io_err("append", e))?;
        state.len += framed.len() as u64;
        let lsn = state.len;
        if self.policy == SyncPolicy::Always {
            state.file.sync_data().map_err(|e| io_err("fsync", e))?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        self.bytes.store(lsn, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        if self.policy == SyncPolicy::Always {
            let mut g = self.group.lock().unwrap_or_else(PoisonError::into_inner);
            if g.synced < lsn {
                g.synced = lsn;
            }
        }
        Ok(lsn)
    }

    /// Block until everything up to `lsn` is durable.
    ///
    /// No-op under `Always` (append already synced) and `Never`. Under
    /// `Group`, the first waiter becomes the flush leader: it fsyncs once,
    /// covering every record appended so far, and wakes the cohort.
    pub fn sync_to(&self, lsn: u64) -> Result<()> {
        if self.policy != SyncPolicy::Group {
            return Ok(());
        }
        loop {
            {
                let mut g = self.group.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if g.synced >= lsn {
                        return Ok(());
                    }
                    if !g.flushing {
                        g.flushing = true;
                        break;
                    }
                    g = self
                        .group_cv
                        .wait(g)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            // Leader: one fsync covers all frames appended before this point.
            let flushed = {
                let state = self.state.lock();
                let res = state.file.sync_data();
                let len = state.len;
                drop(state);
                res.map(|()| len)
            };
            let mut g = self.group.lock().unwrap_or_else(PoisonError::into_inner);
            g.flushing = false;
            let outcome = match flushed {
                Ok(len) => {
                    if g.synced < len {
                        g.synced = len;
                    }
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(e) => Err(io_err("group fsync", e)),
            };
            drop(g);
            self.group_cv.notify_all();
            outcome?;
            // Loop: our own frame predates the fsync, so the next pass exits.
        }
    }

    /// Discard all records (after a checkpoint has captured their effects):
    /// truncate back to the magic and fsync.
    pub fn reset(&self) -> Result<()> {
        let mut state = self.state.lock();
        state
            .file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| io_err("truncate", e))?;
        state
            .file
            .seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
            .map_err(|e| io_err("seek", e))?;
        state.file.sync_data().map_err(|e| io_err("fsync", e))?;
        state.len = WAL_MAGIC.len() as u64;
        let len = state.len;
        drop(state);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.bytes.store(len, Ordering::Relaxed);
        self.records.store(0, Ordering::Relaxed);
        let mut g = self.group.lock().unwrap_or_else(PoisonError::into_inner);
        g.synced = len;
        Ok(())
    }

    /// Current log size in bytes (magic included).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Records appended since open or the last [`Wal::reset`].
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Lifetime fsync count.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// The durability policy this log was opened with.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Row, Value};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rcc-wal-{}-{tag}-{n}.log", std::process::id()))
    }

    fn commit(id: u64) -> WalRecord {
        WalRecord::Commit(CommitRecord {
            id,
            commit_ms: 1000 + id as i64,
            changes: vec![(
                "customer".into(),
                RowChange::Insert(Row::new(vec![
                    Value::Int(id as i64),
                    Value::Str("x".into()),
                ])),
            )],
        })
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
            assert!(rec.records.is_empty());
            assert_eq!(rec.truncated_bytes, 0);
            wal.append(&commit(1)).unwrap();
            wal.append(&WalRecord::Watermark(WatermarkRecord {
                region: "CR1".into(),
                cursor: 17,
                heartbeat_ms: 42,
            }))
            .unwrap();
            assert_eq!(wal.records(), 2);
            assert!(wal.fsyncs() >= 2);
        }
        let (wal, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0], commit(1));
        match &rec.records[1] {
            WalRecord::Watermark(w) => {
                assert_eq!(w.region, "CR1");
                assert_eq!(w.cursor, 17);
                assert_eq!(w.heartbeat_ms, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(wal.records(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&commit(1)).unwrap();
            wal.append(&commit(2)).unwrap();
        }
        // Tear the last frame: chop 3 bytes off the end.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0], commit(1));
        assert!(rec.truncated_bytes > 0);
        // The file was physically truncated, so a second open is clean.
        let (_, rec2) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec2.records.len(), 1);
        assert_eq!(rec2.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_sync_makes_records_durable() {
        let path = temp_path("group");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path, SyncPolicy::Group).unwrap();
            let lsn = wal.append(&commit(1)).unwrap();
            assert_eq!(wal.fsyncs(), 0);
            wal.sync_to(lsn).unwrap();
            assert_eq!(wal.fsyncs(), 1);
            // Already-synced LSN returns without another fsync.
            wal.sync_to(lsn).unwrap();
            assert_eq!(wal.fsyncs(), 1);
        }
        let (_, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_discards_records() {
        let path = temp_path("reset");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        wal.append(&commit(9)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0], commit(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_recovers_empty() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        let (wal, rec) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert!(rec.records.is_empty());
        wal.append(&commit(1)).unwrap();
        drop(wal);
        let (_, rec2) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(rec2.records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
