//! Page-granular disk manager for checkpoint files.
//!
//! A checkpoint file is an array of fixed-size pages addressed by page id.
//! The [`DiskManager`] owns the file handle and does nothing clever — all
//! caching, eviction, and dirty tracking live in [`crate::bufpool`]. Pages
//! are 4 KiB; page 0 is reserved by the checkpoint layer for its header.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rcc_common::{Error, Result};

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 4096;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Storage(format!("pager {op} {}: {e}", path.display()))
}

/// Owns one page file; reads and writes whole pages by id.
pub struct DiskManager {
    path: PathBuf,
    file: Mutex<File>,
    pages: AtomicU64,
}

impl DiskManager {
    /// Open (creating if absent) the page file at `path`. A file whose
    /// length is not a whole number of pages is rejected as corrupt.
    pub fn open(path: &Path) -> Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        let len = file.metadata().map_err(|e| io_err("stat", path, e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(Error::Storage(format!(
                "pager open {}: length {len} is not page-aligned",
                path.display()
            )));
        }
        Ok(DiskManager {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            pages: AtomicU64::new(len / PAGE_SIZE as u64),
        })
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Extend the file by one zeroed page; returns the new page id.
    pub fn allocate(&self) -> Result<u64> {
        let file = self.file.lock();
        let id = self.pages.load(Ordering::Relaxed);
        file.set_len((id + 1) * PAGE_SIZE as u64)
            .map_err(|e| io_err("grow", &self.path, e))?;
        self.pages.store(id + 1, Ordering::Relaxed);
        Ok(id)
    }

    /// Read page `id` into `buf`.
    pub fn read_page(&self, id: u64, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.num_pages() {
            return Err(Error::Storage(format!(
                "pager read {}: page {id} out of bounds ({} pages)",
                self.path.display(),
                self.num_pages()
            )));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek", &self.path, e))?;
        file.read_exact(buf)
            .map_err(|e| io_err("read", &self.path, e))
    }

    /// Write `buf` to page `id` (which must already exist).
    pub fn write_page(&self, id: u64, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.num_pages() {
            return Err(Error::Storage(format!(
                "pager write {}: page {id} out of bounds ({} pages)",
                self.path.display(),
                self.num_pages()
            )));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek", &self.path, e))?;
        file.write_all(buf)
            .map_err(|e| io_err("write", &self.path, e))
    }

    /// Flush file contents and metadata to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_all()
            .map_err(|e| io_err("fsync", &self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rcc-pager-{}-{tag}.db", std::process::id()))
    }

    #[test]
    fn allocate_write_read() {
        let path = temp_path("rw");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.num_pages(), 0);
        let p0 = dm.allocate().unwrap();
        let p1 = dm.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(1, &page).unwrap();
        dm.sync().unwrap();
        let mut back = [0u8; PAGE_SIZE];
        dm.read_page(1, &mut back).unwrap();
        assert_eq!(page, back);
        // Freshly allocated page 0 reads back zeroed.
        dm.read_page(0, &mut back).unwrap();
        assert_eq!(back, [0u8; PAGE_SIZE]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let path = temp_path("oob");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(0, &mut buf).is_err());
        assert!(dm.write_page(3, &buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_file_rejected() {
        let path = temp_path("misaligned");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(DiskManager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
