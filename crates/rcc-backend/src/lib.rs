#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! The back-end (master) database server substrate.
//!
//! The paper's architecture has a single back-end SQL Server holding the
//! master copy of every table; all updates execute there as transactions
//! with monotonically increasing commit timestamps, and committed changes
//! flow to mid-tier caches through transactional replication. This crate
//! provides that substrate:
//!
//! * [`MasterDb`] — master tables, serialized update transactions, and the
//!   ordered **replication log** distribution agents drain,
//! * the **heartbeat** mechanism of Sec. 3.1: a global heartbeat table with
//!   one row per currency region whose timestamp column "beats" at a fixed
//!   interval and is replicated like any other update, giving the cache a
//!   bound on its own staleness.

pub mod heartbeat;
pub mod master;

pub use heartbeat::{HEARTBEAT_REGION_COL, HEARTBEAT_TABLE, HEARTBEAT_TS_COL};
pub use master::{CommittedTxn, MasterDb, TableChange};
