//! The global heartbeat table (paper Sec. 3.1).
//!
//! "We have a global heartbeat table at the back-end, containing one row
//! for each currency region. The table has two columns: a currency region
//! id and a timestamp. At regular intervals ... the region's heart beats,
//! that is, the timestamp column of the region's row is set to the current
//! timestamp."
//!
//! Heartbeat updates travel through the ordinary replication log, so the
//! timestamp found in a region's *local* heartbeat table bounds the
//! staleness of everything the region's agent has applied: "because we are
//! using transactional replication, we know that all updates up to time T
//! have been propagated and hence reflect a database snapshot no older than
//! t − T."

use rcc_common::{Column, DataType, Schema};

/// Name of the global heartbeat table at the back-end.
pub const HEARTBEAT_TABLE: &str = "heartbeat";
/// Region-id column name.
pub const HEARTBEAT_REGION_COL: &str = "region_id";
/// Timestamp column name.
pub const HEARTBEAT_TS_COL: &str = "ts";

/// Schema of the global heartbeat table (and of each region's local copy).
pub fn heartbeat_schema() -> Schema {
    Schema::new(vec![
        Column::new(HEARTBEAT_REGION_COL, DataType::Int),
        Column::new(HEARTBEAT_TS_COL, DataType::Timestamp),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let s = heartbeat_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).name, "region_id");
        assert_eq!(s.column(1).data_type, DataType::Timestamp);
    }
}
