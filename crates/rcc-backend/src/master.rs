//! The master database: tables, serialized transactions, replication log.

use crate::heartbeat::{heartbeat_schema, HEARTBEAT_TABLE};
use parking_lot::RwLock;
use rcc_catalog::{Catalog, TableMeta};
use rcc_common::{Clock, Error, RegionId, Result, Row, Timestamp, TxnId, Value};
use rcc_storage::{
    CommitRecord, DurableStore, RowChange, StorageEngine, Table, TableHandle, TableStats,
    WatermarkRecord,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One change to one table inside a transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TableChange {
    /// Target table name (lower-cased).
    pub table: String,
    /// The row-level change.
    pub change: RowChange,
}

impl TableChange {
    /// Convenience constructor.
    pub fn new(table: impl Into<String>, change: RowChange) -> TableChange {
        TableChange {
            table: table.into().to_ascii_lowercase(),
            change,
        }
    }
}

/// A committed update transaction, as recorded in the replication log.
///
/// Transactions "are assigned an integer id — a timestamp — in increasing
/// order" (paper appendix 8.1); we also record the wall/simulated commit
/// time because currency is measured in elapsed time.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedTxn {
    /// Monotonically increasing transaction id (the appendix's `xtime`).
    pub id: TxnId,
    /// Commit time on the back-end clock.
    pub commit_time: Timestamp,
    /// Row changes, in statement order.
    pub changes: Vec<TableChange>,
}

/// The back-end master database.
///
/// All updates are serialized through [`MasterDb::execute_txn`] (the
/// paper's model assumes Strict 2PL at the master; a single writer lock
/// realizes the same serial history), applied to the master tables, and
/// appended to an ordered log that distribution agents drain.
#[derive(Debug)]
pub struct MasterDb {
    storage: Arc<StorageEngine>,
    catalog: Arc<Catalog>,
    clock: Arc<dyn Clock>,
    // Lock order: `durability` (when read at all) strictly before `log`.
    durability: RwLock<Option<Arc<DurableStore>>>,
    log: RwLock<LogState>,
}

/// The replication log. `base` counts transactions that predate the last
/// checkpoint: their effects live in the checkpoint's table images and the
/// entries themselves are gone, but absolute log cursors handed to agents
/// keep working because every index below is offset by it.
#[derive(Debug, Default)]
struct LogState {
    txns: Vec<CommittedTxn>,
    next_id: u64,
    base: usize,
}

impl MasterDb {
    /// Create an empty master database. The global heartbeat table is
    /// created eagerly.
    pub fn new(catalog: Arc<Catalog>, clock: Arc<dyn Clock>) -> MasterDb {
        let db = MasterDb {
            storage: Arc::new(StorageEngine::new()),
            catalog,
            clock,
            durability: RwLock::new(None),
            log: RwLock::new(LogState::default()),
        };
        let hb = Table::new(HEARTBEAT_TABLE, heartbeat_schema(), vec![0]);
        db.storage
            .create_table(hb)
            .expect("fresh engine cannot collide");
        db
    }

    /// The catalog this master serves.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The clock the master stamps commits with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Direct access to a master table.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        self.storage.table(name)
    }

    /// The storage engine holding the master tables (used by the back-end
    /// server's executor).
    pub fn storage(&self) -> &Arc<StorageEngine> {
        &self.storage
    }

    /// Create the master copy of a table described by `meta`, including its
    /// clustered layout and secondary indexes.
    pub fn create_table(&self, meta: &TableMeta) -> Result<TableHandle> {
        let mut table = Table::new(meta.name.clone(), meta.schema.clone(), meta.key_ordinals());
        for ix in &meta.indexes {
            let ordinals: Vec<usize> = ix
                .columns
                .iter()
                .map(|c| meta.schema.resolve(None, c))
                .collect::<Result<_>>()?;
            table.create_index(ix.name.clone(), ordinals)?;
        }
        self.storage.create_table(table)
    }

    /// Bulk-load initial rows into a master table *without* logging — this
    /// models the pre-existing database state (history H0). Views created
    /// later are populated from the current snapshot, so initial data never
    /// needs to travel through the log.
    pub fn bulk_load(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let handle = self.storage.table(table)?;
        let n = rows.len();
        handle.update(|t| {
            for row in rows {
                t.insert(row)?;
            }
            Ok(())
        })?;
        Ok(n)
    }

    /// Execute and commit an update transaction: apply every change to the
    /// master tables (all-or-nothing is approximated by validating targets
    /// first) and append it to the replication log with the next id and the
    /// current clock time.
    pub fn execute_txn(&self, changes: Vec<TableChange>) -> Result<CommittedTxn> {
        if changes.is_empty() {
            return Err(Error::Execution("empty transaction".into()));
        }
        // Validate all target tables exist before touching anything.
        for c in &changes {
            self.storage.table(&c.table)?;
        }
        // Clone the durable store handle *before* the log lock so every
        // code path acquires `durability` before `log`, never inside it.
        let durable = self.durability.read().clone();
        // Take the log lock across apply+append so concurrent committers
        // serialize and log order equals apply order.
        let mut log = self.log.write();
        // Inserts are strict at the master (duplicate keys fail the
        // transaction before anything is applied); replication agents use
        // the idempotent `Table::apply` instead.
        for c in &changes {
            if let RowChange::Insert(row) = &c.change {
                let t = self.storage.table(&c.table)?.snapshot();
                if t.get(&t.key_of(row)).is_some() {
                    return Err(Error::Storage(format!(
                        "duplicate clustered key in INSERT into {}",
                        c.table
                    )));
                }
            }
        }
        // Write-ahead: frame the transaction into the WAL before any table
        // publishes. Under `SyncPolicy::Always` the append fsyncs, so the
        // record is durable before the COW epoch becomes visible; under
        // `Group` the fsync is deferred to `sync_commit` below, after
        // publish but before the commit is acknowledged to the caller.
        let commit_time = self.clock.now();
        let id = log.next_id + 1;
        let mut pending_sync = None;
        if let Some(store) = durable {
            let record = CommitRecord {
                id,
                commit_ms: commit_time.millis(),
                changes: changes
                    .iter()
                    .map(|c| (c.table.clone(), c.change.clone()))
                    .collect(),
            };
            let lsn = store.append_commit(&record)?;
            pending_sync = Some((store, lsn));
        }
        // Group the changes per table (statement order preserved within
        // each table; tables have disjoint keyspaces, so the final state is
        // the same) and publish one copy-on-write snapshot per table —
        // readers see each table's whole batch or none of it.
        let mut order: Vec<&str> = Vec::new();
        let mut groups: HashMap<&str, Vec<&RowChange>> = HashMap::new();
        for c in &changes {
            if !groups.contains_key(c.table.as_str()) {
                order.push(&c.table);
            }
            groups.entry(c.table.as_str()).or_default().push(&c.change);
        }
        for table in &order {
            let handle = self.storage.table(table)?;
            let group = &groups[table];
            handle.update(|t| {
                for change in group {
                    t.apply(change)?;
                }
                Ok(())
            })?;
        }
        log.next_id = id;
        let txn = CommittedTxn {
            id: TxnId(id),
            commit_time,
            changes,
        };
        log.txns.push(txn.clone());
        drop(log);
        if let Some((store, lsn)) = pending_sync {
            store.sync_commit(lsn)?;
        }
        Ok(txn)
    }

    /// Attach a durable store: every subsequent [`MasterDb::execute_txn`]
    /// is written ahead to its WAL. Recovery replay happens *before* this
    /// via [`MasterDb::recover`], which writes the log directly and must
    /// not re-append records the WAL already holds.
    pub fn attach_durability(&self, store: Arc<DurableStore>) {
        *self.durability.write() = Some(store);
    }

    /// The attached durable store, if any.
    pub fn durability(&self) -> Option<Arc<DurableStore>> {
        self.durability.read().clone()
    }

    /// Restore recovered state: checkpoint table images (replacing whatever
    /// the tables currently hold), then the WAL tail replayed on top.
    /// Returns the number of commits replayed. The log base is set so that
    /// pre-checkpoint cursors held by agents stay valid.
    pub fn recover(
        &self,
        tables: Vec<(String, Vec<Row>)>,
        base_log_len: u64,
        base_next_id: u64,
        commits: &[CommitRecord],
    ) -> Result<usize> {
        let mut log = self.log.write();
        for (name, rows) in tables {
            let handle = self.storage.table(&name)?;
            handle.update(|t| {
                // Replace, don't merge: an upsert over bulk-loaded state
                // would resurrect rows deleted before the checkpoint.
                t.truncate();
                for row in rows {
                    t.insert(row)?;
                }
                Ok(())
            })?;
        }
        log.base = base_log_len as usize;
        log.next_id = base_next_id;
        log.txns.clear();
        for rec in commits {
            let changes: Vec<TableChange> = rec
                .changes
                .iter()
                .map(|(table, change)| TableChange::new(table.clone(), change.clone()))
                .collect();
            let mut order: Vec<&str> = Vec::new();
            let mut groups: HashMap<&str, Vec<&RowChange>> = HashMap::new();
            for c in &changes {
                if !groups.contains_key(c.table.as_str()) {
                    order.push(&c.table);
                }
                groups.entry(c.table.as_str()).or_default().push(&c.change);
            }
            for table in &order {
                let handle = self.storage.table(table)?;
                let group = &groups[table];
                handle.update(|t| {
                    for change in group {
                        // Idempotent apply: a commit may be both inside the
                        // checkpoint image and still framed in the WAL when
                        // a crash lands between checkpoint and WAL reset.
                        t.apply(change)?;
                    }
                    Ok(())
                })?;
            }
            log.next_id = rec.id;
            log.txns.push(CommittedTxn {
                id: TxnId(rec.id),
                commit_time: Timestamp(rec.commit_ms),
                changes,
            });
        }
        Ok(commits.len())
    }

    /// Persist a replication agent's propagation position. No-op without a
    /// durable store; never forces an fsync of its own (see
    /// [`DurableStore::append_watermark`]).
    pub fn persist_watermark(&self, region: &str, cursor: u64, heartbeat_ms: i64) -> Result<()> {
        let durable = self.durability.read().clone();
        if let Some(store) = durable {
            store.append_watermark(&WatermarkRecord {
                region: region.to_string(),
                cursor,
                heartbeat_ms,
            })?;
        }
        Ok(())
    }

    /// Write a checkpoint capturing every master table, the given
    /// replication watermarks, and the log position, then truncate the WAL.
    /// Returns `false` (doing nothing) when no durable store is attached.
    pub fn checkpoint(&self, watermarks: &[WatermarkRecord]) -> Result<bool> {
        let durable = self.durability.read().clone();
        let Some(store) = durable else {
            return Ok(false);
        };
        // Hold the log read lock so the table images, log length, and id
        // form one consistent cut: no commit can land in between.
        let log = self.log.read();
        let mut tables = Vec::new();
        for name in self.storage.table_names() {
            let rows = self.storage.table(&name)?.snapshot().collect_all();
            tables.push((name, rows));
        }
        store.checkpoint(
            &tables,
            watermarks,
            (log.base + log.txns.len()) as u64,
            log.next_id,
            self.clock.now().millis(),
        )?;
        Ok(true)
    }

    /// Beat the heart of `region`: set its heartbeat row to the current
    /// time, as an ordinary logged transaction (so it replicates).
    pub fn beat(&self, region: RegionId) -> Result<CommittedTxn> {
        let now = self.clock.now();
        let row = Row::new(vec![
            Value::Int(region.raw() as i64),
            Value::Timestamp(now.millis()),
        ]);
        self.execute_txn(vec![TableChange::new(
            HEARTBEAT_TABLE,
            RowChange::Update {
                key: vec![Value::Int(region.raw() as i64)],
                row,
            },
        )])
    }

    /// Number of committed transactions in the log, lifetime — including
    /// transactions folded into a checkpoint and no longer held in memory.
    pub fn log_len(&self) -> usize {
        let log = self.log.read();
        log.base + log.txns.len()
    }

    /// Transactions with absolute index `>= cursor`, in commit order.
    /// Agents track a cursor; the returned slice index becomes the new
    /// cursor. Cursors below the log base (possible after recovery from a
    /// checkpoint) yield everything still retained — the retained suffix is
    /// exactly what a checkpoint-restored table image does not yet include,
    /// and replication applies are idempotent anyway.
    pub fn log_since(&self, cursor: usize) -> Vec<CommittedTxn> {
        let log = self.log.read();
        let idx = cursor.saturating_sub(log.base);
        log.txns.get(idx..).unwrap_or(&[]).to_vec()
    }

    /// Transactions with absolute index `>= cursor` whose commit time is at
    /// or before `as_of` — what a distribution agent propagating at time
    /// `t` with delivery delay `d` sees (`as_of = t − d`).
    pub fn log_since_until(&self, cursor: usize, as_of: Timestamp) -> Vec<CommittedTxn> {
        let log = self.log.read();
        let idx = cursor.saturating_sub(log.base);
        log.txns
            .get(idx..)
            .unwrap_or(&[])
            .iter()
            .take_while(|t| t.commit_time <= as_of)
            .cloned()
            .collect()
    }

    /// Id and time of the latest committed transaction (zero / epoch if no
    /// update has ever committed).
    pub fn latest_commit(&self) -> (TxnId, Timestamp) {
        let log = self.log.read();
        log.txns
            .last()
            .map(|t| (t.id, t.commit_time))
            .unwrap_or((TxnId::ZERO, Timestamp::ZERO))
    }

    /// Compute fresh statistics for a master table.
    pub fn compute_stats(&self, table: &str) -> Result<TableStats> {
        let t = self.storage.table(table)?.snapshot();
        Ok(TableStats::compute(&t))
    }

    /// Snapshot (clone) of a master table's current rows, used to populate
    /// a newly created cached view. Returns the rows plus the log cursor at
    /// copy time, so the subscribing agent knows where to resume.
    pub fn snapshot_table(&self, table: &str) -> Result<(Vec<Row>, usize)> {
        // Hold the log lock so no transaction commits between reading the
        // rows and reading the cursor — the copy is a consistent snapshot.
        let log = self.log.read();
        let rows = self.storage.table(table)?.snapshot().collect_all();
        Ok((rows, log.base + log.txns.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Duration, Schema, SimClock};

    fn setup() -> (MasterDb, SimClock) {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let db = MasterDb::new(catalog.clone(), Arc::new(clock.clone()));
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]);
        let meta = TableMeta::new(catalog.next_table_id(), "t", schema, vec!["id".into()]).unwrap();
        db.create_table(&meta).unwrap();
        catalog.register_table(meta).unwrap();
        (db, clock)
    }

    fn ins(id: i64, val: i64) -> TableChange {
        TableChange::new(
            "t",
            RowChange::Insert(Row::new(vec![Value::Int(id), Value::Int(val)])),
        )
    }

    #[test]
    fn txn_ids_and_times_monotonic() {
        let (db, clock) = setup();
        let t1 = db.execute_txn(vec![ins(1, 10)]).unwrap();
        clock.advance(Duration::from_secs(3));
        let t2 = db.execute_txn(vec![ins(2, 20)]).unwrap();
        assert!(t2.id > t1.id);
        assert!(t2.commit_time > t1.commit_time);
        assert_eq!(db.latest_commit(), (t2.id, t2.commit_time));
    }

    #[test]
    fn txn_applies_to_master_table() {
        let (db, _) = setup();
        db.execute_txn(vec![ins(1, 10), ins(2, 20)]).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.snapshot().row_count(), 2);
        db.execute_txn(vec![TableChange::new(
            "t",
            RowChange::Delete {
                key: vec![Value::Int(1)],
            },
        )])
        .unwrap();
        assert_eq!(t.snapshot().row_count(), 1);
    }

    #[test]
    fn empty_and_bad_txns_rejected() {
        let (db, _) = setup();
        assert!(db.execute_txn(vec![]).is_err());
        assert!(db
            .execute_txn(vec![TableChange::new(
                "ghost",
                RowChange::Delete { key: vec![] }
            )])
            .is_err());
        assert_eq!(db.log_len(), 0, "failed txns must not reach the log");
    }

    #[test]
    fn log_cursors() {
        let (db, _) = setup();
        db.execute_txn(vec![ins(1, 1)]).unwrap();
        db.execute_txn(vec![ins(2, 2)]).unwrap();
        db.execute_txn(vec![ins(3, 3)]).unwrap();
        assert_eq!(db.log_len(), 3);
        assert_eq!(db.log_since(0).len(), 3);
        assert_eq!(db.log_since(2).len(), 1);
        assert_eq!(db.log_since(99).len(), 0);
    }

    #[test]
    fn log_until_respects_commit_time() {
        let (db, clock) = setup();
        db.execute_txn(vec![ins(1, 1)]).unwrap(); // t=0
        clock.advance(Duration::from_secs(10));
        db.execute_txn(vec![ins(2, 2)]).unwrap(); // t=10s
        let visible = db.log_since_until(0, Timestamp(5_000));
        assert_eq!(visible.len(), 1);
        let visible = db.log_since_until(0, Timestamp(10_000));
        assert_eq!(visible.len(), 2);
    }

    #[test]
    fn heartbeat_beats_through_log() {
        let (db, clock) = setup();
        clock.advance(Duration::from_secs(7));
        let txn = db.beat(RegionId(3)).unwrap();
        assert_eq!(txn.changes.len(), 1);
        let hb = db.table(HEARTBEAT_TABLE).unwrap();
        let row = hb.snapshot().get(&[Value::Int(3)]).unwrap().clone();
        assert_eq!(row.get(1), &Value::Timestamp(7_000));
        // second beat updates in place
        clock.advance(Duration::from_secs(2));
        db.beat(RegionId(3)).unwrap();
        assert_eq!(hb.snapshot().row_count(), 1);
        assert_eq!(
            hb.snapshot().get(&[Value::Int(3)]).unwrap().get(1),
            &Value::Timestamp(9_000)
        );
    }

    #[test]
    fn bulk_load_is_unlogged() {
        let (db, _) = setup();
        db.bulk_load("t", vec![Row::new(vec![Value::Int(1), Value::Int(1)])])
            .unwrap();
        assert_eq!(db.log_len(), 0);
        assert_eq!(db.table("t").unwrap().snapshot().row_count(), 1);
    }

    #[test]
    fn snapshot_returns_rows_and_cursor() {
        let (db, _) = setup();
        db.execute_txn(vec![ins(1, 1)]).unwrap();
        let (rows, cursor) = db.snapshot_table("t").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(cursor, 1);
        db.execute_txn(vec![ins(2, 2)]).unwrap();
        assert_eq!(db.log_since(cursor).len(), 1);
    }

    #[test]
    fn stats_computed_from_master() {
        let (db, _) = setup();
        for i in 0..50 {
            db.execute_txn(vec![ins(i, i * 2)]).unwrap();
        }
        let stats = db.compute_stats("t").unwrap();
        assert_eq!(stats.row_count, 50);
    }

    mod durable {
        use super::*;
        use rcc_storage::{DurableStore, SyncPolicy};
        use std::path::{Path, PathBuf};

        fn temp_dir(tag: &str) -> PathBuf {
            let dir = std::env::temp_dir().join(format!("rcc-master-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }

        /// Build a master over `dir`, replaying whatever the store holds.
        fn durable_setup(dir: &Path) -> (MasterDb, SimClock, usize) {
            let (store, state) = DurableStore::open(dir, SyncPolicy::Always).unwrap();
            let (db, clock) = setup();
            let replayed = db
                .recover(
                    state.tables,
                    state.base_log_len,
                    state.next_id,
                    &state.commits,
                )
                .unwrap();
            if state.last_clock_ms > 0 {
                clock.set(Timestamp(state.last_clock_ms));
            }
            db.attach_durability(store);
            (db, clock, replayed)
        }

        #[test]
        fn commits_survive_reopen_without_checkpoint() {
            let dir = temp_dir("wal");
            {
                let (db, clock, _) = durable_setup(&dir);
                db.execute_txn(vec![ins(1, 10)]).unwrap();
                clock.advance(Duration::from_secs(5));
                db.execute_txn(vec![ins(2, 20)]).unwrap();
                db.execute_txn(vec![TableChange::new(
                    "t",
                    RowChange::Delete {
                        key: vec![Value::Int(1)],
                    },
                )])
                .unwrap();
            } // dropped without checkpoint: the crash path
            let (db, clock, replayed) = durable_setup(&dir);
            assert_eq!(replayed, 3);
            assert_eq!(db.log_len(), 3);
            let t = db.table("t").unwrap().snapshot();
            assert_eq!(t.row_count(), 1);
            assert_eq!(
                t.get(&[Value::Int(2)]).unwrap().get(1),
                &Value::Int(20),
                "deleted row must not resurrect"
            );
            assert_eq!(clock.now(), Timestamp(5_000), "clock restored from log");
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn checkpoint_truncates_wal_and_preserves_cursors() {
            let dir = temp_dir("ckpt");
            {
                let (db, _, _) = durable_setup(&dir);
                db.execute_txn(vec![ins(1, 10)]).unwrap();
                db.execute_txn(vec![ins(2, 20)]).unwrap();
                assert!(db.checkpoint(&[]).unwrap());
                assert_eq!(db.durability().unwrap().wal_records(), 0);
                db.execute_txn(vec![ins(3, 30)]).unwrap();
            }
            let (db, _, replayed) = durable_setup(&dir);
            assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
            assert_eq!(db.log_len(), 3, "absolute length includes the base");
            assert_eq!(db.table("t").unwrap().snapshot().row_count(), 3);
            // A cursor taken before the checkpoint still drains correctly.
            assert_eq!(db.log_since(2).len(), 1);
            assert_eq!(db.log_since(0).len(), 1, "clamped to the retained tail");
            let (_, cursor) = db.snapshot_table("t").unwrap();
            assert_eq!(cursor, 3);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn watermarks_roundtrip_through_store() {
            let dir = temp_dir("wm");
            {
                let (db, _, _) = durable_setup(&dir);
                db.persist_watermark("CR1", 7, 4_000).unwrap();
                db.persist_watermark("CR1", 9, 6_000).unwrap();
                db.persist_watermark("CR2", 3, -1).unwrap();
            }
            let (store, state) = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            drop(store);
            assert_eq!(state.watermarks.len(), 2);
            let cr1 = state.watermarks.iter().find(|w| w.region == "CR1").unwrap();
            assert_eq!((cr1.cursor, cr1.heartbeat_ms), (9, 6_000));
            let cr2 = state.watermarks.iter().find(|w| w.region == "CR2").unwrap();
            assert_eq!((cr2.cursor, cr2.heartbeat_ms), (3, -1));
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn in_memory_master_is_unaffected() {
            let (db, _) = setup();
            assert!(db.durability().is_none());
            assert!(!db.checkpoint(&[]).unwrap());
            db.persist_watermark("CR1", 1, 0).unwrap();
            db.execute_txn(vec![ins(1, 1)]).unwrap();
            assert_eq!(db.log_len(), 1);
        }
    }
}
