//! Metrics registry: counters, gauges, histograms, Prometheus exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Reasonable buckets (seconds) for sub-second query/remote latencies.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.000_01, 0.000_05, 0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
];

/// Buckets (seconds) for observed replica staleness: spans heartbeat
/// intervals of a few seconds up to badly stalled regions.
pub const DEFAULT_STALENESS_BUCKETS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
];

/// Buckets (seconds) for currency slack — promised bound minus delivered
/// staleness. Slack is signed: negative buckets capture how badly a served
/// snapshot overran its clause's bound.
pub const DEFAULT_SLACK_BUCKETS: &[f64] = &[
    -600.0, -60.0, -10.0, -5.0, -1.0, 0.0, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 3600.0,
];

/// Buckets (counts) for morsels-per-scan: how finely parallel scans split.
pub const DEFAULT_MORSEL_BUCKETS: &[f64] =
    &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Buckets (row counts) for batch cardinality: from near-empty trailing
/// batches up to oversized scan fills.
pub const DEFAULT_BATCH_ROWS_BUCKETS: &[f64] = &[
    1.0, 16.0, 64.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0,
];

/// Buckets (ratio) for filter selectivity: fraction of a batch surviving
/// a predicate.
pub const DEFAULT_SELECTIVITY_BUCKETS: &[f64] = &[0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let inner: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{}{{{}}}", self.name, inner.join(","))
        }
    }

    fn render_with(&self, extra_key: &str, extra_val: &str) -> String {
        let mut labels = self.labels.clone();
        labels.push((extra_key.to_string(), extra_val.to_string()));
        let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// Handle to a monotonically increasing (but resettable) counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — used by facade collectors that mirror an
    /// external source of truth (including its resets) into the registry.
    pub fn set(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge (an arbitrary `f64` that goes up and down).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) atomically — occupancy-style gauges
    /// (open connections, pooled sockets in use) are incremented and
    /// decremented from many threads.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive), ascending; an implicit +Inf bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing +Inf bucket.
    counts: Vec<AtomicU64>,
    /// Total of observed values, as `f64` bits (CAS-accumulated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the containing bucket; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Frozen histogram state with quantile estimation.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending); a +Inf bucket follows implicitly.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per bound plus the +Inf bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile; `None` if no observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // +Inf bucket: report its lower edge
                    return Some(lo);
                };
                let within = (rank - cumulative as f64) / c as f64;
                return Some(lo + (hi - lo) * within.clamp(0.0, 1.0));
            }
            cumulative = next;
        }
        Some(*self.bounds.last().unwrap_or(&0.0))
    }
}

/// One value in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of every registered metric, keyed by rendered name
/// (`name{label="v"}`).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Rendered key → value.
    pub values: BTreeMap<String, SnapshotValue>,
}

impl MetricsSnapshot {
    /// Counter value by rendered key (`name` or `name{k="v"}`); 0 if absent.
    pub fn counter(&self, key: &str) -> u64 {
        match self.values.get(key) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by rendered key; `None` if absent.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.values.get(key) {
            Some(SnapshotValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by rendered key; `None` if absent.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(key) {
            Some(SnapshotValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

type Collector = Box<dyn Fn() + Send + Sync>;

/// Registry of named metrics. Cheap to clone handles out of; all handles
/// stay live after the registry is snapshotted or rendered.
///
/// Layers that keep their own counters (e.g. the executor's `ExecCounters`
/// facade) register a *collector* closure that mirrors those values into
/// registry handles; collectors run before every snapshot/render, so
/// external resets are always reflected.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Counter>>,
    gauges: Mutex<BTreeMap<MetricKey, Gauge>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
    help: Mutex<BTreeMap<String, &'static str>>,
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        lock(&self.counters)
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        lock(&self.gauges)
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
            .clone()
    }

    /// Get or create a histogram with the given bucket upper bounds.
    ///
    /// Bounds are fixed at first creation; later calls with the same name
    /// and labels return the existing histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        lock(&self.histograms)
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram {
                inner: Arc::new(HistogramInner {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            })
            .clone()
    }

    /// Attach a `# HELP` line to a metric name.
    pub fn describe(&self, name: &str, help: &'static str) {
        lock(&self.help).insert(name.to_string(), help);
    }

    /// Register a closure run before every snapshot/render; used to mirror
    /// externally owned counters into the registry.
    pub fn register_collector(&self, f: impl Fn() + Send + Sync + 'static) {
        lock(&self.collectors).push(Box::new(f));
    }

    fn run_collectors(&self) {
        // take the collectors out while running so a collector that
        // touches the registry cannot deadlock on the collectors lock
        let collectors = std::mem::take(&mut *lock(&self.collectors));
        for c in &collectors {
            c();
        }
        let mut slot = lock(&self.collectors);
        let newly_added = std::mem::take(&mut *slot);
        *slot = collectors;
        slot.extend(newly_added);
    }

    /// Point-in-time copy of every metric (collectors run first).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.run_collectors();
        let mut values = BTreeMap::new();
        for (k, c) in lock(&self.counters).iter() {
            values.insert(k.render(), SnapshotValue::Counter(c.get()));
        }
        for (k, g) in lock(&self.gauges).iter() {
            values.insert(k.render(), SnapshotValue::Gauge(g.get()));
        }
        for (k, h) in lock(&self.histograms).iter() {
            values.insert(k.render(), SnapshotValue::Histogram(h.snapshot()));
        }
        MetricsSnapshot { values }
    }

    /// Distinct metric names currently registered.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.counters)
            .keys()
            .chain(lock(&self.gauges).keys())
            .chain(lock(&self.histograms).keys())
            .map(|k| k.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Render everything in Prometheus text exposition format
    /// (collectors run first).
    pub fn render_prometheus(&self) -> String {
        self.run_collectors();
        let help = lock(&self.help);
        let mut out = String::new();
        let mut typed: BTreeMap<String, &str> = BTreeMap::new();

        let counters = lock(&self.counters);
        for (k, c) in counters.iter() {
            Self::header(&mut out, &mut typed, &help, &k.name, "counter");
            let _ = writeln!(out, "{} {}", k.render(), c.get());
        }
        drop(counters);

        let gauges = lock(&self.gauges);
        for (k, g) in gauges.iter() {
            Self::header(&mut out, &mut typed, &help, &k.name, "gauge");
            let _ = writeln!(out, "{} {}", k.render(), g.get());
        }
        drop(gauges);

        let histograms = lock(&self.histograms);
        for (k, h) in histograms.iter() {
            Self::header(&mut out, &mut typed, &help, &k.name, "histogram");
            let snap = h.snapshot();
            let mut cumulative = 0u64;
            let bucket_name = format!("{}_bucket", k.name);
            let bucket_key = MetricKey {
                name: bucket_name,
                labels: k.labels.clone(),
            };
            for (i, count) in snap.counts.iter().enumerate() {
                cumulative += count;
                let le = if i < snap.bounds.len() {
                    format!("{}", snap.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(out, "{} {}", bucket_key.render_with("le", &le), cumulative);
            }
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_sum", k.name),
                    labels: k.labels.clone()
                }
                .render(),
                snap.sum
            );
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_count", k.name),
                    labels: k.labels.clone()
                }
                .render(),
                snap.count
            );
        }
        out
    }

    fn header(
        out: &mut String,
        typed: &mut BTreeMap<String, &str>,
        help: &BTreeMap<String, &'static str>,
        name: &str,
        kind: &'static str,
    ) {
        if typed.insert(name.to_string(), kind).is_none() {
            if let Some(h) = help.get(name) {
                let _ = writeln!(out, "# HELP {name} {h}");
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("reqs_total", &[("kind", "select")]);
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("reqs_total", &[("kind", "select")]).get(), 5);
        let g = reg.gauge("lag_seconds", &[("region", "cr1")]);
        g.set(2.5);
        assert_eq!(reg.gauge("lag_seconds", &[("region", "cr1")]).get(), 2.5);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("m{a=\"1\",b=\"2\"}"), 2);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[], &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.6).abs() < 1e-9);
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 2.0, "p99={p99}");
        assert!(reg.histogram("lat", &[], &[1.0]).quantile(0.5).is_some());
    }

    #[test]
    fn histogram_overflow_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[], &[1.0]);
        h.observe(50.0);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![0, 1]);
        // +Inf bucket reports its lower edge
        assert_eq!(h.quantile(0.9), Some(1.0));
    }

    #[test]
    fn collectors_run_on_snapshot_and_render() {
        let reg = Arc::new(MetricsRegistry::new());
        let source = Arc::new(AtomicU64::new(7));
        let mirror = reg.counter("mirrored_total", &[]);
        let src = source.clone();
        reg.register_collector(move || mirror.set(src.load(Ordering::Relaxed)));
        assert_eq!(reg.snapshot().counter("mirrored_total"), 7);
        source.store(3, Ordering::Relaxed); // external reset goes down too
        assert_eq!(reg.snapshot().counter("mirrored_total"), 3);
        assert!(reg.render_prometheus().contains("mirrored_total 3"));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.describe("reqs_total", "Total requests.");
        reg.counter("reqs_total", &[("kind", "select")]).add(2);
        reg.gauge("temp", &[]).set(1.25);
        reg.histogram("lat_seconds", &[], &[0.1, 1.0]).observe(0.05);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP reqs_total Total requests."));
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total{kind=\"select\"} 2"));
        assert!(text.contains("# TYPE temp gauge"));
        assert!(text.contains("temp 1.25"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_count 1"));
    }

    #[test]
    fn metric_names_dedup() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("x", "1")]);
        reg.counter("a_total", &[("x", "2")]);
        reg.gauge("b", &[]);
        assert_eq!(
            reg.metric_names(),
            vec!["a_total".to_string(), "b".to_string()]
        );
    }
}
