//! Canonical registry of every metric name the workspace emits.
//!
//! One entry per `rcc_*` time series, exactly once. `workspace-lint`
//! (crates/rcc-lint) parses every crate's source and fails the build if a
//! metric string literal is used that is not registered here, or if a name
//! is registered twice or never used — so this list is the single source
//! of truth for the observable surface. Operational help text still lives
//! next to the `describe()` calls at each registration site; the short
//! summaries here are for discovery.

/// Every metric name in the workspace with a one-line summary.
/// Sorted by name; each name appears exactly once.
pub const METRICS: &[(&str, &str)] = &[
    (
        "rcc_admin_requests_total",
        "Admin HTTP requests served per route",
    ),
    (
        "rcc_batch_produced_total",
        "Column batches produced by executors",
    ),
    ("rcc_batch_rows_per_batch", "Rows per batch at query roots"),
    ("rcc_batch_selectivity", "Filter survival ratio per batch"),
    (
        "rcc_bufpool_evictions_total",
        "Checkpoint buffer-pool frame evictions",
    ),
    (
        "rcc_bufpool_frames_in_use",
        "Checkpoint buffer-pool frames resident",
    ),
    (
        "rcc_currency_slack_seconds",
        "Promised bound minus delivered staleness",
    ),
    (
        "rcc_delivered_staleness_seconds",
        "Actual staleness of served snapshots",
    ),
    ("rcc_events_total", "Journal events recorded per kind"),
    (
        "rcc_flow_guards_elided_total",
        "Currency guards removed at compile time by certified elision",
    ),
    (
        "rcc_flow_interval_violations_total",
        "Observed delivered staleness escaping a certified flow interval",
    ),
    ("rcc_guard_local_total", "Currency guards passed locally"),
    (
        "rcc_guard_remote_total",
        "Currency guards forcing remote reads",
    ),
    (
        "rcc_guard_staleness_seconds",
        "Observed staleness at guard checks",
    ),
    (
        "rcc_lint_diagnostics_total",
        "Currency-clause lint diagnostics",
    ),
    (
        "rcc_master_txns_total",
        "Transactions applied at the master",
    ),
    (
        "rcc_net_connections_open",
        "Front-end connections currently open",
    ),
    (
        "rcc_net_connections_rejected_total",
        "Connections over limit",
    ),
    (
        "rcc_net_connections_total",
        "Front-end connections accepted",
    ),
    ("rcc_net_pool_idle", "Idle pooled back-end connections"),
    (
        "rcc_net_pool_in_use",
        "Checked-out pooled back-end connections",
    ),
    ("rcc_net_remote_call_seconds", "Back-end call latency"),
    ("rcc_net_remote_retries_total", "Back-end call retries"),
    (
        "rcc_net_remote_timeouts_total",
        "Back-end call deadline hits",
    ),
    (
        "rcc_net_remote_unavailable_total",
        "Back-end declared unreachable",
    ),
    (
        "rcc_net_request_errors_total",
        "Front-end requests that errored",
    ),
    ("rcc_net_request_seconds", "Front-end request latency"),
    ("rcc_net_requests_total", "Front-end requests served"),
    (
        "rcc_observations_dropped_total",
        "Guard observations dropped",
    ),
    ("rcc_plan_cache_entries", "Compiled plans currently cached"),
    ("rcc_plan_cache_hits_total", "Plan-cache hits"),
    ("rcc_plan_cache_misses_total", "Plan-cache misses"),
    (
        "rcc_policy_degradations_total",
        "Violation-policy downgrades",
    ),
    ("rcc_queries_total", "Statements executed at the cache"),
    ("rcc_query_phase_seconds", "Per-phase query time"),
    ("rcc_query_rows_returned_total", "Rows returned to clients"),
    ("rcc_remote_latency_seconds", "Remote execution latency"),
    (
        "rcc_remote_queries_total",
        "Queries shipped to the back-end",
    ),
    ("rcc_replication_lag_seconds", "Replication lag per region"),
    (
        "rcc_replication_txns_applied_total",
        "Replicated txns applied",
    ),
    (
        "rcc_robust_audits_total",
        "Template robustness analyses run",
    ),
    (
        "rcc_robust_templates",
        "Declared templates by robustness verdict",
    ),
    ("rcc_rows_shipped_total", "Rows received from the back-end"),
    ("rcc_scan_morsels_per_scan", "Morsels per parallel scan"),
    (
        "rcc_scan_morsels_total",
        "Morsels dispatched to scan workers",
    ),
    (
        "rcc_scan_parallel_total",
        "Scans executed on the morsel pool",
    ),
    ("rcc_scan_serial_total", "Scans executed serially"),
    ("rcc_scan_workers", "Scan worker threads configured"),
    (
        "rcc_slo_compliance_ratio",
        "Fraction of queries meeting their currency bound or degrading sanctioned",
    ),
    (
        "rcc_slo_queries_total",
        "Queries tracked by the currency SLO",
    ),
    (
        "rcc_slo_violations_total",
        "Queries whose currency slack went negative",
    ),
    ("rcc_snapshot_publishes_total", "Table snapshots published"),
    (
        "rcc_stale_served_total",
        "Queries served stale under policy",
    ),
    (
        "rcc_trace_dropped_spans_total",
        "Spans recorded after their trace finished",
    ),
    ("rcc_verify_audits_total", "Plan conformance audits run"),
    (
        "rcc_verify_failures_total",
        "Plan conformance audits failed",
    ),
    ("rcc_wal_bytes", "Write-ahead log size on disk"),
    (
        "rcc_wal_checkpoint_age_seconds",
        "Sim-clock seconds since the last checkpoint",
    ),
    ("rcc_wal_fsyncs_total", "WAL fsync calls issued"),
    (
        "rcc_wal_records_total",
        "WAL records since the last checkpoint",
    ),
    ("rcc_wire_bytes_decoded_total", "Protocol bytes decoded"),
    ("rcc_wire_bytes_encoded_total", "Protocol bytes encoded"),
];

/// Is `name` a registered metric name?
pub fn is_registered(name: &str) -> bool {
    METRICS.binary_search_by(|(n, _)| n.cmp(&name)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for w in METRICS.windows(2) {
            assert!(w[0].0 < w[1].0, "{} >= {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup() {
        assert!(is_registered("rcc_queries_total"));
        assert!(!is_registered("rcc_bogus_total"));
    }

    #[test]
    fn naming_discipline() {
        for (name, help) in METRICS {
            assert!(name.starts_with("rcc_"), "{name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name}"
            );
            assert!(!help.is_empty());
        }
    }
}
