#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Observability layer for the RC&C mid-tier cache.
//!
//! The paper's whole evaluation is a measurement story — guard pass rates,
//! local/remote branch mix, phase breakdowns, replication-lag-driven plan
//! switching (Tables 4.3–4.5, Fig. 4.2) — so the cache needs first-class
//! visibility rather than ad-hoc atomics. This crate is std-only and
//! provides three pieces, wired through every layer of the pipeline:
//!
//! * [`MetricsRegistry`]: named counters, gauges, and fixed-bucket
//!   histograms with p50/p95/p99 estimates, snapshotable and renderable as
//!   Prometheus text exposition.
//! * [`Tracer`]: lightweight per-query spans with RAII guards, nesting,
//!   and a ring buffer of recent traces for post-hoc dumps.
//! * [`QueryStats`]: a per-statement record of phase timings
//!   (parse/bind/optimize/guard-eval/local-exec/remote-ship), row and byte
//!   counts, and plan-cache outcome.

mod events;
pub mod names;
mod registry;
mod stats;
mod trace;

pub use events::{Event, EventJournal, EventKind};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SnapshotValue,
    DEFAULT_BATCH_ROWS_BUCKETS, DEFAULT_LATENCY_BUCKETS, DEFAULT_MORSEL_BUCKETS,
    DEFAULT_SELECTIVITY_BUCKETS, DEFAULT_SLACK_BUCKETS, DEFAULT_STALENESS_BUCKETS,
};
pub use stats::{QueryPhase, QueryStats};
pub use trace::{SpanGuard, SpanRecord, Trace, TraceHandle, TraceRef, Tracer};
