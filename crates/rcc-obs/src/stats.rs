//! Per-statement phase statistics.

use std::time::Duration;

/// The measured phases of one statement's lifecycle, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPhase {
    /// SQL text → AST.
    Parse,
    /// Name resolution and normalization against the catalog.
    Bind,
    /// Plan search (skipped on a plan-cache hit).
    Optimize,
    /// Currency-guard evaluation inside SwitchUnion operators.
    GuardEval,
    /// Local operator execution (setup + run + shutdown minus guard and
    /// remote time).
    LocalExec,
    /// Time spent shipping queries to the back-end and decoding results.
    RemoteShip,
}

impl QueryPhase {
    /// All phases, pipeline order.
    pub const ALL: [QueryPhase; 6] = [
        QueryPhase::Parse,
        QueryPhase::Bind,
        QueryPhase::Optimize,
        QueryPhase::GuardEval,
        QueryPhase::LocalExec,
        QueryPhase::RemoteShip,
    ];

    /// Stable lowercase name (used as a metric label).
    pub fn name(self) -> &'static str {
        match self {
            QueryPhase::Parse => "parse",
            QueryPhase::Bind => "bind",
            QueryPhase::Optimize => "optimize",
            QueryPhase::GuardEval => "guard_eval",
            QueryPhase::LocalExec => "local_exec",
            QueryPhase::RemoteShip => "remote_ship",
        }
    }
}

/// Phase timings, row/byte counts, and plan-cache outcome for one
/// executed statement. Attached to every `QueryResult`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Trace id assigned by the tracer (0 when tracing is off).
    pub trace_id: u64,
    /// True if the plan came from the plan cache (optimize was skipped).
    pub plan_cache_hit: bool,
    /// SQL text → AST.
    pub parse: Duration,
    /// Binding/normalization time.
    pub bind: Duration,
    /// Plan search time (zero on plan-cache hits).
    pub optimize: Duration,
    /// Currency-guard evaluation time.
    pub guard_eval: Duration,
    /// Local execution time (excludes guard and remote time).
    pub local_exec: Duration,
    /// Remote shipping time (back-end round trips, decode included).
    pub remote_ship: Duration,
    /// Rows returned to the client.
    pub rows_returned: u64,
    /// Result-set bytes shipped over the simulated wire for this query.
    pub bytes_shipped: u64,
    /// Remote sub-queries issued while executing.
    pub remote_queries: u64,
}

impl QueryStats {
    /// Duration of one phase.
    pub fn phase(&self, phase: QueryPhase) -> Duration {
        match phase {
            QueryPhase::Parse => self.parse,
            QueryPhase::Bind => self.bind,
            QueryPhase::Optimize => self.optimize,
            QueryPhase::GuardEval => self.guard_eval,
            QueryPhase::LocalExec => self.local_exec,
            QueryPhase::RemoteShip => self.remote_ship,
        }
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        QueryPhase::ALL.iter().map(|p| self.phase(*p)).sum()
    }

    /// One-line summary (phases with µs precision).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = QueryPhase::ALL
            .iter()
            .map(|p| format!("{}={:?}", p.name(), self.phase(*p)))
            .collect();
        parts.push(format!("rows={}", self.rows_returned));
        parts.push(format!("bytes={}", self.bytes_shipped));
        parts.push(format!(
            "plan_cache={}",
            if self.plan_cache_hit { "hit" } else { "miss" }
        ));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let stats = QueryStats {
            parse: Duration::from_micros(10),
            bind: Duration::from_micros(20),
            optimize: Duration::from_micros(30),
            guard_eval: Duration::from_micros(5),
            local_exec: Duration::from_micros(100),
            remote_ship: Duration::from_micros(200),
            ..QueryStats::default()
        };
        assert_eq!(stats.total(), Duration::from_micros(365));
        assert_eq!(
            stats.phase(QueryPhase::RemoteShip),
            Duration::from_micros(200)
        );
    }

    #[test]
    fn render_mentions_every_phase_and_counts() {
        let stats = QueryStats {
            rows_returned: 3,
            plan_cache_hit: true,
            ..QueryStats::default()
        };
        let s = stats.render();
        for phase in QueryPhase::ALL {
            assert!(s.contains(phase.name()), "missing {} in {s}", phase.name());
        }
        assert!(s.contains("rows=3"));
        assert!(s.contains("plan_cache=hit"));
    }
}
