//! Bounded structured event journal.
//!
//! The cache records notable control-plane events — policy degradations,
//! currency violations, back-end failovers, lint findings, durability
//! recoveries — into a fixed
//! capacity ring so operators can answer "what happened and why" without
//! scraping logs. The journal is queryable via `SHOW EVENTS` and the admin
//! endpoint's `/events` route; lifetime counts are mirrored into the
//! `rcc_events_total` counter per kind.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::registry::MetricsRegistry;

/// Classification of a journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A query was served stale under a sanctioned `serve_stale` policy arm.
    Degradation,
    /// A currency guard could not be satisfied and the query was rejected.
    Violation,
    /// The back-end link changed availability (marked up or down).
    Failover,
    /// The currency-clause linter flagged a statement at compile time.
    Lint,
    /// A durable back-end restarted and replayed its WAL/checkpoint state.
    Recovery,
    /// The template robustness analyzer pinned a declared template to the
    /// strict path (`NOT ROBUST` verdict at `CREATE TEMPLATE` time).
    Robustness,
}

impl EventKind {
    /// Stable lowercase name, used as metric label and wire value.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Degradation => "degradation",
            EventKind::Violation => "violation",
            EventKind::Failover => "failover",
            EventKind::Lint => "lint",
            EventKind::Recovery => "recovery",
            EventKind::Robustness => "robustness",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused).
    pub seq: u64,
    /// Simulation-clock timestamp in milliseconds at record time.
    pub at_ms: i64,
    /// Event classification.
    pub kind: EventKind,
    /// Human-readable cause, e.g. the guard that failed.
    pub cause: String,
    /// Policy arm that produced the event (`"reject"`, `"serve_stale"`, or
    /// empty when no policy was involved).
    pub policy: String,
    /// Label of the session that triggered the event (empty for
    /// system-initiated events such as failovers).
    pub session: String,
    /// Trace id of the query involved, 0 if none.
    pub trace_id: u64,
}

struct JournalInner {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    next_seq: AtomicU64,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded, thread-safe ring of [`Event`]s.
#[derive(Clone)]
pub struct EventJournal {
    inner: Arc<JournalInner>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl EventJournal {
    /// A journal retaining at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            inner: Arc::new(JournalInner {
                ring: Mutex::new(VecDeque::new()),
                capacity: capacity.max(1),
                next_seq: AtomicU64::new(1),
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Attach a metrics registry; subsequent records bump
    /// `rcc_events_total{kind=...}`.
    pub fn set_metrics(&self, metrics: Arc<MetricsRegistry>) {
        *lock(&self.inner.metrics) = Some(metrics);
    }

    /// Record an event; returns its sequence number.
    pub fn record(
        &self,
        at_ms: i64,
        kind: EventKind,
        cause: impl Into<String>,
        policy: impl Into<String>,
        session: impl Into<String>,
        trace_id: u64,
    ) -> u64 {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            at_ms,
            kind,
            cause: cause.into(),
            policy: policy.into(),
            session: session.into(),
            trace_id,
        };
        {
            let mut ring = lock(&self.inner.ring);
            if ring.len() == self.inner.capacity {
                ring.pop_front();
            }
            ring.push_back(event);
        }
        if let Some(metrics) = lock(&self.inner.metrics).clone() {
            metrics
                .counter("rcc_events_total", &[("kind", kind.name())])
                .inc();
        }
        seq
    }

    /// The most recent events, oldest first, up to `n`.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = lock(&self.inner.ring);
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Number of events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        lock(&self.inner.ring).len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of recorded events, including evicted ones.
    pub fn total(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_sequenced() {
        let journal = EventJournal::new(3);
        for i in 0..5 {
            journal.record(
                i,
                EventKind::Degradation,
                format!("cause{i}"),
                "serve_stale",
                "session-1",
                7,
            );
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.total(), 5);
        let recent = journal.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[2].seq, 5);
        assert_eq!(recent[2].cause, "cause4");
        assert_eq!(recent[2].policy, "serve_stale");
    }

    #[test]
    fn metrics_count_per_kind() {
        let metrics = Arc::new(MetricsRegistry::new());
        let journal = EventJournal::new(8);
        journal.set_metrics(Arc::clone(&metrics));
        journal.record(0, EventKind::Failover, "link down", "", "", 0);
        journal.record(
            1,
            EventKind::Violation,
            "CR1 too stale",
            "reject",
            "session-2",
            3,
        );
        journal.record(2, EventKind::Failover, "link up", "", "", 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("rcc_events_total{kind=\"failover\"}"), 2);
        assert_eq!(snap.counter("rcc_events_total{kind=\"violation\"}"), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::Degradation.name(), "degradation");
        assert_eq!(EventKind::Violation.name(), "violation");
        assert_eq!(EventKind::Failover.name(), "failover");
        assert_eq!(EventKind::Lint.name(), "lint");
        assert_eq!(EventKind::Recovery.name(), "recovery");
    }
}
