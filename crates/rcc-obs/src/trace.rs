//! Lightweight span tracing with per-query trace IDs and a ring buffer of
//! recent traces.
//!
//! Traces can span processes: a [`TraceRef`] is a cloneable handle that
//! lower layers (the remote transport) carry along, opening spans on the
//! same trace and merging span trees recorded by a remote peer via
//! [`TraceRef::merge_spans`]. Spans recorded after a trace has finished are
//! never silently lost — they are counted per tracer
//! ([`Tracer::dropped_spans`]) so the `rcc_trace_dropped_spans_total`
//! metric can expose the slow path.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One completed span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `"optimize"`.
    pub name: String,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: usize,
    /// Offset from the trace start when the span opened.
    pub start: Duration,
    /// Span duration.
    pub elapsed: Duration,
}

/// A completed trace: ordered spans plus identity.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Unique id, monotonically assigned per tracer.
    pub id: u64,
    /// Label given at trace start (typically the SQL text).
    pub label: String,
    /// Total wall time from start to finish.
    pub elapsed: Duration,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Render as an indented multi-line summary.
    pub fn render(&self) -> String {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| s.start);
        let mut out = format!("trace #{} [{:?}] {}\n", self.id, self.elapsed, self.label);
        for s in &spans {
            out.push_str(&format!(
                "{:indent$}{} [{:?}] (+{:?})\n",
                "",
                s.name,
                s.elapsed,
                s.start,
                indent = 2 + 2 * s.depth
            ));
        }
        out
    }
}

struct ActiveTrace {
    id: u64,
    label: String,
    start: Instant,
    depth: AtomicUsize,
    finished: AtomicBool,
    spans: Mutex<Vec<SpanRecord>>,
    tracer: Weak<TracerInner>,
}

impl ActiveTrace {
    /// Count `n` spans that arrived after this trace finished.
    fn count_dropped(&self, n: u64) {
        if let Some(tracer) = self.tracer.upgrade() {
            tracer.dropped_spans.fetch_add(n, Ordering::Relaxed);
        }
    }
}

struct TracerInner {
    next_id: AtomicU64,
    capacity: usize,
    finished: Mutex<std::collections::VecDeque<Trace>>,
    dropped_spans: AtomicU64,
}

/// Factory for traces; owns the ring buffer of recently finished traces.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(64)
    }
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` finished traces.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                next_id: AtomicU64::new(1),
                capacity: capacity.max(1),
                finished: Mutex::new(std::collections::VecDeque::new()),
                dropped_spans: AtomicU64::new(0),
            }),
        }
    }

    /// Start a trace; the handle finishes it on drop (or via
    /// [`TraceHandle::finish`]).
    pub fn trace(&self, label: impl Into<String>) -> TraceHandle {
        TraceHandle {
            active: Some(Arc::new(ActiveTrace {
                id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
                label: label.into(),
                start: Instant::now(),
                depth: AtomicUsize::new(0),
                finished: AtomicBool::new(false),
                spans: Mutex::new(Vec::new()),
                tracer: Arc::downgrade(&self.inner),
            })),
            tracer: Arc::downgrade(&self.inner),
        }
    }

    /// Convenience: a single-span one-off trace (`tracer.span("optimize")`).
    /// The trace finishes when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let handle = self.trace(name);
        let mut guard = handle.span(name);
        // move the handle into the guard so the trace finishes with it
        guard.owned_trace = Some(handle);
        guard
    }

    /// The most recent finished traces, newest last, up to `n`.
    pub fn recent(&self, n: usize) -> Vec<Trace> {
        let buf = lock(&self.inner.finished);
        buf.iter()
            .skip(buf.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Spans recorded after their trace finished, counted instead of
    /// silently discarded — the source for `rcc_trace_dropped_spans_total`.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.dropped_spans.load(Ordering::Relaxed)
    }
}

/// Handle to an in-flight trace; create spans from it.
pub struct TraceHandle {
    active: Option<Arc<ActiveTrace>>,
    tracer: Weak<TracerInner>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("id", &self.id())
            .finish()
    }
}

impl TraceHandle {
    /// This trace's id (0 after `finish`).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map(|a| a.id).unwrap_or(0)
    }

    /// A cloneable reference to this trace that lower layers (executor,
    /// transport) can carry; `None` once the trace has finished.
    pub fn share(&self) -> Option<TraceRef> {
        self.active.as_ref().map(|a| TraceRef {
            active: Arc::clone(a),
        })
    }

    /// Open a nested span; it closes (and records) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.active {
            Some(active) => open_span(active, name),
            None => SpanGuard::noop(name, self.tracer.clone()),
        }
    }

    /// Finish now and return the completed trace (once; `None` after).
    pub fn finish(&mut self) -> Option<Trace> {
        let active = self.active.take()?;
        active.finished.store(true, Ordering::SeqCst);
        let trace = Trace {
            id: active.id,
            label: active.label.clone(),
            elapsed: active.start.elapsed(),
            spans: std::mem::take(&mut *lock(&active.spans)),
        };
        if let Some(tracer) = active.tracer.upgrade() {
            let mut buf = lock(&tracer.finished);
            if buf.len() == tracer.capacity {
                buf.pop_front();
            }
            buf.push_back(trace.clone());
        }
        Some(trace)
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

fn open_span(active: &Arc<ActiveTrace>, name: &str) -> SpanGuard {
    let depth = active.depth.fetch_add(1, Ordering::Relaxed);
    SpanGuard {
        trace: Some(Arc::clone(active)),
        name: name.to_string(),
        depth,
        start_offset: active.start.elapsed(),
        started: Instant::now(),
        owned_trace: None,
        tracer: Weak::new(),
    }
}

/// A cloneable, shareable reference to an in-flight trace. Unlike
/// [`TraceHandle`] it never finishes the trace; it exists so layers below
/// the statement loop (the executor's remote branch, the TCP transport)
/// can attach spans — including span trees recorded by a remote process —
/// to the query's one trace.
#[derive(Clone)]
pub struct TraceRef {
    active: Arc<ActiveTrace>,
}

impl std::fmt::Debug for TraceRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRef")
            .field("id", &self.active.id)
            .finish()
    }
}

impl TraceRef {
    /// The trace's id.
    pub fn id(&self) -> u64 {
        self.active.id
    }

    /// Current nesting depth (spans currently open).
    pub fn current_depth(&self) -> usize {
        self.active.depth.load(Ordering::Relaxed)
    }

    /// Wall time since the trace started.
    pub fn elapsed(&self) -> Duration {
        self.active.start.elapsed()
    }

    /// Open a nested span on the shared trace. After the trace finished,
    /// the span is counted as dropped instead of recorded.
    pub fn span(&self, name: &str) -> SpanGuard {
        open_span(&self.active, name)
    }

    /// Merge spans recorded elsewhere (typically by a remote process) into
    /// this trace: each span is re-based to `base_depth` plus its own depth
    /// and shifted by `base_offset` on the trace's timeline. If the trace
    /// has already finished, the spans are counted as dropped.
    pub fn merge_spans(&self, base_depth: usize, base_offset: Duration, spans: Vec<SpanRecord>) {
        if self.active.finished.load(Ordering::SeqCst) {
            self.active.count_dropped(spans.len() as u64);
            return;
        }
        let mut log = lock(&self.active.spans);
        for s in spans {
            log.push(SpanRecord {
                name: s.name,
                depth: base_depth + s.depth,
                start: base_offset + s.start,
                elapsed: s.elapsed,
            });
        }
    }
}

/// RAII span: records itself into the trace when dropped.
pub struct SpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    name: String,
    depth: usize,
    start_offset: Duration,
    started: Instant,
    owned_trace: Option<TraceHandle>,
    /// For no-op guards (opened on an already-finished handle): where to
    /// count the drop.
    tracer: Weak<TracerInner>,
}

impl SpanGuard {
    fn noop(name: &str, tracer: Weak<TracerInner>) -> SpanGuard {
        SpanGuard {
            trace: None,
            name: name.to_string(),
            depth: 0,
            start_offset: Duration::ZERO,
            started: Instant::now(),
            owned_trace: None,
            tracer,
        }
    }

    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self.trace.take() {
            Some(active) => {
                active.depth.fetch_sub(1, Ordering::Relaxed);
                if active.finished.load(Ordering::SeqCst) {
                    // the trace completed while this span was open: count it
                    // instead of writing into a trace nobody will read
                    active.count_dropped(1);
                } else {
                    lock(&active.spans).push(SpanRecord {
                        name: std::mem::take(&mut self.name),
                        depth: self.depth,
                        start: self.start_offset,
                        elapsed: self.started.elapsed(),
                    });
                }
            }
            None => {
                // a no-op guard from a finished handle: count the drop
                if let Some(tracer) = self.tracer.upgrade() {
                    tracer.dropped_spans.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // owned_trace (if any) drops after, finishing the one-off trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let tracer = Tracer::new(8);
        let mut handle = tracer.trace("SELECT 1");
        {
            let _outer = handle.span("execute");
            let _inner = handle.span("optimize");
        }
        let trace = handle.finish().unwrap();
        assert_eq!(trace.label, "SELECT 1");
        assert_eq!(trace.spans.len(), 2);
        // inner closed first
        assert_eq!(trace.spans[0].name, "optimize");
        assert_eq!(trace.spans[0].depth, 1);
        assert_eq!(trace.spans[1].name, "execute");
        assert_eq!(trace.spans[1].depth, 0);
        let rendered = trace.render();
        assert!(rendered.contains("optimize"));
        assert!(rendered.contains("SELECT 1"));
    }

    #[test]
    fn trace_ids_are_unique_and_buffer_is_bounded() {
        let tracer = Tracer::new(2);
        let mut ids = Vec::new();
        for i in 0..5 {
            let mut h = tracer.trace(format!("q{i}"));
            ids.push(h.id());
            h.finish();
        }
        ids.dedup();
        assert_eq!(ids.len(), 5);
        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].label, "q4");
    }

    #[test]
    fn finish_on_drop() {
        let tracer = Tracer::new(4);
        {
            let h = tracer.trace("dropped");
            let _s = h.span("phase");
        }
        assert_eq!(tracer.recent(4).len(), 1);
    }

    #[test]
    fn one_off_span_records_a_trace() {
        let tracer = Tracer::new(4);
        drop(tracer.span("optimize"));
        let recent = tracer.recent(4);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].spans[0].name, "optimize");
    }

    #[test]
    fn late_spans_are_counted_not_silently_dropped() {
        let tracer = Tracer::new(4);
        let mut h = tracer.trace("q");
        h.finish();
        assert_eq!(h.id(), 0);
        drop(h.span("late")); // must not panic or record...
        assert_eq!(tracer.recent(4)[0].spans.len(), 0);
        // ...but it must be accounted for
        assert_eq!(tracer.dropped_spans(), 1);
    }

    #[test]
    fn span_open_across_finish_is_counted() {
        let tracer = Tracer::new(4);
        let mut h = tracer.trace("q");
        let r = h.share().unwrap();
        let open = r.span("still-open");
        h.finish();
        drop(open); // closed after the trace completed
        assert_eq!(tracer.dropped_spans(), 1);
        assert_eq!(tracer.recent(4)[0].spans.len(), 0);
    }

    #[test]
    fn shared_ref_spans_and_merges_land_on_the_trace() {
        let tracer = Tracer::new(4);
        let mut h = tracer.trace("q");
        let r = h.share().unwrap();
        {
            let _outer = r.span("remote_call");
            r.merge_spans(
                r.current_depth(),
                Duration::from_micros(10),
                vec![SpanRecord {
                    name: "backend:execute".into(),
                    depth: 0,
                    start: Duration::from_micros(2),
                    elapsed: Duration::from_micros(5),
                }],
            );
        }
        let trace = h.finish().unwrap();
        assert_eq!(trace.spans.len(), 2);
        let merged = trace
            .spans
            .iter()
            .find(|s| s.name == "backend:execute")
            .unwrap();
        assert_eq!(merged.depth, 1, "re-based under the remote_call span");
        assert_eq!(merged.start, Duration::from_micros(12));
    }

    #[test]
    fn merge_after_finish_counts_dropped() {
        let tracer = Tracer::new(4);
        let mut h = tracer.trace("q");
        let r = h.share().unwrap();
        h.finish();
        r.merge_spans(
            0,
            Duration::ZERO,
            vec![
                SpanRecord {
                    name: "a".into(),
                    depth: 0,
                    start: Duration::ZERO,
                    elapsed: Duration::ZERO,
                },
                SpanRecord {
                    name: "b".into(),
                    depth: 0,
                    start: Duration::ZERO,
                    elapsed: Duration::ZERO,
                },
            ],
        );
        assert_eq!(tracer.dropped_spans(), 2);
    }
}
