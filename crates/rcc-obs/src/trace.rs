//! Lightweight span tracing with per-query trace IDs and a ring buffer of
//! recent traces.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One completed span within a trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `"optimize"`.
    pub name: String,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: usize,
    /// Offset from the trace start when the span opened.
    pub start: Duration,
    /// Span duration.
    pub elapsed: Duration,
}

/// A completed trace: ordered spans plus identity.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Unique id, monotonically assigned per tracer.
    pub id: u64,
    /// Label given at trace start (typically the SQL text).
    pub label: String,
    /// Total wall time from start to finish.
    pub elapsed: Duration,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Render as an indented multi-line summary.
    pub fn render(&self) -> String {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| s.start);
        let mut out = format!("trace #{} [{:?}] {}\n", self.id, self.elapsed, self.label);
        for s in &spans {
            out.push_str(&format!(
                "{:indent$}{} [{:?}] (+{:?})\n",
                "",
                s.name,
                s.elapsed,
                s.start,
                indent = 2 + 2 * s.depth
            ));
        }
        out
    }
}

struct ActiveTrace {
    id: u64,
    label: String,
    start: Instant,
    depth: AtomicUsize,
    spans: Mutex<Vec<SpanRecord>>,
    tracer: Weak<TracerInner>,
}

struct TracerInner {
    next_id: AtomicU64,
    capacity: usize,
    finished: Mutex<std::collections::VecDeque<Trace>>,
}

/// Factory for traces; owns the ring buffer of recently finished traces.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(64)
    }
}

impl Tracer {
    /// A tracer retaining the most recent `capacity` finished traces.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                next_id: AtomicU64::new(1),
                capacity: capacity.max(1),
                finished: Mutex::new(std::collections::VecDeque::new()),
            }),
        }
    }

    /// Start a trace; the handle finishes it on drop (or via
    /// [`TraceHandle::finish`]).
    pub fn trace(&self, label: impl Into<String>) -> TraceHandle {
        TraceHandle {
            active: Some(Arc::new(ActiveTrace {
                id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
                label: label.into(),
                start: Instant::now(),
                depth: AtomicUsize::new(0),
                spans: Mutex::new(Vec::new()),
                tracer: Arc::downgrade(&self.inner),
            })),
        }
    }

    /// Convenience: a single-span one-off trace (`tracer.span("optimize")`).
    /// The trace finishes when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let handle = self.trace(name);
        let mut guard = handle.span(name);
        // move the handle into the guard so the trace finishes with it
        guard.owned_trace = Some(handle);
        guard
    }

    /// The most recent finished traces, newest last, up to `n`.
    pub fn recent(&self, n: usize) -> Vec<Trace> {
        let buf = lock(&self.inner.finished);
        buf.iter()
            .skip(buf.len().saturating_sub(n))
            .cloned()
            .collect()
    }
}

/// Handle to an in-flight trace; create spans from it.
pub struct TraceHandle {
    active: Option<Arc<ActiveTrace>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("id", &self.id())
            .finish()
    }
}

impl TraceHandle {
    /// This trace's id (0 after `finish`).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map(|a| a.id).unwrap_or(0)
    }

    /// Open a nested span; it closes (and records) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.active {
            Some(active) => {
                let depth = active.depth.fetch_add(1, Ordering::Relaxed);
                SpanGuard {
                    trace: Some(Arc::clone(active)),
                    name: name.to_string(),
                    depth,
                    start_offset: active.start.elapsed(),
                    started: Instant::now(),
                    owned_trace: None,
                }
            }
            None => SpanGuard::noop(name),
        }
    }

    /// Finish now and return the completed trace (once; `None` after).
    pub fn finish(&mut self) -> Option<Trace> {
        let active = self.active.take()?;
        let trace = Trace {
            id: active.id,
            label: active.label.clone(),
            elapsed: active.start.elapsed(),
            spans: std::mem::take(&mut *lock(&active.spans)),
        };
        if let Some(tracer) = active.tracer.upgrade() {
            let mut buf = lock(&tracer.finished);
            if buf.len() == tracer.capacity {
                buf.pop_front();
            }
            buf.push_back(trace.clone());
        }
        Some(trace)
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// RAII span: records itself into the trace when dropped.
pub struct SpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    name: String,
    depth: usize,
    start_offset: Duration,
    started: Instant,
    owned_trace: Option<TraceHandle>,
}

impl SpanGuard {
    fn noop(name: &str) -> SpanGuard {
        SpanGuard {
            trace: None,
            name: name.to_string(),
            depth: 0,
            start_offset: Duration::ZERO,
            started: Instant::now(),
            owned_trace: None,
        }
    }

    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.trace.take() {
            active.depth.fetch_sub(1, Ordering::Relaxed);
            lock(&active.spans).push(SpanRecord {
                name: std::mem::take(&mut self.name),
                depth: self.depth,
                start: self.start_offset,
                elapsed: self.started.elapsed(),
            });
        }
        // owned_trace (if any) drops after, finishing the one-off trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let tracer = Tracer::new(8);
        let mut handle = tracer.trace("SELECT 1");
        {
            let _outer = handle.span("execute");
            let _inner = handle.span("optimize");
        }
        let trace = handle.finish().unwrap();
        assert_eq!(trace.label, "SELECT 1");
        assert_eq!(trace.spans.len(), 2);
        // inner closed first
        assert_eq!(trace.spans[0].name, "optimize");
        assert_eq!(trace.spans[0].depth, 1);
        assert_eq!(trace.spans[1].name, "execute");
        assert_eq!(trace.spans[1].depth, 0);
        let rendered = trace.render();
        assert!(rendered.contains("optimize"));
        assert!(rendered.contains("SELECT 1"));
    }

    #[test]
    fn trace_ids_are_unique_and_buffer_is_bounded() {
        let tracer = Tracer::new(2);
        let mut ids = Vec::new();
        for i in 0..5 {
            let mut h = tracer.trace(format!("q{i}"));
            ids.push(h.id());
            h.finish();
        }
        ids.dedup();
        assert_eq!(ids.len(), 5);
        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].label, "q4");
    }

    #[test]
    fn finish_on_drop() {
        let tracer = Tracer::new(4);
        {
            let h = tracer.trace("dropped");
            let _s = h.span("phase");
        }
        assert_eq!(tracer.recent(4).len(), 1);
    }

    #[test]
    fn one_off_span_records_a_trace() {
        let tracer = Tracer::new(4);
        drop(tracer.span("optimize"));
        let recent = tracer.recent(4);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].spans[0].name, "optimize");
    }

    #[test]
    fn finished_handle_yields_noop_spans() {
        let tracer = Tracer::new(4);
        let mut h = tracer.trace("q");
        h.finish();
        assert_eq!(h.id(), 0);
        drop(h.span("late")); // must not panic or record
        assert_eq!(tracer.recent(4)[0].spans.len(), 0);
    }
}
