//! `net_load` — a concurrent load generator for the TCP front-end.
//!
//! Boots the full network rig in one process (cache + TCP front-end,
//! back-end behind its own listener, remote branch over the pooled TCP
//! transport), then drives it with N concurrent client connections issuing
//! a mixed point-query workload over real loopback sockets. Reports
//! throughput, latency quantiles, and the transport's rcc-obs counters,
//! and writes the whole summary to `BENCH_net.json`.
//!
//! ```sh
//! cargo run -p rcc-bench --bin net_load --release -- \
//!     [--clients N] [--queries N] [--scale F] [--out PATH]
//! ```

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_net::{
    BackendNetServer, ClientConfig, NetClient, NetServer, NetServerConfig, PoolConfig, RetryPolicy,
    TcpRemoteService,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    clients: usize,
    queries: usize,
    scale: f64,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 8,
            queries: 200,
            scale: 0.01,
            out: "BENCH_net.json".into(),
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--clients" => opts.clients = value().parse().expect("--clients"),
            "--queries" => opts.queries = value().parse().expect("--queries"),
            "--scale" => opts.scale = value().parse().expect("--scale"),
            "--out" => opts.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn main() {
    let opts = parse_args();
    eprintln!(
        "net_load: {} clients × {} queries, scale {}",
        opts.clients, opts.queries, opts.scale
    );

    let cache = paper_setup(opts.scale, 42).expect("rig");
    warm_up(&cache).expect("warm up");
    let cache = Arc::new(cache);
    let max_custkey = ((150_000.0 * opts.scale) as i64).max(2);

    let backend_srv =
        BackendNetServer::spawn(Arc::clone(cache.backend()), "127.0.0.1:0").expect("backend");
    let remote = TcpRemoteService::new(
        backend_srv.addr(),
        PoolConfig::default(),
        RetryPolicy::default(),
    )
    .expect("remote service");
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(Arc::new(remote)));
    let front = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("front-end");
    let addr = front.addr();

    // stall CR1 so part of the workload must ship over the back-end TCP
    // link (the interesting path); CR2 queries stay local
    cache.set_region_stalled("CR1", true);
    cache
        .advance(rcc_common::Duration::from_secs(90))
        .expect("advance");

    // Statically verify the plans the workload is about to hammer: every
    // optimized plan must prove its currency clause (expected failures: 0).
    let verification_failures: u64 = [
        "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
         CURRENCY BOUND 30 SEC ON (customer)",
        "SELECT o_totalprice FROM orders WHERE o_custkey = 1 \
         CURRENCY BOUND 30 SEC ON (orders)",
    ]
    .iter()
    .map(|sql| {
        let report = cache
            .verify(sql, &std::collections::HashMap::new())
            .expect("verify");
        if report.ok() {
            0
        } else {
            eprintln!(
                "net_load: PLAN CONFORMANCE FAILURE for {sql}\n{}",
                report.render()
            );
            1
        }
    })
    .sum();

    // Lint the workload's clause shapes through the LINT statement, plus
    // one deliberately subsumed clause as a canary that the lint pass is
    // alive end-to-end: the workload shapes must be clean and the canary
    // must contribute exactly one L001 diagnostic.
    let lint_diagnostics: u64 = [
        (
            "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
             CURRENCY BOUND 30 SEC ON (customer)",
            0u64,
        ),
        (
            "SELECT o_totalprice FROM orders WHERE o_custkey = 1 \
             CURRENCY BOUND 30 SEC ON (orders)",
            0,
        ),
        (
            "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
             CURRENCY BOUND 30 SEC ON (customer), 10 MIN ON (customer)",
            1,
        ),
    ]
    .iter()
    .map(|(sql, expected)| {
        let r = cache.execute(&format!("LINT {sql}")).expect("lint");
        let n = r.rows.len() as u64;
        if n != *expected {
            eprintln!("net_load: LINT expected {expected} diagnostic(s), got {n} for {sql}");
        }
        n
    })
    .sum();

    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|c| {
            let latencies = Arc::clone(&latencies);
            let queries = opts.queries;
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr, &ClientConfig::default()).expect("connect");
                let mut rng = StdRng::seed_from_u64(0xbeef ^ c as u64);
                let mut local = Vec::with_capacity(queries);
                let mut remote_hits = 0u64;
                let mut rows = 0u64;
                let mut bytes = 0u64;
                for _ in 0..queries {
                    let key = rng.gen_range(1..=max_custkey);
                    // 50/50: a currency-bound customer probe (CR1 is stale
                    // → goes remote over TCP) vs. an orders probe answered
                    // from the healthy CR2 view
                    let sql = if rng.gen_bool(0.5) {
                        format!(
                            "SELECT c_acctbal FROM customer WHERE c_custkey = {key} \
                             CURRENCY BOUND 30 SEC ON (customer)"
                        )
                    } else {
                        format!(
                            "SELECT o_totalprice FROM orders WHERE o_custkey = {key} \
                             CURRENCY BOUND 30 SEC ON (orders)"
                        )
                    };
                    let t = Instant::now();
                    let r = client.query(&sql).expect("query");
                    local.push(t.elapsed().as_micros() as u64);
                    remote_hits += r.used_remote as u64;
                    rows += r.rows.len() as u64;
                    bytes += r.wire_bytes;
                }
                latencies.lock().extend_from_slice(&local);
                (remote_hits, rows, bytes)
            })
        })
        .collect();
    let mut remote_hits = 0u64;
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for w in workers {
        let (r, rows, bytes) = w.join().expect("worker");
        remote_hits += r;
        total_rows += rows;
        total_bytes += bytes;
    }
    let elapsed = started.elapsed();

    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let total_queries = (opts.clients * opts.queries) as u64;
    let qps = total_queries as f64 / elapsed.as_secs_f64();
    let snap = cache.metrics().snapshot();
    let retries = snap.counter("rcc_net_remote_retries_total");
    let unavailable = snap.counter("rcc_net_remote_unavailable_total");
    let served = snap.counter("rcc_net_requests_total{type=\"query\"}");

    let (p50, p95, p99) = (
        quantile(&lat, 0.50),
        quantile(&lat, 0.95),
        quantile(&lat, 0.99),
    );
    println!("\nnet_load results");
    println!("  queries           {total_queries} ({qps:.0}/s over {elapsed:.2?})");
    println!("  remote over TCP   {remote_hits}");
    println!("  rows / wire bytes {total_rows} / {total_bytes}");
    println!("  latency p50/p95/p99  {p50} / {p95} / {p99} µs");
    println!("  transport retries/unavailable  {retries} / {unavailable}");
    println!("  plan verification failures     {verification_failures} (expected 0)");
    println!("  lint diagnostics               {lint_diagnostics} (expected 1: the canary)");

    assert_eq!(served, total_queries, "front-end counted every query");
    assert_eq!(
        verification_failures, 0,
        "workload plans must conform to their currency clauses"
    );
    assert_eq!(
        lint_diagnostics, 1,
        "workload clauses lint clean and the canary yields exactly one diagnostic"
    );

    let json = format!(
        "{{\n  \"bench\": \"net_load\",\n  \"clients\": {},\n  \"queries_per_client\": {},\n  \
         \"scale\": {},\n  \"elapsed_secs\": {:.6},\n  \"throughput_qps\": {:.1},\n  \
         \"remote_queries\": {},\n  \"total_rows\": {},\n  \"wire_bytes\": {},\n  \
         \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {} }},\n  \
         \"transport\": {{ \"retries\": {}, \"unavailable\": {} }},\n  \
         \"verification_failures\": {},\n  \"lint_diagnostics\": {}\n}}\n",
        opts.clients,
        opts.queries,
        opts.scale,
        elapsed.as_secs_f64(),
        qps,
        remote_hits,
        total_rows,
        total_bytes,
        p50,
        p95,
        p99,
        retries,
        unavailable,
        verification_failures,
        lint_diagnostics,
    );
    let mut f = std::fs::File::create(&opts.out).expect("create BENCH_net.json");
    f.write_all(json.as_bytes()).expect("write BENCH_net.json");
    eprintln!("wrote {}", opts.out);
}
