//! `net_load` — a concurrent load generator for the TCP front-end.
//!
//! Boots the full network rig in one process (cache + TCP front-end,
//! back-end behind its own listener, remote branch over the pooled TCP
//! transport), then drives it with a mixed point-query workload over real
//! loopback sockets. Two driving disciplines:
//!
//! * **closed** (default): N clients issue queries back-to-back — each
//!   client waits for its response before sending the next query.
//!   Measures service latency under a fixed concurrency level. Writes
//!   `BENCH_net.json`.
//! * **open**: queries arrive on a fixed schedule (`--rate` arrivals/sec
//!   for `--duration-secs`), regardless of how fast responses come back.
//!   Latency is measured from the *scheduled arrival*, so queueing delay
//!   when the server falls behind is charged to the request — the honest
//!   way to measure a latency SLO (no coordinated omission). Writes
//!   `BENCH_load.json` with p50/p99/p999 latency and the
//!   delivered-staleness percentiles the cache recorded while serving.
//!
//! ```sh
//! cargo run -p rcc-bench --bin net_load --release -- \
//!     [--mode open|closed] [--clients N] [--queries N] [--rate R] \
//!     [--duration-secs D] [--scale F] [--out PATH]
//! ```

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_net::{
    BackendNetServer, ClientConfig, NetClient, NetServer, NetServerConfig, PoolConfig, RetryPolicy,
    TcpRemoteService,
};
use rcc_obs::HistogramSnapshot;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Closed,
    Open,
}

struct Options {
    mode: Mode,
    clients: usize,
    queries: usize,
    rate: f64,
    duration_secs: f64,
    scale: f64,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            mode: Mode::Closed,
            clients: 8,
            queries: 200,
            rate: 200.0,
            duration_secs: 5.0,
            scale: 0.01,
            out: None,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--mode" => {
                opts.mode = match value().as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => panic!("--mode expects open or closed, got {other}"),
                }
            }
            "--clients" => opts.clients = value().parse().expect("--clients"),
            "--queries" => opts.queries = value().parse().expect("--queries"),
            "--rate" => opts.rate = value().parse().expect("--rate"),
            "--duration-secs" => opts.duration_secs = value().parse().expect("--duration-secs"),
            "--scale" => opts.scale = value().parse().expect("--scale"),
            "--out" => opts.out = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Sum per-region histograms (identical bucket bounds) into one, so
/// fleet-wide quantiles can be estimated across regions.
fn merge_histograms(parts: Vec<&HistogramSnapshot>) -> Option<HistogramSnapshot> {
    let first = parts.first()?;
    let mut merged = HistogramSnapshot {
        bounds: first.bounds.clone(),
        counts: vec![0; first.counts.len()],
        sum: 0.0,
        count: 0,
    };
    for h in parts {
        if h.bounds != merged.bounds {
            return None;
        }
        for (m, c) in merged.counts.iter_mut().zip(&h.counts) {
            *m += c;
        }
        merged.sum += h.sum;
        merged.count += h.count;
    }
    Some(merged)
}

fn main() {
    let opts = parse_args();
    let cache = paper_setup(opts.scale, 42).expect("rig");
    warm_up(&cache).expect("warm up");
    let cache = Arc::new(cache);
    let max_custkey = ((150_000.0 * opts.scale) as i64).max(2);

    let backend_srv =
        BackendNetServer::spawn(Arc::clone(cache.backend()), "127.0.0.1:0").expect("backend");
    let remote = TcpRemoteService::new(
        backend_srv.addr(),
        PoolConfig::default(),
        RetryPolicy::default(),
    )
    .expect("remote service");
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(Arc::new(remote)));
    let front = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("front-end");
    let addr = front.addr();

    // stall CR1 so part of the workload must ship over the back-end TCP
    // link (the interesting path); CR2 queries stay local
    cache.set_region_stalled("CR1", true);
    cache
        .advance(rcc_common::Duration::from_secs(90))
        .expect("advance");

    // Statically verify the plans the workload is about to hammer: every
    // optimized plan must prove its currency clause (expected failures: 0).
    let verification_failures: u64 = [
        "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
         CURRENCY BOUND 15 SEC ON (customer)",
        "SELECT o_totalprice FROM orders WHERE o_custkey = 1 \
         CURRENCY BOUND 15 SEC ON (orders)",
    ]
    .iter()
    .map(|sql| {
        let report = cache
            .verify(sql, &std::collections::HashMap::new())
            .expect("verify");
        if report.ok() {
            0
        } else {
            eprintln!(
                "net_load: PLAN CONFORMANCE FAILURE for {sql}\n{}",
                report.render()
            );
            1
        }
    })
    .sum();

    // Lint the workload's clause shapes through the LINT statement, plus
    // one deliberately subsumed clause as a canary that the lint pass is
    // alive end-to-end: the workload shapes must be clean and the canary
    // must contribute exactly one L001 diagnostic.
    let lint_diagnostics: u64 = [
        (
            "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
             CURRENCY BOUND 15 SEC ON (customer)",
            0u64,
        ),
        (
            "SELECT o_totalprice FROM orders WHERE o_custkey = 1 \
             CURRENCY BOUND 15 SEC ON (orders)",
            0,
        ),
        (
            "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
             CURRENCY BOUND 15 SEC ON (customer), 20 SEC ON (customer)",
            1,
        ),
    ]
    .iter()
    .map(|(sql, expected)| {
        let r = cache.execute(&format!("LINT {sql}")).expect("lint");
        let n = r.rows.len() as u64;
        if n != *expected {
            eprintln!("net_load: LINT expected {expected} diagnostic(s), got {n} for {sql}");
        }
        n
    })
    .sum();
    assert_eq!(
        verification_failures, 0,
        "workload plans must conform to their currency clauses"
    );
    assert_eq!(
        lint_diagnostics, 1,
        "workload clauses lint clean and the canary yields exactly one diagnostic"
    );

    // Declare the TPC-C-flavored template corpus through the compile-time
    // robustness hook as a canary that the analyzer is alive end-to-end:
    // every template's verdict must match the corpus expectation, so the
    // robust subset in particular must come back ROBUST (violations: 0).
    let robustness_violations: u64 = {
        let corpus = rcc_tpcd::robust_template_corpus();
        for case in &corpus {
            cache.execute(case.sql).expect("declare template");
        }
        corpus
            .iter()
            .map(|case| {
                let robust = cache.template_verdict(case.name) == Some(rcc_robust::Verdict::Robust);
                if robust == case.robust {
                    0
                } else {
                    eprintln!(
                        "net_load: ROBUSTNESS VERDICT MISMATCH for template {} \
                         (expected robust={}, got robust={robust})",
                        case.name, case.robust
                    );
                    1
                }
            })
            .sum()
    };
    assert_eq!(
        robustness_violations, 0,
        "template corpus verdicts must match their expectations"
    );

    match opts.mode {
        Mode::Closed => run_closed(
            &opts,
            &cache,
            addr,
            max_custkey,
            lint_diagnostics,
            robustness_violations,
        ),
        Mode::Open => run_open(&opts, &cache, addr, max_custkey),
    }
}

fn workload_sql(rng: &mut StdRng, max_custkey: i64) -> String {
    let key = rng.gen_range(1..=max_custkey);
    // 50/50: a currency-bound customer probe (CR1 is stale → goes remote
    // over TCP) vs. an orders probe answered from the healthy CR2 view.
    // 15 s sits inside both regions' contingent windows, so the guards are
    // statically live and really decide at run time.
    if rng.gen_bool(0.5) {
        format!(
            "SELECT c_acctbal FROM customer WHERE c_custkey = {key} \
             CURRENCY BOUND 15 SEC ON (customer)"
        )
    } else {
        format!(
            "SELECT o_totalprice FROM orders WHERE o_custkey = {key} \
             CURRENCY BOUND 15 SEC ON (orders)"
        )
    }
}

/// The epilogue's variant of [`workload_sql`]: 30 s beats both regions'
/// healthy-replication envelopes (CR1 = 22 s, CR2 = 17 s), so the dataflow
/// analysis proves every guard always-pass and elides it.
fn elision_workload_sql(rng: &mut StdRng, max_custkey: i64) -> String {
    let key = rng.gen_range(1..=max_custkey);
    if rng.gen_bool(0.5) {
        format!(
            "SELECT c_acctbal FROM customer WHERE c_custkey = {key} \
             CURRENCY BOUND 30 SEC ON (customer)"
        )
    } else {
        format!(
            "SELECT o_totalprice FROM orders WHERE o_custkey = {key} \
             CURRENCY BOUND 30 SEC ON (orders)"
        )
    }
}

fn run_closed(
    opts: &Options,
    cache: &Arc<rcc_mtcache::MTCache>,
    addr: std::net::SocketAddr,
    max_custkey: i64,
    lint_diagnostics: u64,
    robustness_violations: u64,
) {
    eprintln!(
        "net_load: closed loop, {} clients × {} queries, scale {}",
        opts.clients, opts.queries, opts.scale
    );
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let workers: Vec<_> = (0..opts.clients)
        .map(|c| {
            let latencies = Arc::clone(&latencies);
            let queries = opts.queries;
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr, &ClientConfig::default()).expect("connect");
                let mut rng = StdRng::seed_from_u64(0xbeef ^ c as u64);
                let mut local = Vec::with_capacity(queries);
                let mut remote_hits = 0u64;
                let mut rows = 0u64;
                let mut bytes = 0u64;
                for _ in 0..queries {
                    let sql = workload_sql(&mut rng, max_custkey);
                    let t = Instant::now();
                    let r = client.query(&sql).expect("query");
                    local.push(t.elapsed().as_micros() as u64);
                    remote_hits += r.used_remote as u64;
                    rows += r.rows.len() as u64;
                    bytes += r.wire_bytes;
                }
                latencies.lock().extend_from_slice(&local);
                (remote_hits, rows, bytes)
            })
        })
        .collect();
    let mut remote_hits = 0u64;
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for w in workers {
        let (r, rows, bytes) = w.join().expect("worker");
        remote_hits += r;
        total_rows += rows;
        total_bytes += bytes;
    }
    let elapsed = started.elapsed();

    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let total_queries = (opts.clients * opts.queries) as u64;
    let qps = total_queries as f64 / elapsed.as_secs_f64();
    let snap = cache.metrics().snapshot();
    let retries = snap.counter("rcc_net_remote_retries_total");
    let unavailable = snap.counter("rcc_net_remote_unavailable_total");
    let served = snap.counter("rcc_net_requests_total{type=\"query\"}");

    let (p50, p95, p99) = (
        quantile(&lat, 0.50),
        quantile(&lat, 0.95),
        quantile(&lat, 0.99),
    );
    println!("\nnet_load results");
    println!("  queries           {total_queries} ({qps:.0}/s over {elapsed:.2?})");
    println!("  remote over TCP   {remote_hits}");
    println!("  rows / wire bytes {total_rows} / {total_bytes}");
    println!("  latency p50/p95/p99  {p50} / {p95} / {p99} µs");
    println!("  transport retries/unavailable  {retries} / {unavailable}");

    assert_eq!(served, total_queries, "front-end counted every query");

    // Certified-guard-elision epilogue: elision's soundness premise is
    // healthy replication, so restore CR1 first, then replay the workload
    // with elision on. The dataflow analysis proves both workload bounds
    // (30 s) beat their regions' envelopes, so guards must actually be
    // elided — and the runtime premise cross-check must stay silent.
    let (guards_elided, interval_violations) =
        elision_epilogue(cache, addr, opts.queries, max_custkey);
    println!("  guards elided / interval violations  {guards_elided} / {interval_violations}");
    assert!(
        guards_elided > 0,
        "the 30 s workload bounds beat both envelopes; elision must fire"
    );
    assert_eq!(
        interval_violations, 0,
        "healthy replication: no elided certificate may be overrun"
    );

    let out = opts.out.as_deref().unwrap_or("BENCH_net.json");
    let json = format!(
        "{{\n  \"bench\": \"net_load\",\n  \"clients\": {},\n  \"queries_per_client\": {},\n  \
         \"scale\": {},\n  \"elapsed_secs\": {:.6},\n  \"throughput_qps\": {:.1},\n  \
         \"remote_queries\": {},\n  \"total_rows\": {},\n  \"wire_bytes\": {},\n  \
         \"latency_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {} }},\n  \
         \"transport\": {{ \"retries\": {}, \"unavailable\": {} }},\n  \
         \"verification_failures\": 0,\n  \"lint_diagnostics\": {},\n  \
         \"robustness_violations\": {},\n  \
         \"flow\": {{ \"guards_elided\": {}, \"interval_violations\": {} }}\n}}\n",
        opts.clients,
        opts.queries,
        opts.scale,
        elapsed.as_secs_f64(),
        qps,
        remote_hits,
        total_rows,
        total_bytes,
        p50,
        p95,
        p99,
        retries,
        unavailable,
        lint_diagnostics,
        robustness_violations,
        guards_elided,
        interval_violations,
    );
    let mut f = std::fs::File::create(out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out}");
}

/// Re-run the closed workload over the wire with certified guard elision
/// enabled, under elision's premise (both regions healthy). Returns the
/// number of guards elided at compile time and the runtime premise
/// cross-check count (which must be zero).
fn elision_epilogue(
    cache: &Arc<rcc_mtcache::MTCache>,
    addr: std::net::SocketAddr,
    queries: usize,
    max_custkey: i64,
) -> (u64, u64) {
    cache.set_region_stalled("CR1", false);
    cache
        .advance(rcc_common::Duration::from_secs(30))
        .expect("advance");
    cache.set_elide_guards(true);
    let before = cache
        .metrics()
        .snapshot()
        .counter("rcc_flow_guards_elided_total");
    let mut client = NetClient::connect(addr, &ClientConfig::default()).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x51de);
    for _ in 0..queries {
        let sql = elision_workload_sql(&mut rng, max_custkey);
        client.query(&sql).expect("query");
    }
    cache.set_elide_guards(false);
    let snap = cache.metrics().snapshot();
    let elided = snap.counter("rcc_flow_guards_elided_total") - before;
    let violations = snap.counter("rcc_flow_interval_violations_total");
    (elided, violations)
}

fn run_open(
    opts: &Options,
    cache: &Arc<rcc_mtcache::MTCache>,
    addr: std::net::SocketAddr,
    max_custkey: i64,
) {
    let arrivals = (opts.rate * opts.duration_secs).ceil() as usize;
    eprintln!(
        "net_load: open loop, {:.0}/s for {:.1}s = {} arrivals over {} clients, scale {}",
        opts.rate, opts.duration_secs, arrivals, opts.clients, opts.scale
    );
    let interarrival = Duration::from_secs_f64(1.0 / opts.rate);
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    // all workers share one epoch so the global arrival schedule is fixed
    // before the first query goes out
    let epoch = Instant::now() + Duration::from_millis(50);
    let workers: Vec<_> = (0..opts.clients)
        .map(|c| {
            let latencies = Arc::clone(&latencies);
            let clients = opts.clients;
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr, &ClientConfig::default()).expect("connect");
                let mut rng = StdRng::seed_from_u64(0xfeed ^ c as u64);
                let mut local = Vec::new();
                let mut remote_hits = 0u64;
                let mut late = 0u64;
                // worker c serves every clients-th arrival of the global
                // schedule: arrival k is due at epoch + k/rate
                let mut k = c;
                while k < arrivals {
                    let due = epoch + interarrival * k as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    } else {
                        late += 1;
                    }
                    let sql = workload_sql(&mut rng, max_custkey);
                    let r = client.query(&sql).expect("query");
                    // open-loop latency: completion minus *scheduled*
                    // arrival, so a backed-up server is charged its queue
                    local.push(due.elapsed().as_micros() as u64);
                    remote_hits += r.used_remote as u64;
                    k += clients;
                }
                latencies.lock().extend_from_slice(&local);
                (remote_hits, late)
            })
        })
        .collect();
    let mut remote_hits = 0u64;
    let mut late_dispatches = 0u64;
    for w in workers {
        let (r, late) = w.join().expect("worker");
        remote_hits += r;
        late_dispatches += late;
    }
    let elapsed = epoch.elapsed();

    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let (p50, p99, p999) = (
        quantile(&lat, 0.50),
        quantile(&lat, 0.99),
        quantile(&lat, 0.999),
    );
    let achieved_qps = lat.len() as f64 / elapsed.as_secs_f64();

    // fleet-wide delivered-staleness and slack percentiles: merge the
    // per-region histograms the cache recorded at guard-evaluation time
    let snap = cache.metrics().snapshot();
    let merged = |name: &str| {
        let parts: Vec<&HistogramSnapshot> = snap
            .values
            .keys()
            .filter(|k| k.starts_with(&format!("{name}{{")))
            .filter_map(|k| snap.histogram(k))
            .collect();
        merge_histograms(parts)
    };
    let delivered = merged("rcc_delivered_staleness_seconds");
    let slack = merged("rcc_currency_slack_seconds");
    let pct = |h: &Option<HistogramSnapshot>, q: f64| {
        h.as_ref().and_then(|h| h.quantile(q)).unwrap_or(0.0)
    };
    let slo_total = snap.counter("rcc_slo_queries_total");
    let slo_violations = snap.counter("rcc_slo_violations_total{sanctioned=\"no\"}")
        + snap.counter("rcc_slo_violations_total{sanctioned=\"yes\"}");

    println!("\nnet_load open-loop results");
    println!(
        "  arrivals          {} at {:.0}/s target ({achieved_qps:.0}/s achieved over {elapsed:.2?})",
        lat.len(),
        opts.rate
    );
    println!("  remote over TCP   {remote_hits}");
    println!("  late dispatches   {late_dispatches}");
    println!("  latency p50/p99/p999           {p50} / {p99} / {p999} µs");
    println!(
        "  delivered staleness p50/p99    {:.3} / {:.3} s (n={})",
        pct(&delivered, 0.50),
        pct(&delivered, 0.99),
        delivered.as_ref().map(|h| h.count).unwrap_or(0)
    );
    println!(
        "  currency slack p50/p99         {:.3} / {:.3} s",
        pct(&slack, 0.50),
        pct(&slack, 0.99)
    );
    println!("  slo violations                 {slo_violations} of {slo_total} guard sets");

    assert_eq!(lat.len(), arrivals, "every scheduled arrival was issued");
    assert!(
        delivered.as_ref().map(|h| h.count).unwrap_or(0) > 0,
        "the cache recorded delivered staleness for the guarded workload"
    );

    let out = opts.out.as_deref().unwrap_or("BENCH_load.json");
    let json = format!(
        "{{\n  \"bench\": \"net_load_open\",\n  \"clients\": {},\n  \"rate_qps\": {},\n  \
         \"duration_secs\": {},\n  \"scale\": {},\n  \"arrivals\": {},\n  \
         \"achieved_qps\": {:.1},\n  \"remote_queries\": {},\n  \"late_dispatches\": {},\n  \
         \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {} }},\n  \
         \"delivered_staleness_secs\": {{ \"p50\": {:.6}, \"p99\": {:.6}, \"count\": {} }},\n  \
         \"currency_slack_secs\": {{ \"p50\": {:.6}, \"p99\": {:.6} }},\n  \
         \"slo\": {{ \"guard_sets\": {}, \"violations\": {} }}\n}}\n",
        opts.clients,
        opts.rate,
        opts.duration_secs,
        opts.scale,
        lat.len(),
        achieved_qps,
        remote_hits,
        late_dispatches,
        p50,
        p99,
        p999,
        pct(&delivered, 0.50),
        pct(&delivered, 0.99),
        delivered.as_ref().map(|h| h.count).unwrap_or(0),
        pct(&slack, 0.50),
        pct(&slack, 0.99),
        slo_total,
        slo_violations,
    );
    let mut f = std::fs::File::create(out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out}");
}
