//! Regenerates **Table 4.3 + Figure 4.1** (paper Sec. 4.1): the
//! optimizer's plan choice for query variants Q1–Q7 as the currency clause
//! and predicates change, with the chosen logical plan printed for each.
//!
//! ```sh
//! cargo run -p rcc-bench --bin table_4_3_plan_choice --release
//! ```

use rcc_bench::print_region_config;
use rcc_mtcache::paper::{paper_setup_sf1_stats, warm_up};
use rcc_optimizer::optimize::PlanChoice;
use std::collections::HashMap;

fn plan_label(c: PlanChoice) -> &'static str {
    match c {
        PlanChoice::FullRemote => "plan 1 (full remote)",
        PlanChoice::RemoteFetchLocalJoin => "plan 2 (remote fetches + local join)",
        PlanChoice::Mixed => "plan 4 (mixed local/remote)",
        PlanChoice::AllLocalGuarded => "plan 5 (all local, guarded)",
        PlanChoice::PulledUpSwitchUnion => "pulled-up SwitchUnion (extension)",
        PlanChoice::BackendLocal => "backend-local",
    }
}

fn main() {
    // physical scale 0.01 with statistics scaled to the paper's SF 1.0
    let cache = paper_setup_sf1_stats(0.01, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    print_region_config(&cache);

    let s1 = |k: i64, clause: &str| {
        format!(
            "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice \
             FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= {k} {clause}"
        )
    };
    let s2 = |a: f64, b: f64| {
        format!(
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
             WHERE c_acctbal BETWEEN {a} AND {b} CURRENCY BOUND 10 SEC ON (customer)"
        )
    };

    // $K in the physical key domain [1, 1500]; fractions match the paper
    let k_sel = 10; // 0.67% — "highly selective"
    let k_all = 1_500; // 100%

    let variants: Vec<(&str, String, &str)> = vec![
        ("Q1", s1(k_sel, ""), "plan 1"),
        ("Q2", s1(k_all, ""), "plan 2"),
        ("Q3", s1(k_sel, "CURRENCY BOUND 10 SEC ON (c, o)"), "plan 1"),
        (
            "Q4",
            s1(k_all, "CURRENCY BOUND 3 SEC ON (c), 15 SEC ON (o)"),
            "plan 4",
        ),
        (
            "Q5",
            s1(k_all, "CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"),
            "plan 5",
        ),
        ("Q6", s2(0.0, 4.0), "remote (plan 1)"),
        ("Q7", s2(0.0, 1400.0), "local (plan 5)"),
    ];

    println!("Table 4.3 — plan chosen per query variant:");
    println!(
        "{:<4} {:<42} {:<42} est. cost",
        "Q", "paper expects", "we chose"
    );
    let mut plans = Vec::new();
    for (name, sql, expected) in &variants {
        let opt = cache.explain(sql, &HashMap::new()).expect(name);
        println!(
            "{:<4} {:<42} {:<42} {:.0}",
            name,
            expected,
            plan_label(opt.choice),
            opt.cost
        );
        plans.push((name.to_string(), sql.clone(), opt));
    }

    println!("\nFigure 4.1 — generated plans:");
    for (name, sql, opt) in &plans {
        println!("--- {name}: {sql}");
        print!("{}", opt.plan.explain());
        println!();
    }

    // sanity: execute each and report row counts
    println!("Execution check (row counts):");
    for (name, sql, _) in &plans {
        let r = cache.execute(sql).expect(name);
        println!(
            "{name}: {} rows ({} guards passed, remote={})",
            r.rows.len(),
            r.local_branches(),
            r.used_remote
        );
    }
}
