//! Regenerates **Table 4.5** (paper Sec. 4.3): the currency-guard overhead
//! of *local* execution broken down by execution phase — setup plan, run
//! plan, shutdown plan — plus the paper's "ideal" estimate (the cost of the
//! guard evaluations alone, i.e. the floor a tuned implementation could
//! reach). The ideal is read straight from the executor's query meter (the
//! `guard_eval` phase of `QueryStats`) instead of being inferred by
//! differencing guarded and unguarded runs.
//!
//! ```sh
//! cargo run -p rcc-bench --bin table_4_5_phase_breakdown --release
//! ```

use rcc_bench::{mean, ms, print_region_config};
use rcc_executor::{execute_plan, ExecContext, PhaseTimings, RemoteService};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;
use rcc_optimizer::PhysicalPlan;
use std::collections::HashMap;
use std::sync::Arc;

fn ctx(cache: &MTCache) -> ExecContext {
    ExecContext::new(
        Arc::clone(cache.cache_storage()),
        Some(Arc::clone(cache.backend()) as Arc<dyn RemoteService>),
        Arc::new(cache.clock().clone()),
    )
}

/// Average phase timings of `plan` over `iters` runs (in ms).
fn phases(cache: &MTCache, plan: &PhysicalPlan, iters: usize) -> (f64, f64, f64) {
    let ctx = ctx(cache);
    let _ = execute_plan(plan, &ctx).expect("warm");
    let mut setup = Vec::with_capacity(iters);
    let mut run = Vec::with_capacity(iters);
    let mut shutdown = Vec::with_capacity(iters);
    for _ in 0..iters {
        let r = execute_plan(plan, &ctx).expect("exec");
        let PhaseTimings {
            setup: s,
            run: rn,
            shutdown: sd,
        } = r.timings;
        setup.push(ms(s));
        run.push(ms(rn));
        shutdown.push(ms(sd));
    }
    (mean(&setup), mean(&run), mean(&shutdown))
}

fn main() {
    let cache = paper_setup(0.1, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    print_region_config(&cache);

    let queries: Vec<(&str, String, usize)> = vec![
        (
            "Q1",
            "SELECT c_custkey, c_name, c_acctbal FROM customer WHERE c_custkey = 77 \
             CURRENCY BOUND 60 SEC ON (customer)"
                .to_string(),
            4_000,
        ),
        (
            "Q2",
            "SELECT c.c_custkey, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 77 \
             CURRENCY BOUND 60 SEC ON (c), 60 SEC ON (o)"
                .to_string(),
            4_000,
        ),
        (
            "Q3",
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
             WHERE c_acctbal BETWEEN 0.0 AND 440.0 \
             CURRENCY BOUND 60 SEC ON (customer)"
                .to_string(),
            300,
        ),
    ];

    println!("Table 4.5 — local currency-guard overhead per execution phase");
    println!(
        "{:<4} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8} | {:>10}",
        "", "setup(ms)", "(%)", "run(ms)", "(%)", "shutdn(ms)", "(%)", "ideal(ms)"
    );

    for (name, sql, iters) in &queries {
        let opt = cache.explain(sql, &HashMap::new()).expect(name);
        let guarded = opt.plan.clone();
        let plain = opt.plan.strip_guards(true);
        let (s0, r0, d0) = phases(&cache, &plain, *iters);
        let (s1, r1, d1) = phases(&cache, &guarded, *iters);
        let (ds, dr, dd) = (s1 - s0, r1 - r0, d1 - d0);
        // the paper's "ideal" estimate: the inherent guard cost. The query
        // meter times every guard evaluation (QueryStats' guard_eval
        // phase), so read it directly — no differencing noise.
        let ideal = {
            let probe_iters = 2_000usize;
            let ctx = ctx(&cache);
            let _ = execute_plan(&guarded, &ctx).expect("warm");
            let before = ctx.meter.guard_eval();
            for _ in 0..probe_iters {
                execute_plan(&guarded, &ctx).expect("exec");
            }
            ms(ctx.meter.guard_eval() - before) / probe_iters as f64
        };
        println!(
            "{:<4} | {:>10.4} {:>7.1}% | {:>10.4} {:>7.1}% | {:>10.4} {:>7.1}% | {:>10.4}",
            name,
            ds,
            100.0 * ds / s0.max(1e-9),
            dr,
            100.0 * dr / r0.max(1e-9),
            dd,
            100.0 * dd / d0.max(1e-9),
            ideal,
        );
    }

    // the same queries through the full pipeline: per-statement phase
    // stats as the cache reports them (parse → bind → optimize →
    // guard_eval → local_exec → remote_ship)
    println!("\nFull-pipeline QueryStats (one warm execution each):");
    for (name, sql, _) in &queries {
        let _ = cache.execute(sql).expect(name); // compile + warm plan cache
        let r = cache.execute(sql).expect(name);
        println!("{name}: {}", r.stats.render());
    }

    println!(
        "\nPaper shape: setup and run dominate the overhead for tiny queries;\n\
         for the scan (Q3) the per-row work swamps the one-off guard cost and\n\
         the relative run overhead drops to a few percent."
    );
}
