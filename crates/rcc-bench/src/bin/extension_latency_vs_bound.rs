//! Extension experiment: the user-visible payoff of relaxed currency.
//!
//! The paper's motivation — replicas exist "to improve scalability,
//! performance and availability" — implies that relaxing a query's bound
//! should buy latency and shed back-end load. This report sweeps the
//! currency bound of a fixed read workload and measures mean latency, the
//! fraction served locally, and bytes shipped from the back-end, against
//! the two straw-man routers (always-remote = bound 0; always-local =
//! freshness-blind).
//!
//! ```sh
//! cargo run -p rcc-bench --bin extension_latency_vs_bound --release
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_bench::{mean, ms, print_region_config};
use rcc_common::Duration;
use rcc_mtcache::paper::{paper_setup, warm_up};

const QUERIES_PER_POINT: usize = 200;

fn main() {
    let cache = paper_setup(0.05, 42).expect("rig"); // 7.5k customers
    warm_up(&cache).expect("warm-up");
    cache.backend().set_simulated_network(150, 20);

    println!("Extension — mean read latency & back-end traffic vs. currency bound");
    print_region_config(&cache);
    println!(
        "{:>9} | {:>11} | {:>8} | {:>12} | {:>12}",
        "bound", "latency(ms)", "% local", "remote calls", "rows shipped"
    );

    // CR1: f=15s, d=5s → the interesting region for B is [0, 20s]
    for bound_s in [0i64, 2, 5, 7, 10, 13, 16, 20, 30, 60] {
        let mut rng = StdRng::seed_from_u64(bound_s as u64 + 1);
        cache.counters().reset();
        let mut latencies = Vec::with_capacity(QUERIES_PER_POINT);
        let mut local = 0usize;
        for _ in 0..QUERIES_PER_POINT {
            // drift through the propagation cycle so guard outcomes sample
            // the whole staleness ramp
            cache
                .advance(Duration::from_millis(rng.gen_range(50..450)))
                .expect("advance");
            let key = rng.gen_range(1..=7000);
            let sql = if bound_s == 0 {
                // bound 0 == the always-remote baseline (tight default)
                format!(
                    "SELECT c_custkey, c_name, c_acctbal FROM customer \
                     WHERE c_custkey BETWEEN {key} AND {}",
                    key + 40
                )
            } else {
                format!(
                    "SELECT c_custkey, c_name, c_acctbal FROM customer \
                     WHERE c_custkey BETWEEN {key} AND {} \
                     CURRENCY BOUND {bound_s} SEC ON (customer)",
                    key + 40
                )
            };
            let r = cache.execute(&sql).expect("query");
            latencies.push(ms(r.timings.total()));
            if !r.used_remote {
                local += 1;
            }
        }
        let remote_calls = cache
            .counters()
            .remote_queries
            .load(std::sync::atomic::Ordering::Relaxed);
        let shipped = cache
            .counters()
            .rows_shipped
            .load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "{:>8}s | {:>11.4} | {:>7.1}% | {:>12} | {:>12}",
            bound_s,
            mean(&latencies),
            100.0 * local as f64 / QUERIES_PER_POINT as f64,
            remote_calls,
            shipped
        );
    }

    println!(
        "\nShape: latency and back-end traffic drop monotonically as the bound\n\
         relaxes past the region delay (5 s) and saturate once B > d + f (20 s):\n\
         saying \"good enough\" in SQL converts staleness tolerance into speed\n\
         while the guards keep every answer within its declared bound."
    );
}
