//! `scan_parallel` — morsel-driven parallel scan benchmark + correctness
//! sweep, written to `BENCH_scan.json`.
//!
//! Six measurements over the paper rig and the storage layer:
//!
//! 1. **Worker scaling**: rows/s of a residual-filtered full scan through
//!    the whole SQL pipeline at 1/2/4/8 scan workers. Morsel-parallel
//!    scans are CPU-bound, so real speedup needs real cores: the JSON
//!    records `cpus`, and the ≥2× 1→4 scaling assertion only arms when at
//!    least 4 are available.
//! 2. **Batched vs. row-at-a-time**: the same scan at one worker on the
//!    vectorized engine versus the preserved row reference engine
//!    ([`rcc_executor::rowref`]); the batched engine must be ≥2× (asserted
//!    unconditionally — both run on the same box), plus a batch-size sweep
//!    (512/2048/8192 rows per batch).
//! 3. **Concurrent refresh**: reader scan throughput while a writer
//!    continuously publishes refresh batches — the copy-on-write
//!    [`TableCell`] path versus the pre-snapshot design (a bench-local
//!    `RwLock<Table>` where readers scan under the read lock and the
//!    writer applies each batch under the write lock). Proves reader
//!    throughput does not collapse when refresh runs concurrently.
//! 4. **Serial/parallel identity**: every query of the TPC-D currency
//!    corpus is executed serially and with a 4-worker pool; the
//!    wire-encoded results must be byte-identical (asserted, any mode).
//! 5. **Batched/row identity**: the whole corpus again, batched versus the
//!    row engine, in both SwitchUnion pull-up modes; wire encodings must
//!    be byte-identical (asserted, any mode).
//! 6. **Guard-elision cost and identity**: the corpus with certified guard
//!    elision off versus on, in both pull-up modes; wire encodings,
//!    remote usage, and warnings must be identical, some guards must be
//!    elided, guard evaluations must drop, and the runtime premise
//!    cross-check (`rcc_flow_interval_violations_total`) must read zero.
//!
//! ```sh
//! cargo run -p rcc-bench --bin scan_parallel --release -- \
//!     [--quick] [--scale F] [--iters N] [--refresh-ms MS] [--corpus N] \
//!     [--out PATH]
//! ```

use parking_lot::RwLock;
use rcc_common::{Column, DataType, Row, Schema, Value};
use rcc_executor::wire;
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;
use rcc_storage::{KeyRange, Table, TableCell};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

struct Options {
    quick: bool,
    scale: f64,
    iters: usize,
    refresh_ms: u64,
    corpus: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            scale: 0.2,
            iters: 6,
            refresh_ms: 1500,
            corpus: 160,
            out: "BENCH_scan.json".into(),
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut scale_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--scale" => {
                opts.scale = value().parse().expect("--scale");
                scale_set = true;
            }
            "--iters" => opts.iters = value().parse().expect("--iters"),
            "--refresh-ms" => opts.refresh_ms = value().parse().expect("--refresh-ms"),
            "--corpus" => opts.corpus = value().parse().expect("--corpus"),
            "--out" => opts.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    if opts.quick {
        if !scale_set {
            opts.scale = 0.02;
        }
        opts.iters = opts.iters.min(2);
        opts.refresh_ms = opts.refresh_ms.min(300);
        opts.corpus = opts.corpus.min(60);
    }
    opts
}

/// A full scan of the customer view with a residual predicate that keeps
/// every row: per-row work for the scan kernel, zero pruning, so rows/s
/// measures the scan pipeline itself.
const SCAN_SQL: &str = "SELECT c_custkey, c_name, c_acctbal FROM customer \
     WHERE c_acctbal >= -1000000 CURRENCY BOUND 1 HOUR ON (customer)";

fn parallel_scans_so_far(cache: &MTCache) -> f64 {
    cache
        .metrics()
        .snapshot()
        .counter("rcc_scan_parallel_total") as f64
}

/// rows/s of `SCAN_SQL` at a given worker count.
fn measure_scaling(cache: &MTCache, workers: usize, iters: usize) -> (f64, f64, u64) {
    cache.set_scan_workers(workers);
    // warm once: plan-cache fill + pool spin-up stay out of the timing
    let warm = cache.execute(SCAN_SQL).expect("warm scan");
    assert!(!warm.used_remote, "scaling scan must run on the local view");
    let rows_per_query = warm.rows.len() as u64;
    assert!(rows_per_query > 0, "scaling scan returned no rows");
    let started = Instant::now();
    let mut rows = 0u64;
    for _ in 0..iters {
        rows += cache.execute(SCAN_SQL).expect("scan").rows.len() as u64;
    }
    let elapsed = started.elapsed().as_secs_f64();
    (rows as f64 / elapsed, elapsed, rows_per_query)
}

fn refresh_table(n: i64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("val", DataType::Int),
    ]);
    let mut t = Table::new("refresh_t", schema, vec![0]);
    for i in 0..n {
        t.insert(Row::new(vec![Value::Int(i), Value::Int(0)]))
            .expect("load");
    }
    t
}

struct RefreshOutcome {
    reads_per_sec: f64,
    rows_per_sec: f64,
    refresh_batches: u64,
}

/// Reader throughput under a continuous refresh writer, for one of the two
/// locking designs. `scan` must count the rows of one full scan; `refresh`
/// must apply one whole refresh batch (returning once it is published).
fn measure_refresh<S, W>(duration: Duration, readers: usize, scan: S, refresh: W) -> RefreshOutcome
where
    S: Fn() -> u64 + Send + Sync,
    W: Fn(i64),
{
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scans = 0u64;
                    let mut rows = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        rows += scan();
                        scans += 1;
                    }
                    (scans, rows)
                })
            })
            .collect();
        let started = Instant::now();
        let mut batches = 0u64;
        while started.elapsed() < duration {
            refresh(batches as i64);
            batches += 1;
        }
        done.store(true, Ordering::Relaxed);
        let (mut scans, mut rows) = (0u64, 0u64);
        for h in handles {
            let (s, r) = h.join().expect("reader");
            scans += s;
            rows += r;
        }
        let secs = started.elapsed().as_secs_f64();
        RefreshOutcome {
            reads_per_sec: scans as f64 / secs,
            rows_per_sec: rows as f64 / secs,
            refresh_batches: batches,
        }
    })
}

fn count_rows(t: &Table) -> u64 {
    let mut rows = 0u64;
    t.scan_range(&KeyRange::all(), |_| true, |_| rows += 1);
    rows
}

fn apply_batch(t: &mut Table, batch: i64, size: i64) {
    for i in 0..size {
        t.upsert(Row::new(vec![Value::Int(i), Value::Int(batch)]))
            .expect("upsert");
    }
}

fn main() {
    let opts = parse_args();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "scan_parallel: scale {}, {} iters, quick={}, cpus={}",
        opts.scale, opts.iters, opts.quick, cpus
    );

    let cache = paper_setup(opts.scale, 42).expect("rig");
    warm_up(&cache).expect("warm up");
    let max_custkey = ((150_000.0 * opts.scale) as i64).max(2);

    // -------------------------------------------------- 1. worker scaling
    let mut scaling = Vec::new();
    for &w in WORKER_COUNTS {
        let before = parallel_scans_so_far(&cache);
        let (rows_per_sec, elapsed, rows_per_query) = measure_scaling(&cache, w, opts.iters);
        let parallel_ran = parallel_scans_so_far(&cache) > before;
        assert_eq!(
            parallel_ran,
            w > 1,
            "worker count {w} must use the {} scan path",
            if w > 1 { "parallel" } else { "serial" }
        );
        eprintln!("  workers {w}: {rows_per_sec:.0} rows/s ({rows_per_query} rows/scan)");
        scaling.push((w, rows_per_sec, elapsed, rows_per_query));
    }
    let rows_at = |w: usize| {
        scaling
            .iter()
            .find(|(workers, ..)| *workers == w)
            .map(|(_, r, ..)| *r)
            .expect("measured")
    };
    let speedup_1_to_4 = rows_at(4) / rows_at(1);
    eprintln!("  1→4 worker speedup: {speedup_1_to_4:.2}×");
    if cpus >= 4 {
        assert!(
            speedup_1_to_4 >= 2.0,
            "expected ≥2× rows/s scaling 1→4 workers on {cpus} cpus, got {speedup_1_to_4:.2}×"
        );
    } else {
        eprintln!("  (only {cpus} cpu(s): the ≥2× scaling assertion needs ≥4 to arm)");
    }

    // ---------------------------------- 2. batched vs. row-at-a-time
    // both engines, identical query, one worker: the vectorized engine's
    // margin comes from ordinal-compiled expressions, per-batch dispatch
    // and columnar fills, not from parallelism
    cache.set_row_engine(true);
    let (row_rps, ..) = measure_scaling(&cache, 1, opts.iters);
    cache.set_row_engine(false);
    let (batched_rps, ..) = measure_scaling(&cache, 1, opts.iters);
    let batched_speedup = batched_rps / row_rps;
    eprintln!(
        "  batched vs row @1 worker: {batched_rps:.0} vs {row_rps:.0} rows/s \
         ({batched_speedup:.2}×)"
    );
    assert!(
        batched_speedup >= 2.0,
        "expected the batched engine ≥2× the row engine at 1 worker, got {batched_speedup:.2}×"
    );
    let mut batch_sweep = Vec::new();
    for &b in &[512usize, 2048, 8192] {
        cache.set_batch_rows(b);
        let (rps, ..) = measure_scaling(&cache, 1, opts.iters);
        eprintln!("  batch size {b}: {rps:.0} rows/s");
        batch_sweep.push((b, rps));
    }
    cache.set_batch_rows(rcc_executor::DEFAULT_BATCH_ROWS);

    // -------------------------------------- 3. reader vs. refresh writer
    let (table_rows, batch_rows) = if opts.quick {
        (5_000, 500)
    } else {
        (50_000, 5_000)
    };
    let duration = Duration::from_millis(opts.refresh_ms);
    let readers = 2;

    let cell = Arc::new(TableCell::new(refresh_table(table_rows)));
    let snapshot_path = measure_refresh(
        duration,
        readers,
        || count_rows(&cell.snapshot()),
        |batch| {
            cell.update(|t| {
                apply_batch(t, batch, batch_rows);
                Ok(())
            })
            .expect("publish");
        },
    );

    let locked = Arc::new(RwLock::new(refresh_table(table_rows)));
    let locked_path = measure_refresh(
        duration,
        readers,
        || count_rows(&locked.read()),
        |batch| apply_batch(&mut locked.write(), batch, batch_rows),
    );

    let reader_ratio = snapshot_path.rows_per_sec / locked_path.rows_per_sec.max(1.0);
    eprintln!(
        "  concurrent refresh: snapshot {:.0} rows/s vs locked {:.0} rows/s ({reader_ratio:.2}×)",
        snapshot_path.rows_per_sec, locked_path.rows_per_sec
    );
    assert!(
        reader_ratio >= 0.5,
        "snapshot readers collapsed vs. the locked baseline: {reader_ratio:.2}×"
    );

    // -------------------------------- 4. serial/parallel identity sweep
    let corpus = rcc_tpcd::currency_corpus(opts.corpus, 7, max_custkey);
    cache.set_scan_workers(1);
    let serial: Vec<Vec<u8>> = corpus
        .iter()
        .map(|sql| {
            let r = cache.execute(sql).expect("serial corpus query");
            wire::encode_result(&r.schema, &r.rows).to_vec()
        })
        .collect();
    cache.set_scan_workers(4);
    let mismatches: usize = corpus
        .iter()
        .zip(&serial)
        .filter(|(sql, serial_bytes)| {
            let r = cache.execute(sql).expect("parallel corpus query");
            let parallel_bytes = wire::encode_result(&r.schema, &r.rows).to_vec();
            let differs = &parallel_bytes != *serial_bytes;
            if differs {
                eprintln!("  MISMATCH: {sql}");
            }
            differs
        })
        .count();
    eprintln!(
        "  corpus identity: {} queries, {mismatches} mismatches",
        corpus.len()
    );
    assert_eq!(
        mismatches, 0,
        "parallel scans must be byte-identical to serial execution"
    );

    // ---------------------------- 5. batched vs. row identity sweep
    // the full corpus again, vectorized engine against the row reference
    // engine, in both SwitchUnion pull-up modes
    cache.set_scan_workers(1);
    let mut engine_queries = 0usize;
    let mut engine_mismatches = 0usize;
    for pullup in [false, true] {
        cache.set_pullup_switch_union(pullup);
        cache.set_row_engine(true);
        let row_bytes: Vec<Vec<u8>> = corpus
            .iter()
            .map(|sql| {
                let r = cache.execute(sql).expect("row-engine corpus query");
                wire::encode_result(&r.schema, &r.rows).to_vec()
            })
            .collect();
        cache.set_row_engine(false);
        for (sql, row_encoded) in corpus.iter().zip(&row_bytes) {
            engine_queries += 1;
            let r = cache.execute(sql).expect("batched corpus query");
            let batched_encoded = wire::encode_result(&r.schema, &r.rows).to_vec();
            if &batched_encoded != row_encoded {
                eprintln!("  ENGINE MISMATCH (pullup={pullup}): {sql}");
                engine_mismatches += 1;
            }
        }
    }
    cache.set_pullup_switch_union(false); // back to the default mode
    eprintln!("  batched/row identity: {engine_queries} runs, {engine_mismatches} mismatches");
    assert_eq!(
        engine_mismatches, 0,
        "the batched engine must be byte-identical to the row engine on the wire"
    );

    // ------------------- 6. guard elision: cost and identity sweep
    // the corpus once more, elision off vs. on, in both pull-up modes:
    // wire encodings, remote usage, and warnings must be identical
    // (elision only removes checks whose outcome is statically certain),
    // at least one guard must actually be elided, the elided side must
    // evaluate strictly fewer guards, and the runtime premise cross-check
    // must stay silent.
    let mut elision_queries = 0usize;
    let mut elision_mismatches = 0usize;
    let mut guard_evals_off = 0u64;
    let mut guard_evals_on = 0u64;
    for pullup in [false, true] {
        cache.set_pullup_switch_union(pullup);
        for sql in &corpus {
            elision_queries += 1;
            cache.set_elide_guards(false);
            let off = cache.execute(sql).expect("elision-off corpus query");
            cache.set_elide_guards(true);
            let on = cache.execute(sql).expect("elision-on corpus query");
            guard_evals_off += off.guards.len() as u64;
            guard_evals_on += on.guards.len() as u64;
            let off_encoded = wire::encode_result(&off.schema, &off.rows);
            let on_encoded = wire::encode_result(&on.schema, &on.rows);
            if off_encoded != on_encoded
                || off.used_remote != on.used_remote
                || off.warnings != on.warnings
            {
                eprintln!("  ELISION MISMATCH (pullup={pullup}): {sql}");
                elision_mismatches += 1;
            }
        }
    }
    cache.set_elide_guards(false);
    cache.set_pullup_switch_union(false);
    let snap = cache.metrics().snapshot();
    let guards_elided = snap.counter("rcc_flow_guards_elided_total");
    let interval_violations = snap.counter("rcc_flow_interval_violations_total");
    eprintln!(
        "  elision identity: {elision_queries} runs, {elision_mismatches} mismatches, \
         guard evals {guard_evals_off} → {guard_evals_on}, {guards_elided} guards elided"
    );
    assert_eq!(
        elision_mismatches, 0,
        "elided plans must be byte-identical to guarded plans on the wire"
    );
    assert!(
        guards_elided > 0,
        "the corpus' extreme bounds must let the analysis elide some guards"
    );
    assert!(
        guard_evals_on < guard_evals_off,
        "elision must reduce the number of guard evaluations \
         ({guard_evals_off} → {guard_evals_on})"
    );
    assert_eq!(
        interval_violations, 0,
        "healthy replication: no elided certificate may be overrun"
    );

    // ------------------------------------------------------------ report
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(w, rps, elapsed, rows_per_query)| {
            format!(
                "{{ \"workers\": {w}, \"rows_per_sec\": {rps:.1}, \
                 \"elapsed_secs\": {elapsed:.6}, \"rows_per_scan\": {rows_per_query} }}"
            )
        })
        .collect();
    let batch_sweep_json: Vec<String> = batch_sweep
        .iter()
        .map(|(b, rps)| format!("{{ \"batch_rows\": {b}, \"rows_per_sec\": {rps:.1} }}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scan_parallel\",\n  \"quick\": {},\n  \"scale\": {},\n  \
         \"cpus\": {},\n  \"iters\": {},\n  \"scaling\": [\n    {}\n  ],\n  \
         \"speedup_1_to_4\": {:.3},\n  \"batched_vs_row\": {{\n    \
         \"row_rows_per_sec\": {:.1}, \"batched_rows_per_sec\": {:.1},\n    \
         \"speedup\": {:.3}\n  }},\n  \"batch_size_sweep\": [\n    {}\n  ],\n  \
         \"concurrent_refresh\": {{\n    \
         \"table_rows\": {}, \"batch_rows\": {}, \"readers\": {},\n    \
         \"snapshot\": {{ \"reads_per_sec\": {:.1}, \"rows_per_sec\": {:.1}, \"refresh_batches\": {} }},\n    \
         \"locked\": {{ \"reads_per_sec\": {:.1}, \"rows_per_sec\": {:.1}, \"refresh_batches\": {} }},\n    \
         \"reader_ratio_snapshot_vs_locked\": {:.3}\n  }},\n  \
         \"identity_sweep\": {{ \"queries\": {}, \"mismatches\": {} }},\n  \
         \"engine_identity_sweep\": {{ \"queries\": {}, \"mismatches\": {} }},\n  \
         \"guard_elision\": {{ \"queries\": {}, \"mismatches\": {}, \
         \"guard_evals_off\": {}, \"guard_evals_on\": {}, \
         \"guards_elided\": {}, \"interval_violations\": {} }}\n}}\n",
        opts.quick,
        opts.scale,
        cpus,
        opts.iters,
        scaling_json.join(",\n    "),
        speedup_1_to_4,
        row_rps,
        batched_rps,
        batched_speedup,
        batch_sweep_json.join(",\n    "),
        table_rows,
        batch_rows,
        readers,
        snapshot_path.reads_per_sec,
        snapshot_path.rows_per_sec,
        snapshot_path.refresh_batches,
        locked_path.reads_per_sec,
        locked_path.rows_per_sec,
        locked_path.refresh_batches,
        reader_ratio,
        corpus.len(),
        mismatches,
        engine_queries,
        engine_mismatches,
        elision_queries,
        elision_mismatches,
        guard_evals_off,
        guard_evals_on,
        guards_elided,
        interval_violations,
    );
    let mut f = std::fs::File::create(&opts.out).expect("create BENCH_scan.json");
    f.write_all(json.as_bytes()).expect("write BENCH_scan.json");
    eprintln!("wrote {}", opts.out);
}
