//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Cost-based vs. always-prefer-local view selection** — the paper's
//!    Q6 point: "the optimizer may choose not to use a local view even
//!    though it satisfies all requirements if it is cheaper to get the
//!    data from the back-end server." We measure what forcing the local
//!    view would cost.
//! 2. **SwitchUnion pull-up vs. per-leaf guards** — the paper's future-work
//!    extension: a multi-table consistency class over one region served
//!    locally under one guard instead of going remote.
//! 3. **Compile-time bound check (B < d)** — how many optimizer candidates
//!    the early discard removes.
//!
//! ```sh
//! cargo run -p rcc-bench --bin ablation_design_choices --release
//! ```

use rcc_bench::{mean, ms};
use rcc_executor::{execute_plan, ExecContext, RemoteService};
use rcc_mtcache::paper::{paper_setup_sf1_stats, warm_up};
use rcc_mtcache::MTCache;
use rcc_optimizer::optimize::PlanChoice;
use std::collections::HashMap;
use std::sync::Arc;

fn time(cache: &MTCache, plan: &rcc_optimizer::PhysicalPlan, iters: usize) -> f64 {
    let ctx = ExecContext::new(
        Arc::clone(cache.cache_storage()),
        Some(Arc::clone(cache.backend()) as Arc<dyn RemoteService>),
        Arc::new(cache.clock().clone()),
    );
    let _ = execute_plan(plan, &ctx).expect("warm");
    let mut xs = Vec::with_capacity(iters);
    for _ in 0..iters {
        xs.push(ms(execute_plan(plan, &ctx).expect("run").timings.total()));
    }
    mean(&xs)
}

fn main() {
    // physical scale 0.1 with SF 1.0 statistics: the optimizer decides at
    // paper scale, execution runs on the 15k/150k-row physical data
    let cache = paper_setup_sf1_stats(0.1, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    cache.backend().set_simulated_network(150, 20);

    // ------------------------------------------------------- ablation 1
    println!("== Ablation 1: cost-based routing vs. always-prefer-local (paper Q6)");
    let q6 = "SELECT c_custkey, c_name, c_acctbal FROM customer \
              WHERE c_acctbal BETWEEN 0.0 AND 4.0 CURRENCY BOUND 30 SEC ON (customer)";
    let chosen = cache.explain(q6, &HashMap::new()).expect("q6");
    assert_eq!(
        chosen.choice,
        PlanChoice::FullRemote,
        "cost-based choice is remote"
    );
    // force the local view: strip the guard out of a synthetic guarded plan
    // built by temporarily making remote prohibitively expensive
    let mut expensive_remote = rcc_optimizer::cost::CostParams::default();
    expensive_remote.remote_roundtrip *= 1e6;
    cache.set_cost_params(expensive_remote);
    let forced_local = cache.explain(q6, &HashMap::new()).expect("q6 forced");
    cache.set_cost_params(rcc_optimizer::cost::CostParams::default());
    let t_remote = time(&cache, &chosen.plan, 200);
    let t_local = time(&cache, &forced_local.plan, 200);
    println!("   narrow range (~0.035% of rows):");
    println!("   cost-based (remote, back-end index): {t_remote:.4} ms");
    println!("   forced local (full view scan):       {t_local:.4} ms");
    println!(
        "   → cost-based routing wins {:.1}× — a freshness-only policy that always\n\
         \x20    prefers the cache pays a full scan for 50-ish rows\n",
        t_local / t_remote.max(1e-9)
    );

    // ------------------------------------------------------- ablation 2
    println!("== Ablation 2: SwitchUnion pull-up vs. per-leaf guards");
    let e1 = "SELECT a.c_custkey, b.c_name FROM customer a, customer b \
              WHERE a.c_custkey = b.c_custkey AND a.c_custkey <= 200 \
              CURRENCY BOUND 30 SEC ON (a, b)";
    cache.set_pullup_switch_union(false);
    let baseline = cache.explain(e1, &HashMap::new()).expect("e1 base");
    cache.set_pullup_switch_union(true);
    let pulled = cache.explain(e1, &HashMap::new()).expect("e1 pullup");
    cache.set_pullup_switch_union(false);
    let t_base = time(&cache, &baseline.plan, 100);
    let t_pull = time(&cache, &pulled.plan, 100);
    println!("   self-join with a two-table consistency class (one region):");
    println!(
        "   per-leaf guards (paper prototype): {:?}, {t_base:.4} ms",
        baseline.choice
    );
    println!(
        "   pulled-up guard (extension):       {:?}, {t_pull:.4} ms",
        pulled.choice
    );
    println!(
        "   → the extension keeps the class local and runs {:.1}× faster\n",
        t_base / t_pull.max(1e-9)
    );

    // ------------------------------------------------------- ablation 3
    println!("== Ablation 3: compile-time B < d discard");
    // 3s bound vs CR1's 5s delay: local alternatives are discarded before
    // costing; the plan has no guard for customer at all
    let q4c = "SELECT c_custkey, c_name FROM customer WHERE c_custkey <= 500 \
               CURRENCY BOUND 3 SEC ON (customer)";
    let opt = cache.explain(q4c, &HashMap::new()).expect("q4c");
    println!(
        "   bound 3 s < delay 5 s → plan: {:?}, guards: {}",
        opt.choice,
        opt.plan.guard_count()
    );
    assert_eq!(opt.plan.guard_count(), 0, "no run-time check needed at all");
    let q5c = "SELECT c_custkey, c_name FROM customer WHERE c_custkey <= 500 \
               CURRENCY BOUND 30 SEC ON (customer)";
    let opt2 = cache.explain(q5c, &HashMap::new()).expect("q5c");
    println!(
        "   bound 30 s ≥ delay 5 s → plan: {:?}, guards: {}",
        opt2.choice,
        opt2.plan.guard_count()
    );
    println!(
        "   → the compile-time rule removes provably useless dynamic plans and\n\
         \x20    their guard overhead (paper Sec. 3.2.2, last paragraph)"
    );
}
