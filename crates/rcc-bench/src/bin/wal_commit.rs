//! `wal_commit` — commit throughput of the durable back-end.
//!
//! Drives `MasterDb::execute_txn` from N concurrent writer threads under
//! three durability modes and reports transactions/second for each:
//!
//! * **in_memory** — no durability attached (the default rig): the upper
//!   bound, a pure COW-publish commit path.
//! * **group_commit** — WAL appended per commit, fsyncs batched across
//!   concurrent committers (leader election); a commit is acknowledged
//!   only after a sync covering its LSN completes.
//! * **fsync_per_commit** — WAL appended *and* fsynced inside every
//!   commit before the COW epoch publishes: the strict
//!   write-ahead-of-publish discipline.
//!
//! ```sh
//! cargo run -p rcc-bench --bin wal_commit --release -- \
//!     [--threads N] [--txns N] [--quick] [--out PATH]
//! ```
//!
//! Writes `BENCH_wal.json`.

use rcc_backend::TableChange;
use rcc_common::{Row, Value};
use rcc_mtcache::MTCache;
use rcc_storage::table::RowChange;
use rcc_storage::SyncPolicy;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    threads: usize,
    txns: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 4,
            txns: 500,
            out: "BENCH_wal.json".into(),
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--threads" => opts.threads = value().parse().expect("--threads"),
            "--txns" => opts.txns = value().parse().expect("--txns"),
            "--quick" => {
                opts.threads = 2;
                opts.txns = 100;
            }
            "--out" => opts.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

struct ModeResult {
    txns_per_sec: f64,
    elapsed_secs: f64,
    wal_fsyncs: u64,
    wal_bytes: u64,
}

fn bench_mode(name: &str, sync: Option<SyncPolicy>, opts: &Options) -> ModeResult {
    let dir = std::env::temp_dir().join(format!("rcc-wal-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = match sync {
        Some(policy) => MTCache::new_durable(&dir, policy).expect("durable cache"),
        None => MTCache::new(),
    };
    cache
        .execute("CREATE TABLE bench_t (k INT, v VARCHAR, PRIMARY KEY (k))")
        .expect("create table");
    let master = Arc::clone(cache.master());

    let started = Instant::now();
    let workers: Vec<_> = (0..opts.threads)
        .map(|t| {
            let master = Arc::clone(&master);
            let txns = opts.txns;
            std::thread::spawn(move || {
                for i in 0..txns {
                    let k = (t * txns + i) as i64;
                    let row = Row::new(vec![Value::Int(k), Value::Str(format!("payload-{k}"))]);
                    master
                        .execute_txn(vec![TableChange::new("bench_t", RowChange::Insert(row))])
                        .expect("commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let elapsed = started.elapsed();

    let total = (opts.threads * opts.txns) as f64;
    let (wal_fsyncs, wal_bytes) = match master.durability() {
        Some(store) => (store.wal_fsyncs(), store.wal_bytes()),
        None => (0, 0),
    };
    let result = ModeResult {
        txns_per_sec: total / elapsed.as_secs_f64(),
        elapsed_secs: elapsed.as_secs_f64(),
        wal_fsyncs,
        wal_bytes,
    };
    eprintln!(
        "wal_commit: {name:>16}  {:>9.0} txns/s  ({:.3}s, {} fsyncs, {} wal bytes)",
        result.txns_per_sec, result.elapsed_secs, result.wal_fsyncs, result.wal_bytes
    );
    drop(cache);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn render_mode(r: &ModeResult) -> String {
    format!(
        "{{ \"txns_per_sec\": {:.1}, \"elapsed_secs\": {:.6}, \"wal_fsyncs\": {}, \
         \"wal_bytes\": {} }}",
        r.txns_per_sec, r.elapsed_secs, r.wal_fsyncs, r.wal_bytes
    )
}

fn main() {
    let opts = parse_args();
    eprintln!(
        "wal_commit: {} threads x {} txns per mode",
        opts.threads, opts.txns
    );

    let in_memory = bench_mode("in_memory", None, &opts);
    let group = bench_mode("group_commit", Some(SyncPolicy::Group), &opts);
    let fsync = bench_mode("fsync_per_commit", Some(SyncPolicy::Always), &opts);

    // Sanity: every durable mode paid for its WAL; fsync-per-commit issued
    // at least one fsync per transaction.
    let total = (opts.threads * opts.txns) as u64;
    assert!(group.wal_bytes > 0 && fsync.wal_bytes > 0);
    assert!(
        fsync.wal_fsyncs >= total,
        "Always policy fsyncs every commit: {} < {total}",
        fsync.wal_fsyncs
    );
    assert!(
        group.wal_fsyncs <= fsync.wal_fsyncs,
        "group commit batches fsyncs"
    );

    let json = format!(
        "{{\n  \"bench\": \"wal_commit\",\n  \"threads\": {},\n  \"txns_per_thread\": {},\n  \
         \"modes\": {{\n    \"in_memory\": {},\n    \"group_commit\": {},\n    \
         \"fsync_per_commit\": {}\n  }}\n}}\n",
        opts.threads,
        opts.txns,
        render_mode(&in_memory),
        render_mode(&group),
        render_mode(&fsync),
    );
    let out = PathBuf::from(&opts.out);
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {}", out.display());
}
