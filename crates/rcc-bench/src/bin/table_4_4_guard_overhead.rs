//! Regenerates **Table 4.4** (paper Sec. 4.3): the absolute (ms) and
//! relative (%) overhead of currency guards for the three benchmark
//! queries, executed both locally and remotely.
//!
//! Methodology mirrors the paper: for each query we build a traditional
//! plan without currency checking and a dynamic plan with guards, run each
//! repeatedly against a warm cache, and compare average elapsed times —
//! once with the guards passing (local execution) and once with them
//! failing (remote execution).
//!
//! ```sh
//! cargo run -p rcc-bench --bin table_4_4_guard_overhead --release
//! ```

use rcc_bench::{mean, ms, print_region_config};
use rcc_common::Duration;
use rcc_executor::{execute_plan, ExecContext, RemoteService};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;
use rcc_optimizer::PhysicalPlan;
use std::collections::HashMap;
use std::sync::Arc;

/// Iterations per measurement (paper: 100 000 for the cheap local queries,
/// 1 000 for the rest — scaled down to keep the report quick).
fn iterations(query: &str, local: bool) -> usize {
    match (query, local) {
        ("Q1", true) | ("Q2", true) => 20_000,
        ("Q3", true) => 600,
        _ => 300,
    }
}

struct Rig {
    cache: MTCache,
}

impl Rig {
    fn ctx(&self) -> ExecContext {
        ExecContext::new(
            Arc::clone(self.cache.cache_storage()),
            Some(Arc::clone(self.cache.backend()) as Arc<dyn RemoteService>),
            Arc::new(self.cache.clock().clone()),
        )
    }

    /// Time two plans interleaved (A, B, A, B, ...) so cache warming and
    /// scheduling noise hit both equally. Returns (mean_a_ms, mean_b_ms,
    /// rows_of_a).
    fn time_pair(&self, a: &PhysicalPlan, b: &PhysicalPlan, iters: usize) -> (f64, f64, usize) {
        let ctx = self.ctx();
        let rows = execute_plan(a, &ctx).expect("warm a").rows.len();
        let _ = execute_plan(b, &ctx).expect("warm b");
        let mut ta = Vec::with_capacity(iters);
        let mut tb = Vec::with_capacity(iters);
        // alternate execution order so allocator/cache warmth cannot
        // systematically favour either plan
        for i in 0..iters {
            if i % 2 == 0 {
                ta.push(ms(execute_plan(a, &ctx).expect("a").timings.total()));
                tb.push(ms(execute_plan(b, &ctx).expect("b").timings.total()));
            } else {
                tb.push(ms(execute_plan(b, &ctx).expect("b").timings.total()));
                ta.push(ms(execute_plan(a, &ctx).expect("a").timings.total()));
            }
        }
        (mean(&ta), mean(&tb), rows)
    }
}

fn main() {
    // scale 0.1: 15 000 customers / ~150 000 orders — big enough that the
    // Q3 scan is meaningful, small enough to load quickly
    let cache = paper_setup(0.1, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    // a LAN-ish simulated network: 150 µs per round trip + 20 µs/KiB —
    // without it the in-process back-end is as fast as local reads
    cache.backend().set_simulated_network(150, 20);
    print_region_config(&cache);
    let rig = Rig { cache };

    // the paper's three queries (Table 4.4 top): point lookup, small NL
    // join, large scan. Bounds chosen so the guards PASS (local case).
    let queries: Vec<(&str, String)> = vec![
        (
            "Q1",
            "SELECT c_custkey, c_name, c_acctbal FROM customer WHERE c_custkey = 77 \
             CURRENCY BOUND 60 SEC ON (customer)"
                .to_string(),
        ),
        (
            "Q2",
            "SELECT c.c_custkey, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 77 \
             CURRENCY BOUND 60 SEC ON (c), 60 SEC ON (o)"
                .to_string(),
        ),
        (
            "Q3",
            // ~4% of the table (≈ the paper's 5 975 of 150 000)
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
             WHERE c_acctbal BETWEEN 0.0 AND 440.0 \
             CURRENCY BOUND 60 SEC ON (customer)"
                .to_string(),
        ),
    ];

    println!("Table 4.4 — overhead of currency guards");
    println!(
        "{:<4} {:>6} | {:>12} {:>12} {:>9} {:>8} | {:>12} {:>12} {:>9} {:>8}",
        "",
        "rows",
        "local-noCG",
        "local-CG",
        "ovh(ms)",
        "ovh(%)",
        "remote-noCG",
        "remote-CG",
        "ovh(ms)",
        "ovh(%)"
    );

    for (name, sql) in &queries {
        let opt = rig.cache.explain(sql, &HashMap::new()).expect(name);
        assert!(
            opt.plan.guard_count() > 0,
            "{name} must have a guarded plan"
        );

        // --- local side: guards pass (fresh heartbeats after warm_up)
        let guarded = opt.plan.clone();
        let plain_local = opt.plan.strip_guards(true);
        let it = iterations(name, true);
        let (t_plain_local, t_guard_local, rows) = rig.time_pair(&plain_local, &guarded, it);

        // --- remote side: strip to the remote branch for the baseline;
        // for the guarded run, stall replication so the guard fails
        let plain_remote = opt.plan.strip_guards(false);
        let it_r = iterations(name, false);
        rig.cache.set_region_stalled("CR1", true);
        rig.cache.set_region_stalled("CR2", true);
        rig.cache
            .advance(Duration::from_secs(300))
            .expect("advance");
        let (t_plain_remote, t_guard_remote, _) = rig.time_pair(&plain_remote, &guarded, it_r);
        rig.cache.set_region_stalled("CR1", false);
        rig.cache.set_region_stalled("CR2", false);
        rig.cache.advance(Duration::from_secs(60)).expect("advance");

        let ovh_l = t_guard_local - t_plain_local;
        let ovh_r = t_guard_remote - t_plain_remote;
        println!(
            "{:<4} {:>6} | {:>10.4}ms {:>10.4}ms {:>9.4} {:>7.2}% | {:>10.4}ms {:>10.4}ms {:>9.4} {:>7.2}%",
            name,
            rows,
            t_plain_local,
            t_guard_local,
            ovh_l,
            100.0 * ovh_l / t_plain_local.max(1e-9),
            t_plain_remote,
            t_guard_remote,
            ovh_r,
            100.0 * ovh_r / t_plain_remote.max(1e-9),
        );
    }

    println!(
        "\nPaper shape: absolute overhead well under a millisecond for the point\n\
         queries; relative overhead noticeable locally (~15-21%) because local\n\
         execution is so cheap, small (<5%) remotely where round trips dominate."
    );
}
