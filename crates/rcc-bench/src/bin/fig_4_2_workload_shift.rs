//! Regenerates **Figure 4.2** (paper Sec. 4.2): how the fraction of the
//! workload executed locally shifts (a) as the currency bound B is relaxed
//! (f = 100, d ∈ {1, 5, 10}) and (b) as the refresh interval f grows
//! (B = 10, d ∈ {1, 5, 8}). Both the analytic model — formula (1),
//! `p = clamp((B−d)/f, 0, 1)` — and the fraction *measured* by replaying
//! the query at uniformly distributed start times through the real
//! replication + guard machinery are printed side by side.
//!
//! ```sh
//! cargo run -p rcc-bench --bin fig_4_2_workload_shift --release
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_bench::single_region_rig;
use rcc_common::Duration;

/// Samples per configuration point.
const SAMPLES: usize = 300;

/// Measured fraction of queries answered locally when the query (bound
/// `b_secs`) executes at uniformly random offsets within the propagation
/// cycle of a region with interval `f_secs` / delay `d_secs`.
fn measured_local_fraction(f_secs: i64, d_secs: i64, b_secs: i64, seed: u64) -> f64 {
    let cache = single_region_rig(f_secs.max(1), d_secs, 10).expect("rig");
    let mut rng = StdRng::seed_from_u64(seed);
    let sql = format!("SELECT v FROM items WHERE id = 1 CURRENCY BOUND {b_secs} SEC ON (items)");
    let mut local = 0usize;
    for _ in 0..SAMPLES {
        // jump to a uniformly random point of a later cycle (millisecond
        // granularity, so the offset really is uniform over the cycle)
        let jump = rng.gen_range(1..=(2 * f_secs.max(1) * 1000));
        cache.advance(Duration::from_millis(jump)).expect("advance");
        let r = cache.execute(&sql).expect("query");
        if !r.used_remote {
            local += 1;
        }
    }
    local as f64 / SAMPLES as f64
}

/// Formula (1).
fn analytic(f: f64, d: f64, b: f64) -> f64 {
    let x = b - d;
    if x <= 0.0 {
        0.0
    } else if f <= 0.0 || x > f {
        1.0
    } else {
        x / f
    }
}

fn main() {
    println!("Figure 4.2(a) — % of workload executed locally vs. currency bound B");
    println!("(refresh interval f = 100; one series per delay d = 1, 5, 10)\n");
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "B", "d=1 model", "measured", "d=5 model", "measured", "d=10 mdl", "measured"
    );
    let f = 100i64;
    for b in (0..=120).step_by(10) {
        print!("{b:>6} |");
        for d in [1i64, 5, 10] {
            let model = analytic(f as f64, d as f64, b as f64) * 100.0;
            let meas = measured_local_fraction(f, d, b, (b * 31 + d) as u64) * 100.0;
            print!(" {model:>8.1}% {meas:>8.1}% |");
        }
        println!();
    }

    println!("\nFigure 4.2(b) — % local vs. refresh interval f");
    println!("(currency bound B = 10; one series per delay d = 1, 5, 8)\n");
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "f", "d=1 model", "measured", "d=5 model", "measured", "d=8 model", "measured"
    );
    let b = 10i64;
    for f in [1i64, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        print!("{f:>6} |");
        for d in [1i64, 5, 8] {
            let model = analytic(f as f64, d as f64, b as f64) * 100.0;
            let meas = measured_local_fraction(f, d, b, (f * 17 + d) as u64) * 100.0;
            print!(" {model:>8.1}% {meas:>8.1}% |");
        }
        println!();
    }

    println!(
        "\nBaselines: an always-local router would claim 100% but violate bounds \
         whenever B < observed staleness; an always-remote router sits at 0% and \
         pays the full back-end cost. The C&C-aware plan tracks the model."
    );

    // ------------------------------------------------ extension: part (c)
    println!("\nExtension (c) — heartbeat granularity");
    println!("(f = 20, d = 2, B = 12; the heartbeat timestamp is the guard's");
    println!(" staleness estimate, so a coarse beat makes it conservative:");
    println!(" measured % local approaches the model as hb → fine)\n");
    println!("{:>10} | {:>9} | {:>9}", "heartbeat", "model", "measured");
    let (f, d, b) = (20i64, 2i64, 12i64);
    let model = analytic(f as f64, d as f64, b as f64) * 100.0;
    for hb_secs in [10i64, 5, 4, 2, 1] {
        let meas = measured_with_heartbeat(f, d, b, hb_secs, hb_secs as u64 * 13) * 100.0;
        println!("{hb_secs:>9}s | {model:>8.1}% | {meas:>8.1}%");
    }
}

/// Like `measured_local_fraction` but with an explicit heartbeat interval:
/// the guard only ever sees heartbeat-aligned staleness estimates, so a
/// coarse beat systematically *understates* freshness and pushes queries
/// remote — conservative, never unsafe.
fn measured_with_heartbeat(f_secs: i64, d_secs: i64, b_secs: i64, hb_secs: i64, seed: u64) -> f64 {
    use rcc_mtcache::MTCache;
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE items (id INT, v INT, PRIMARY KEY (id))")
        .expect("ddl");
    for i in 0..10 {
        cache
            .execute(&format!("INSERT INTO items VALUES ({i}, {i})"))
            .expect("dml");
    }
    cache.analyze("items").expect("analyze");
    cache
        .create_region_with_heartbeat(
            "R",
            Duration::from_secs(f_secs.max(1)),
            Duration::from_secs(d_secs),
            Duration::from_secs(hb_secs.max(1)),
        )
        .expect("region");
    cache
        .execute("CREATE CACHED VIEW items_v REGION r AS SELECT id, v FROM items")
        .expect("view");
    cache
        .advance(Duration::from_secs(4 * f_secs.max(d_secs + 1)))
        .expect("warm");
    let mut rng = StdRng::seed_from_u64(seed);
    let sql = format!("SELECT v FROM items WHERE id = 1 CURRENCY BOUND {b_secs} SEC ON (items)");
    let mut local = 0usize;
    for _ in 0..SAMPLES {
        let jump = rng.gen_range(1..=(2 * f_secs.max(1) * 1000));
        cache.advance(Duration::from_millis(jump)).expect("advance");
        let r = cache.execute(&sql).expect("query");
        if !r.used_remote {
            local += 1;
        }
    }
    local as f64 / SAMPLES as f64
}
