//! `flow-audit`: sweep the generated C&C corpus through the currency
//! dataflow analysis and prove every guard-elision certificate sound,
//! statically and dynamically.
//!
//! ```text
//! cargo run -p rcc-bench --bin flow-audit -- [--queries N] [--seed S] [--scale F]
//! ```
//!
//! Three phases, all deterministic:
//!
//! * **Static sweep** — every corpus query is optimized under both
//!   pull-up modes; the analysis' elided plan must pass the independent
//!   certificate replay ([`rcc_verify::verify_elision`]) *and* still
//!   conform to its currency clause ([`rcc_verify::verify_plan`]). Two
//!   heartbeat-window probe queries (bounds in `(d+f, d+f+hb]`) are
//!   appended so envelope terms that the fixed corpus bounds skip are
//!   still exercised.
//! * **Mutation sweep** — each deliberate corruption in
//!   [`rcc_flow::Mutation::ALL`] is injected into the analysis; wherever
//!   the corrupted analysis changes the elided plan, the verifier must
//!   reject it, and every mutation must be observed and rejected at least
//!   once across the corpus.
//! * **Differential replay** — the corpus runs end-to-end on the paper
//!   rig with elision off and on; result wire bytes, remote usage, and
//!   warnings must be identical, at least one guard must actually be
//!   elided, and the runtime premise cross-check
//!   (`rcc_flow_interval_violations_total`) must read zero.

use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
use rcc_sql::ast::Statement;
use rcc_verify::{elision_ok, rig, verify_elision, verify_plan};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    queries: usize,
    seed: u64,
    scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: 160,
        seed: 7,
        scale: 0.01,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--queries" => {
                args.queries = grab("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--seed" => {
                args.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                args.scale = grab("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--help" | "-h" => {
                println!("usage: flow-audit [--queries N] [--seed S] [--scale F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("flow-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let (catalog, _master) = match rig::audit_catalog(args.scale, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flow-audit: failed to build audit catalog: {e}");
            return ExitCode::from(2);
        }
    };
    let max_custkey = catalog.stats("customer").row_count.max(1) as i64;
    let mut corpus = rcc_tpcd::currency_corpus(args.queries, args.seed, max_custkey);
    // Heartbeat-window probes: a bound in (d+f, d+f+hb] separates the
    // honest envelope from one whose heartbeat term was dropped, which the
    // corpus' coarse bound grid (2 s .. 1 h) can otherwise straddle.
    for (region, probe) in [
        (
            "CR1",
            "SELECT c_name FROM customer CURRENCY BOUND {B} MS ON (customer)",
        ),
        (
            "CR2",
            "SELECT o_totalprice FROM orders WHERE o_custkey = 1 \
             CURRENCY BOUND {B} MS ON (orders)",
        ),
    ] {
        if let Some(b) = rcc_verify::elision::heartbeat_probe_bound(&catalog, region) {
            corpus.push(probe.replace("{B}", &b.millis().to_string()));
        }
    }

    let params: HashMap<String, rcc_common::Value> = HashMap::new();
    let configs = [
        ("pullup=off", OptimizerConfig::default()),
        (
            "pullup=on",
            OptimizerConfig {
                pullup_switch_union: true,
                ..OptimizerConfig::default()
            },
        ),
    ];

    let mut failures = 0usize;
    let mut plans = 0usize;
    let mut unsound = 0usize;
    let mut elided_static = 0usize;
    let mut kept_static = 0usize;
    let mut rejected = [0usize; rcc_flow::Mutation::ALL.len()];

    for (qi, sql) in corpus.iter().enumerate() {
        let stmt = match rcc_sql::parser::parse_statement(sql) {
            Ok(Statement::Select(s)) => s,
            Ok(_) => {
                eprintln!("query {qi}: generator produced a non-SELECT statement");
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("query {qi}: parse error: {e}\n  {sql}");
                failures += 1;
                continue;
            }
        };
        let graph = match bind_select(&catalog, &stmt, &params) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("query {qi}: bind error: {e}\n  {sql}");
                failures += 1;
                continue;
            }
        };
        for (mode, config) in &configs {
            let optimized = match optimize(&catalog, &graph, config) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("query {qi} [{mode}]: optimize error: {e}\n  {sql}");
                    failures += 1;
                    continue;
                }
            };
            plans += 1;

            // Honest analysis: the elided plan must replay cleanly and
            // still conform to the clause.
            let flow = rcc_flow::analyze(&catalog, &optimized.plan);
            let honest = rcc_flow::elide(&optimized.plan, &flow);
            elided_static += honest.elided.len();
            kept_static += honest.kept;
            let obligations = verify_elision(&catalog, &optimized.plan, &flow, &honest.plan);
            if !elision_ok(&obligations) {
                unsound += 1;
                eprintln!("UNSOUND CERTIFICATE on query {qi} [{mode}]:\n  {sql}");
                for o in obligations.iter().filter(|o| !o.status.is_proved()) {
                    eprintln!("  {o}");
                }
            }
            // The *unelided* plan must conform to the clause — elided plans
            // are conformant only under the healthy-replication premise,
            // which is exactly what the certificate replay above proves.
            let report = verify_plan(&catalog, &graph.constraint, &optimized.plan);
            if !report.ok() {
                unsound += 1;
                eprintln!("OPTIMIZED PLAN DIVERGES on query {qi} [{mode}]:\n  {sql}");
                eprintln!("{}", report.render());
            }

            // Mutation sweep: wherever a corrupted analysis differs from
            // the honest one — in the transformed plan or in the claimed
            // certificates — the verifier must catch it.
            let honest_shape = format!("{:?}", honest.plan);
            let honest_claims = format!("{flow:?}");
            for (mi, m) in rcc_flow::Mutation::ALL.iter().enumerate() {
                let mflow = rcc_flow::analyze_mutated(&catalog, &optimized.plan, Some(*m));
                let melided = rcc_flow::elide(&optimized.plan, &mflow);
                let mutated_shape = format!("{:?}", melided.plan);
                if mutated_shape == honest_shape && format!("{mflow:?}") == honest_claims {
                    continue; // mutation unobservable on this plan
                }
                let obs = verify_elision(&catalog, &optimized.plan, &mflow, &melided.plan);
                if !elision_ok(&obs) {
                    rejected[mi] += 1;
                } else if mutated_shape != honest_shape {
                    // The verifier accepted a transform the honest analysis
                    // would not have produced — a genuine soundness escape.
                    failures += 1;
                    eprintln!(
                        "MUTATION ESCAPE: {} accepted on query {qi} [{mode}]:\n  {sql}",
                        m.label()
                    );
                }
                // Otherwise the corruption only perturbed advisory
                // bookkeeping (e.g. an always-pass margin) while the applied
                // transform and every verified claim stayed honest — benign.
            }
        }
    }
    for (mi, m) in rcc_flow::Mutation::ALL.iter().enumerate() {
        if rejected[mi] == 0 {
            failures += 1;
            eprintln!(
                "mutation {} was never observed and rejected — the corpus no longer \
                 exercises it",
                m.label()
            );
        }
    }

    // Differential replay on the paper rig: elision on/off must be
    // byte-identical on the wire encoding, and the runtime premise
    // cross-check must stay silent.
    let cache = match paper_setup(args.scale, args.seed).and_then(|c| {
        warm_up(&c)?;
        Ok(c)
    }) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flow-audit: failed to build paper rig: {e}");
            return ExitCode::from(2);
        }
    };
    let dyn_max = cache.catalog().stats("customer").row_count.max(1) as i64;
    let dyn_corpus = rcc_tpcd::currency_corpus(args.queries, args.seed, dyn_max);
    let mut replayed = 0usize;
    let mut mismatches = 0usize;
    for pullup in [false, true] {
        cache.set_pullup_switch_union(pullup);
        for (qi, sql) in dyn_corpus.iter().enumerate() {
            cache.set_elide_guards(false);
            let off = cache.execute(sql);
            cache.set_elide_guards(true);
            let on = cache.execute(sql);
            replayed += 1;
            match (off, on) {
                (Ok(off), Ok(on)) => {
                    let off_bytes = rcc_executor::wire::encode_result(&off.schema, &off.rows);
                    let on_bytes = rcc_executor::wire::encode_result(&on.schema, &on.rows);
                    if off_bytes != on_bytes
                        || off.used_remote != on.used_remote
                        || off.warnings != on.warnings
                    {
                        mismatches += 1;
                        eprintln!(
                            "DIFFERENTIAL MISMATCH on query {qi} [pullup={pullup}]:\n  {sql}\n  \
                             bytes {}≠{} remote {}≠{} warnings {:?}≠{:?}",
                            off_bytes.len(),
                            on_bytes.len(),
                            off.used_remote,
                            on.used_remote,
                            off.warnings,
                            on.warnings
                        );
                    }
                }
                (off, on) => {
                    mismatches += 1;
                    eprintln!(
                        "EXECUTION ERROR on query {qi} [pullup={pullup}]:\n  {sql}\n  \
                         off: {off:?}\n  on: {on:?}"
                    );
                }
            }
        }
    }
    let snap = cache.metrics().snapshot();
    let violations = snap.counter("rcc_flow_interval_violations_total");
    let elided_dynamic = snap.counter("rcc_flow_guards_elided_total");
    if violations != 0 {
        failures += 1;
        eprintln!("runtime premise cross-check fired {violations} time(s) — envelope broken");
    }
    if elided_dynamic == 0 {
        failures += 1;
        eprintln!("no guard was elided during replay — the sweep proves nothing");
    }

    println!(
        "flow-audit: {} queries, {} plans analyzed, {} guards elided / {} kept \
         (static), {} certificates unsound, {} mutation rejections {:?}, \
         {} replays, {} mismatches, {} guards elided (dynamic), {} interval \
         violations",
        corpus.len(),
        plans,
        elided_static,
        kept_static,
        unsound,
        rejected.iter().sum::<usize>(),
        rejected,
        replayed,
        mismatches,
        elided_dynamic,
        violations
    );
    if failures == 0 && unsound == 0 && mismatches == 0 {
        println!(
            "flow-audit: every elision certificate is sound, every mutation is \
             rejected, and elided plans are byte-identical on the wire"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
