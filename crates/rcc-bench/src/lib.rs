#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Shared harness for the experiment report binaries and Criterion
//! benches. Each binary regenerates one table or figure of the paper's
//! Section 4; see EXPERIMENTS.md at the repository root for the recorded
//! paper-vs-measured comparison.

use rcc_common::{Duration, Result};
use rcc_mtcache::MTCache;

/// Print the Table 4.1 currency-region configuration header every report
/// starts with.
pub fn print_region_config(cache: &MTCache) {
    println!("Currency region settings (paper Table 4.1):");
    println!("{:<6} {:>10} {:>8}   views", "cid", "interval", "delay");
    for region in cache.catalog().regions() {
        let views: Vec<String> = cache
            .catalog()
            .all_views()
            .iter()
            .filter(|v| v.region == region.id)
            .map(|v| v.name.clone())
            .collect();
        println!(
            "{:<6} {:>9}s {:>7}s   {}",
            region.name,
            region.update_interval.millis() / 1000,
            region.update_delay.millis() / 1000,
            views.join(", ")
        );
    }
    println!();
}

/// Build a minimal single-table rig with one currency region configured
/// with the given propagation interval `f` and delay `d` (in seconds) —
/// the substrate for the Fig. 4.2 workload-shift experiment.
pub fn single_region_rig(f_secs: i64, d_secs: i64, rows: i64) -> Result<MTCache> {
    let cache = MTCache::new();
    cache.execute("CREATE TABLE items (id INT, v INT, PRIMARY KEY (id))")?;
    for i in 0..rows {
        cache.execute(&format!("INSERT INTO items VALUES ({i}, {i})"))?;
    }
    cache.analyze("items")?;
    cache.create_region(
        "R",
        Duration::from_secs(f_secs),
        Duration::from_secs(d_secs),
    )?;
    cache.execute("CREATE CACHED VIEW items_v REGION r AS SELECT id, v FROM items")?;
    // warm up for several propagation cycles so the steady-state cycle of
    // Fig. 3.2 is established
    cache.advance(Duration::from_secs(4 * f_secs.max(d_secs + 1)))?;
    Ok(cache)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Format a `std::time::Duration` as fractional milliseconds.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_builds() {
        let cache = single_region_rig(10, 2, 20).unwrap();
        let r = cache
            .execute("SELECT v FROM items WHERE id = 3 CURRENCY BOUND 30 SEC ON (items)")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(!r.used_remote);
    }

    #[test]
    fn mean_and_ms() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((ms(std::time::Duration::from_micros(1500)) - 1.5).abs() < 1e-9);
    }
}
