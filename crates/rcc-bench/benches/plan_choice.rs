//! Criterion: end-to-end optimization latency for the Table 4.3 query
//! variants — how much the C&C machinery (normalization, view matching,
//! property checking, SwitchUnion costing) adds to planning.
// `criterion_group!` expands to undocumented harness glue.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use rcc_mtcache::paper::{paper_setup_sf1_stats, warm_up};
use std::collections::HashMap;

fn bench(c: &mut Criterion) {
    let cache = paper_setup_sf1_stats(0.005, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    let no_params = HashMap::new();

    let variants = [
        (
            "q1_selective_no_clause",
            "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
          WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 10"
                .to_string(),
        ),
        (
            "q3_consistency_class",
            "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
          WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 10 \
          CURRENCY BOUND 10 SEC ON (c, o)"
                .to_string(),
        ),
        (
            "q5_all_local_guarded",
            "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
          WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 750 \
          CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"
                .to_string(),
        ),
        (
            "q7_single_table_guarded",
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
          WHERE c_acctbal BETWEEN 0.0 AND 1400.0 \
          CURRENCY BOUND 10 SEC ON (customer)"
                .to_string(),
        ),
    ];

    let mut group = c.benchmark_group("optimize");
    for (name, sql) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                cache
                    .explain(std::hint::black_box(sql), &no_params)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
