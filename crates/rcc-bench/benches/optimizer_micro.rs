//! Criterion: the front-end micro-costs — lexing+parsing the currency
//! clause, binding/decorrelation, and constraint normalization.
// `criterion_group!` expands to undocumented harness glue.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use rcc_common::Duration;
use rcc_mtcache::paper::{paper_setup_sf1_stats, warm_up};
use rcc_optimizer::{bind_select, CCConstraint};
use rcc_sql::{parse_statement, Statement};
use std::collections::{BTreeSet, HashMap};

const SQL: &str = "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice \
                   FROM customer c, orders o \
                   WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 100 \
                   CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)";

fn bench(c: &mut Criterion) {
    let cache = paper_setup_sf1_stats(0.002, 42).expect("rig");
    warm_up(&cache).expect("warm-up");

    c.bench_function("parse_with_currency_clause", |b| {
        b.iter(|| parse_statement(std::hint::black_box(SQL)).unwrap())
    });

    let stmt = match parse_statement(SQL).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let no_params = HashMap::new();
    c.bench_function("bind_and_normalize", |b| {
        b.iter(|| bind_select(cache.catalog(), std::hint::black_box(&stmt), &no_params).unwrap())
    });

    // plan-cache hit vs. full re-optimization: the payoff of the paper's
    // "re-optimization only if a view's consistency properties change"
    c.bench_function("execute_with_plan_cache_hit", |b| {
        let q = "SELECT c_custkey FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";
        cache.execute(q).unwrap(); // prime
        b.iter(|| cache.execute(std::hint::black_box(q)).unwrap())
    });
    c.bench_function("execute_with_forced_reoptimize", |b| {
        let q = "SELECT c_custkey FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";
        b.iter(|| {
            cache.plan_cache().invalidate();
            cache.execute(std::hint::black_box(q)).unwrap()
        })
    });

    c.bench_function("normalize_constraint_8_classes", |b| {
        #[allow(clippy::type_complexity)]
        let raw: Vec<(Duration, BTreeSet<u32>, Vec<(String, String)>)> = (0..8u32)
            .map(|i| {
                (
                    Duration::from_secs((i + 1) as i64),
                    [i, (i + 1) % 8].into_iter().collect(),
                    vec![],
                )
            })
            .collect();
        b.iter(|| CCConstraint::normalize(std::hint::black_box(raw.clone()), 0..8))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
