//! Criterion: substrate micro-benches — master transaction commit rate,
//! distribution-agent propagation throughput, and wire-format codec speed.
// `criterion_group!` expands to undocumented harness glue.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcc_common::{Clock, Duration, Value};
use rcc_mtcache::MTCache;
use rcc_tpcd::UpdateWorkload;

fn bench(c: &mut Criterion) {
    // transaction commit rate at the master
    {
        let cache = MTCache::new();
        let cm = rcc_tpcd::customer_meta(cache.catalog().next_table_id());
        cache.register_table(cm).unwrap();
        let gen = rcc_tpcd::TpcdGenerator::new(0.01, 42);
        cache.bulk_load("customer", gen.customers()).unwrap();
        let mut wl = UpdateWorkload::new(gen.customer_count(), 7);
        let mut group = c.benchmark_group("master_commit");
        group.throughput(Throughput::Elements(1));
        group.bench_function("single_row_update_txn", |b| {
            b.iter(|| {
                let (table, change) = wl.customer_update();
                cache
                    .master()
                    .execute_txn(vec![rcc_backend::TableChange::new(table, change)])
                    .unwrap()
            })
        });
        group.finish();
    }

    // agent propagation: apply a 1 000-txn backlog through one cycle
    {
        let mut group = c.benchmark_group("agent_propagation");
        group.throughput(Throughput::Elements(1000));
        group.sample_size(20);
        group.bench_function("apply_1000_txn_backlog", |b| {
            b.iter_with_setup(
                || {
                    let cache = MTCache::new();
                    let cm = rcc_tpcd::customer_meta(cache.catalog().next_table_id());
                    cache.register_table(cm).unwrap();
                    let gen = rcc_tpcd::TpcdGenerator::new(0.01, 42);
                    cache.bulk_load("customer", gen.customers()).unwrap();
                    cache.analyze("customer").unwrap();
                    cache
                        .create_region("R", Duration::from_secs(1000), Duration::from_secs(1))
                        .unwrap();
                    cache
                        .execute(
                            "CREATE CACHED VIEW c_v REGION r AS \
                             SELECT c_custkey, c_name, c_nationkey, c_acctbal FROM customer",
                        )
                        .unwrap();
                    let mut wl = UpdateWorkload::new(gen.customer_count(), 3);
                    for _ in 0..1000 {
                        let (table, change) = wl.customer_update();
                        cache
                            .master()
                            .execute_txn(vec![rcc_backend::TableChange::new(table, change)])
                            .unwrap();
                    }
                    cache
                },
                |cache| {
                    // one giant propagation cycle applies the whole backlog
                    cache.advance(Duration::from_secs(1000)).unwrap();
                    assert!(cache.clock().now().millis() > 0);
                },
            )
        });
        group.finish();
    }

    // wire codec throughput
    {
        let gen = rcc_tpcd::TpcdGenerator::new(0.01, 42);
        let rows = gen.customers();
        let schema = rcc_tpcd::customer_meta(rcc_common::TableId(1))
            .schema
            .clone();
        let payload = rcc_executor::wire::encode_result(&schema, &rows);
        let mut group = c.benchmark_group("wire_codec");
        group.throughput(Throughput::Bytes(payload.len() as u64));
        group.bench_function("encode_1500_rows", |b| {
            b.iter(|| rcc_executor::wire::encode_result(&schema, std::hint::black_box(&rows)))
        });
        group.bench_function("decode_1500_rows", |b| {
            b.iter(|| {
                rcc_executor::wire::decode_result(std::hint::black_box(payload.clone())).unwrap()
            })
        });
        group.finish();
        let _ = Value::Int(0);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
