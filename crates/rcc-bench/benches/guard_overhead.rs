//! Criterion: execution time with vs. without currency guards (the
//! Table 4.4 comparison as a statistically rigorous microbenchmark).
// `criterion_group!` expands to undocumented harness glue.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use rcc_executor::{execute_plan, ExecContext, RemoteService};
use rcc_mtcache::paper::{paper_setup, warm_up};
use std::collections::HashMap;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let cache = paper_setup(0.02, 42).expect("rig");
    warm_up(&cache).expect("warm-up");
    let ctx = ExecContext::new(
        Arc::clone(cache.cache_storage()),
        Some(Arc::clone(cache.backend()) as Arc<dyn RemoteService>),
        Arc::new(cache.clock().clone()),
    );

    let queries = [
        (
            "q1_point",
            "SELECT c_custkey, c_name, c_acctbal FROM customer WHERE c_custkey = 77 \
          CURRENCY BOUND 60 SEC ON (customer)",
        ),
        (
            "q2_nl_join",
            "SELECT c.c_custkey, o.o_orderkey, o.o_totalprice FROM customer c, orders o \
          WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 77 \
          CURRENCY BOUND 60 SEC ON (c), 60 SEC ON (o)",
        ),
        (
            "q3_scan",
            "SELECT c_custkey, c_name, c_acctbal FROM customer \
          WHERE c_acctbal BETWEEN 0.0 AND 440.0 CURRENCY BOUND 60 SEC ON (customer)",
        ),
    ];

    for (name, sql) in &queries {
        let opt = cache.explain(sql, &HashMap::new()).expect(name);
        let guarded = opt.plan.clone();
        let plain = opt.plan.strip_guards(true);
        let mut group = c.benchmark_group(name);
        group.bench_function("local_no_guard", |b| {
            b.iter(|| execute_plan(std::hint::black_box(&plain), &ctx).unwrap())
        });
        group.bench_function("local_guarded", |b| {
            b.iter(|| execute_plan(std::hint::black_box(&guarded), &ctx).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
