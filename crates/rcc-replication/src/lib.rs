#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Transactional-replication substrate (paper Sec. 3.1).
//!
//! SQL Server's transactional replication — which the paper's prototype
//! relies on — propagates committed transactions to subscribing caches *in
//! commit order*, one transaction at a time, via **distribution agents**
//! that wake up at a fixed interval. Everything the paper's consistency
//! machinery assumes follows from that discipline:
//!
//! * all cached views updated by the same agent are mutually consistent and
//!   always reflect a committed snapshot ⇒ they form a *currency region*;
//! * the replicated heartbeat row bounds a region's staleness.
//!
//! [`DistributionAgent`] reproduces the agent; [`ReplicationRuntime`] is a
//! discrete-event driver that fires heartbeats and propagation events in
//! timestamp order on the shared [`rcc_common::SimClock`].

pub mod agent;
pub mod runtime;

pub use agent::DistributionAgent;
pub use runtime::ReplicationRuntime;
