//! Discrete-event replication runtime.

use crate::agent::DistributionAgent;
use parking_lot::Mutex;
use rcc_backend::MasterDb;
use rcc_common::{Clock, Duration, Result, SimClock, Timestamp};
use rcc_obs::MetricsRegistry;
use std::sync::Arc;

/// Scheduled state for one agent/region pair.
#[derive(Debug)]
struct RegionSchedule {
    agent: DistributionAgent,
    next_beat: Timestamp,
    next_propagation: Timestamp,
}

/// Drives heartbeats and agent propagation cycles in timestamp order on a
/// shared [`SimClock`].
///
/// The paper's analysis (Sec. 3.2.4) assumes "updates are propagated
/// periodically, the propagation interval is a multiple of the heartbeat
/// interval, their timing is aligned" — this runtime realizes exactly that
/// alignment: region events start at phase 0 and recur at their fixed
/// intervals; `advance_to` fires everything due, in time order, before
/// moving the clock.
#[derive(Debug)]
pub struct ReplicationRuntime {
    clock: SimClock,
    master: Arc<MasterDb>,
    regions: Mutex<Vec<RegionSchedule>>,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl ReplicationRuntime {
    /// Create a runtime over `master` using `clock`.
    pub fn new(clock: SimClock, master: Arc<MasterDb>) -> ReplicationRuntime {
        ReplicationRuntime {
            clock,
            master,
            regions: Mutex::new(Vec::new()),
            metrics: Mutex::new(None),
        }
    }

    /// Report into `registry`: a per-region replication-lag gauge
    /// (`rcc_replication_lag_seconds{region=...}`, updated after every
    /// `advance_to`) and a per-region applied-transaction counter
    /// (`rcc_replication_txns_applied_total{region=...}`).
    pub fn set_metrics(&self, registry: Arc<MetricsRegistry>) {
        registry.describe(
            "rcc_replication_lag_seconds",
            "Staleness of a region's local heartbeat: now minus the last delivered beat.",
        );
        registry.describe(
            "rcc_replication_txns_applied_total",
            "Master log transactions a region's distribution agent has applied at the cache.",
        );
        *self.metrics.lock() = Some(registry);
        self.publish_lag();
    }

    /// Refresh every region's lag gauge (no-op without a registry).
    fn publish_lag(&self) {
        let metrics = self.metrics.lock();
        let Some(registry) = metrics.as_ref() else {
            return;
        };
        let now = self.clock.now();
        for r in self.regions.lock().iter() {
            let name = r.agent.region().name.clone();
            if let Some(hb) = r.agent.local_heartbeat() {
                registry
                    .gauge("rcc_replication_lag_seconds", &[("region", &name)])
                    .set(now.since(hb).as_secs_f64());
            }
        }
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Register an agent; its heartbeat and propagation cycles start at the
    /// current simulated time (an immediate beat + propagation fire first,
    /// establishing a fresh baseline).
    pub fn add_agent(&self, agent: DistributionAgent) {
        let now = self.clock.now();
        self.regions.lock().push(RegionSchedule {
            agent,
            next_beat: now,
            next_propagation: now,
        });
    }

    /// Run a closure with mutable access to the agent for `region_name`
    /// (for failure injection). Returns false if no such region.
    pub fn with_agent<F: FnOnce(&mut DistributionAgent)>(&self, region_name: &str, f: F) -> bool {
        let mut regions = self.regions.lock();
        for r in regions.iter_mut() {
            if r.agent.region().name.eq_ignore_ascii_case(region_name) {
                f(&mut r.agent);
                return true;
            }
        }
        false
    }

    /// Advance simulated time to `target`, firing every due heartbeat and
    /// propagation event in timestamp order along the way. Heartbeats fire
    /// before propagation at the same instant, matching the paper's
    /// "aligned timing" assumption (the beat is committed at the master
    /// first, then — after the delivery delay — reaches the cache).
    pub fn advance_to(&self, target: Timestamp) -> Result<()> {
        assert!(target >= self.clock.now(), "cannot advance into the past");
        {
            let mut regions = self.regions.lock();
            self.advance_regions(&mut regions, target)?;
        }
        self.clock.set(target);
        self.publish_lag();
        Ok(())
    }

    fn advance_regions(&self, regions: &mut [RegionSchedule], target: Timestamp) -> Result<()> {
        loop {
            // Earliest pending event at or before `target`.
            let mut next: Option<(Timestamp, usize, bool)> = None; // (time, idx, is_beat)
            for (i, r) in regions.iter().enumerate() {
                for (t, is_beat) in [(r.next_beat, true), (r.next_propagation, false)] {
                    if t <= target {
                        let better = match next {
                            None => true,
                            // beats win ties so a same-instant propagation
                            // sees the freshest committed heartbeat
                            Some((bt, _, b_is_beat)) => {
                                t < bt || (t == bt && is_beat && !b_is_beat)
                            }
                        };
                        if better {
                            next = Some((t, i, is_beat));
                        }
                    }
                }
            }
            let Some((t, idx, is_beat)) = next else { break };
            self.clock.set(t);
            let r = &mut regions[idx];
            if is_beat {
                self.master.beat(r.agent.region().id)?;
                r.next_beat = t.plus(r.agent.region().heartbeat_interval);
            } else {
                let applied = r.agent.propagate(t)?;
                r.next_propagation = t.plus(r.agent.region().update_interval);
                if applied > 0 {
                    if let Some(registry) = self.metrics.lock().as_ref() {
                        registry
                            .counter(
                                "rcc_replication_txns_applied_total",
                                &[("region", &r.agent.region().name)],
                            )
                            .add(applied as u64);
                    }
                    // Persist the agent's new position so a restarted
                    // back-end restores per-region currency accounting
                    // (no-op when the master runs in-memory).
                    self.master.persist_watermark(
                        &r.agent.region().name,
                        r.agent.cursor() as u64,
                        r.agent.local_heartbeat().map_or(-1, |t| t.millis()),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Advance by a duration.
    pub fn advance_by(&self, d: Duration) -> Result<()> {
        self.advance_to(self.clock.now().plus(d))
    }

    /// Current local heartbeat timestamp for a region (None before the
    /// first one lands).
    pub fn local_heartbeat(&self, region_name: &str) -> Option<Timestamp> {
        let regions = self.regions.lock();
        regions
            .iter()
            .find(|r| r.agent.region().name.eq_ignore_ascii_case(region_name))
            .and_then(|r| r.agent.local_heartbeat())
    }

    /// Every agent's `(region, cursor, local heartbeat)` — the watermarks a
    /// checkpoint persists so a restart can resume currency accounting.
    pub fn watermarks(&self) -> Vec<(String, usize, Option<Timestamp>)> {
        let regions = self.regions.lock();
        regions
            .iter()
            .map(|r| {
                (
                    r.agent.region().name.clone(),
                    r.agent.cursor(),
                    r.agent.local_heartbeat(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_backend::TableChange;
    use rcc_catalog::{CachedViewDef, Catalog, CurrencyRegion, TableMeta};
    use rcc_common::{AgentId, Column, DataType, RegionId, Row, Schema, TableId, Value, ViewId};
    use rcc_storage::{RowChange, StorageEngine};

    struct Fixture {
        rt: ReplicationRuntime,
        master: Arc<MasterDb>,
        cache: Arc<StorageEngine>,
    }

    /// Region: interval 10s, delay 2s, heartbeat 2s (aligned).
    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(catalog, Arc::new(clock.clone())));
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let meta = TableMeta::new(TableId(1), "t", schema.clone(), vec!["id".into()]).unwrap();
        master.create_table(&meta).unwrap();
        master
            .bulk_load("t", vec![Row::new(vec![Value::Int(1), Value::Int(0)])])
            .unwrap();

        let region = Arc::new(CurrencyRegion::new(
            RegionId(1),
            "CR1",
            Duration::from_secs(10),
            Duration::from_secs(2),
        ));
        let cache = Arc::new(StorageEngine::new());
        let mut agent =
            DistributionAgent::new(AgentId(1), region, master.clone(), cache.clone()).unwrap();
        let view = Arc::new(CachedViewDef {
            id: ViewId(1),
            name: "t_v".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "t".into(),
            columns: vec!["id".into(), "v".into()],
            predicate: None,
            schema: schema.with_qualifier("t_v"),
            key_ordinals: vec![0],
            local_indexes: vec![],
        });
        agent.subscribe(view, &meta).unwrap();

        let rt = ReplicationRuntime::new(clock, master.clone());
        rt.add_agent(agent);
        Fixture { rt, master, cache }
    }

    fn set_v(master: &MasterDb, id: i64, v: i64) {
        master
            .execute_txn(vec![TableChange::new(
                "t",
                RowChange::Update {
                    key: vec![Value::Int(id)],
                    row: Row::new(vec![Value::Int(id), Value::Int(v)]),
                },
            )])
            .unwrap();
    }

    #[test]
    fn heartbeats_arrive_with_delay() {
        let f = fixture();
        // beat at t=0 commits hb(0); propagation at t=0 sees as_of=-2s → nothing.
        f.rt.advance_to(Timestamp(0)).unwrap();
        assert_eq!(f.rt.local_heartbeat("CR1"), None);
        // next propagation at t=10s: as_of=8s, beats at 0,2,...,8 all
        // delivered; the freshest delivered beat is 8s.
        f.rt.advance_to(Timestamp(10_000)).unwrap();
        assert_eq!(f.rt.local_heartbeat("CR1"), Some(Timestamp(8_000)));
    }

    #[test]
    fn staleness_cycles_between_d_and_d_plus_f() {
        let f = fixture();
        f.rt.advance_to(Timestamp(60_000)).unwrap();
        // Most recent propagation at t=60s used as_of=58s; best beat ≤58s is 58s.
        let hb = f.rt.local_heartbeat("CR1").unwrap();
        assert_eq!(hb, Timestamp(58_000));
        // staleness bound right after propagation = now - hb = 2s = d
        assert_eq!(f.rt.clock().now().since(hb), Duration::from_secs(2));
        // just before the next propagation, staleness approaches d+f
        f.rt.advance_to(Timestamp(69_999)).unwrap();
        let hb = f.rt.local_heartbeat("CR1").unwrap();
        let staleness = f.rt.clock().now().since(hb);
        assert!(staleness > Duration::from_secs(11));
        assert!(staleness <= Duration::from_secs(12));
    }

    #[test]
    fn data_changes_flow_on_schedule() {
        let f = fixture();
        f.rt.advance_to(Timestamp(5_000)).unwrap();
        set_v(&f.master, 1, 42); // commit at t=5s
                                 // propagation at t=10s has as_of=8s ≥ 5s → applied
        f.rt.advance_to(Timestamp(10_000)).unwrap();
        let v = f.cache.table("t_v").unwrap();
        assert_eq!(
            v.snapshot().get(&[Value::Int(1)]).unwrap().get(1),
            &Value::Int(42)
        );
    }

    #[test]
    fn change_close_to_propagation_waits_a_cycle() {
        let f = fixture();
        f.rt.advance_to(Timestamp(9_000)).unwrap();
        set_v(&f.master, 1, 7); // t=9s, as_of at t=10s is 8s < 9s
        f.rt.advance_to(Timestamp(10_000)).unwrap();
        let v = f.cache.table("t_v").unwrap();
        assert_eq!(
            v.snapshot().get(&[Value::Int(1)]).unwrap().get(1),
            &Value::Int(0)
        );
        f.rt.advance_to(Timestamp(20_000)).unwrap();
        assert_eq!(
            v.snapshot().get(&[Value::Int(1)]).unwrap().get(1),
            &Value::Int(7)
        );
    }

    #[test]
    fn stalled_agent_freezes_heartbeat() {
        let f = fixture();
        f.rt.advance_to(Timestamp(20_000)).unwrap();
        let before = f.rt.local_heartbeat("CR1").unwrap();
        assert!(f.rt.with_agent("CR1", |a| a.set_stalled(true)));
        f.rt.advance_to(Timestamp(60_000)).unwrap();
        assert_eq!(
            f.rt.local_heartbeat("CR1").unwrap(),
            before,
            "heartbeat frozen"
        );
        assert!(f.rt.with_agent("cr1", |a| a.set_stalled(false)));
        f.rt.advance_to(Timestamp(70_000)).unwrap();
        assert!(f.rt.local_heartbeat("CR1").unwrap() > before, "recovered");
        assert!(!f.rt.with_agent("nope", |_| {}));
    }

    #[test]
    fn metrics_track_lag_and_applied_txns() {
        let f = fixture();
        let registry = Arc::new(MetricsRegistry::new());
        f.rt.set_metrics(Arc::clone(&registry));
        f.rt.advance_to(Timestamp(5_000)).unwrap();
        set_v(&f.master, 1, 42); // applied by the t=10s propagation
        f.rt.advance_to(Timestamp(60_000)).unwrap();
        let snap = registry.snapshot();
        assert!(snap.counter("rcc_replication_txns_applied_total{region=\"CR1\"}") >= 1);
        // last propagation at t=60s delivered the 58s beat → lag 2s
        assert_eq!(
            snap.gauge("rcc_replication_lag_seconds{region=\"CR1\"}"),
            Some(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "cannot advance into the past")]
    fn advancing_backwards_panics() {
        let f = fixture();
        f.rt.advance_to(Timestamp(10_000)).unwrap();
        f.rt.advance_to(Timestamp(5_000)).unwrap();
    }
}

#[cfg(test)]
mod multi_region_tests {
    use super::*;
    use crate::agent::DistributionAgent;
    use rcc_backend::MasterDb;
    use rcc_catalog::{CachedViewDef, Catalog, CurrencyRegion, TableMeta};
    use rcc_common::{AgentId, Column, DataType, RegionId, Row, Schema, TableId, Value, ViewId};
    use rcc_storage::StorageEngine;

    /// Two regions with co-prime intervals over one master: each keeps its
    /// own heartbeat cadence, and neither starves the other.
    #[test]
    fn two_regions_progress_independently() {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(catalog, Arc::new(clock.clone())));
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let meta = TableMeta::new(TableId(1), "t", schema.clone(), vec!["id".into()]).unwrap();
        master.create_table(&meta).unwrap();
        master
            .bulk_load("t", vec![Row::new(vec![Value::Int(1), Value::Int(0)])])
            .unwrap();
        let cache = Arc::new(StorageEngine::new());
        let rt = ReplicationRuntime::new(clock.clone(), master.clone());
        for (i, (name, f, d)) in [("A", 7i64, 1i64), ("B", 11, 3)].iter().enumerate() {
            let mut region = CurrencyRegion::new(
                RegionId(i as u32 + 1),
                *name,
                Duration::from_secs(*f),
                Duration::from_secs(*d),
            );
            region.heartbeat_interval = Duration::from_secs(1);
            let region = Arc::new(region);
            let mut agent = DistributionAgent::new(
                AgentId(i as u32 + 1),
                region,
                master.clone(),
                cache.clone(),
            )
            .unwrap();
            let view = Arc::new(CachedViewDef {
                id: ViewId(i as u32 + 1),
                name: format!("t_{name}"),
                region: RegionId(i as u32 + 1),
                base_table: TableId(1),
                base_table_name: "t".into(),
                columns: vec!["id".into(), "v".into()],
                predicate: None,
                schema: schema.clone().with_qualifier(&format!("t_{name}")),
                key_ordinals: vec![0],
                local_indexes: vec![],
            });
            agent.subscribe(view, &meta).unwrap();
            rt.add_agent(agent);
        }
        rt.advance_to(Timestamp(100_000)).unwrap();
        // last propagation times: A at 98s (14×7) sees beats ≤97s → 97s;
        // B at 99s (9×11) sees beats ≤96s → 96s
        assert_eq!(rt.local_heartbeat("A"), Some(Timestamp(97_000)));
        assert_eq!(rt.local_heartbeat("B"), Some(Timestamp(96_000)));
        // both views received the initial snapshot
        assert_eq!(cache.table("t_A").unwrap().snapshot().row_count(), 1);
        assert_eq!(cache.table("t_B").unwrap().snapshot().row_count(), 1);
    }
}
