//! Distribution agents.

use rcc_backend::heartbeat::heartbeat_schema;
use rcc_backend::{MasterDb, HEARTBEAT_TABLE};
use rcc_catalog::{CachedViewDef, CurrencyRegion, TableMeta};
use rcc_common::{AgentId, Error, Result, Row, Timestamp, Value};
use rcc_storage::{RowChange, StorageEngine, Table};
use std::sync::Arc;

/// One replication subscription: a cached view fed from a master table.
#[derive(Debug, Clone)]
struct Subscription {
    view: Arc<CachedViewDef>,
    /// Ordinals of the view's columns within the *base table* schema.
    base_ordinals: Vec<usize>,
    /// Ordinal of the predicate column within the base table schema.
    predicate_base_ordinal: Option<usize>,
    /// Ordinals of the base table's clustered key within the base schema —
    /// used to map a base-table delete key onto the view's key.
    base_key_ordinals: Vec<usize>,
}

/// A distribution agent: "a process that wakes up regularly and checks for
/// work to do. ... The agent applies updates to its target views one
/// transaction at a time, in commit order" (Sec. 3.1).
///
/// One agent serves exactly one currency region; every view it maintains is
/// therefore mutually consistent with the others at all times. The agent
/// also replicates the region's heartbeat row into the cache's local
/// heartbeat table.
#[derive(Debug)]
pub struct DistributionAgent {
    id: AgentId,
    region: Arc<CurrencyRegion>,
    master: Arc<MasterDb>,
    cache_storage: Arc<StorageEngine>,
    subscriptions: Vec<Subscription>,
    /// Position in the master's replication log up to which this agent has
    /// applied transactions.
    cursor: usize,
    /// When the agent last ran a propagation cycle.
    last_propagation: Option<Timestamp>,
    /// When true, the agent ignores propagation events — the failure
    /// injection hook for "stalled agent" experiments.
    stalled: bool,
}

impl DistributionAgent {
    /// Create an agent for `region`, targeting `cache_storage`. Creates the
    /// region's local heartbeat table (empty until the first propagation —
    /// an empty heartbeat table means the currency guard fails and traffic
    /// goes remote, which is the conservative direction).
    pub fn new(
        id: AgentId,
        region: Arc<CurrencyRegion>,
        master: Arc<MasterDb>,
        cache_storage: Arc<StorageEngine>,
    ) -> Result<DistributionAgent> {
        let hb_name = region.heartbeat_table_name();
        if !cache_storage.contains(&hb_name) {
            cache_storage.create_table(Table::new(hb_name, heartbeat_schema(), vec![0]))?;
        }
        Ok(DistributionAgent {
            id,
            region,
            master,
            cache_storage,
            subscriptions: Vec::new(),
            cursor: 0,
            last_propagation: None,
            stalled: false,
        })
    }

    /// Agent id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// The currency region this agent maintains.
    pub fn region(&self) -> &Arc<CurrencyRegion> {
        &self.region
    }

    /// Replication-log position.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Stall or un-stall the agent (failure injection).
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Is the agent stalled?
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Subscribe a cached view: creates the view's table at the cache,
    /// populates it from a consistent master snapshot ("when a view is
    /// created, a matching replication subscription is automatically
    /// created and the view is populated" — Sec. 3), and registers the
    /// subscription for future propagation.
    pub fn subscribe(&mut self, view: Arc<CachedViewDef>, base: &TableMeta) -> Result<()> {
        if view.region != self.region.id {
            return Err(Error::Config(format!(
                "view {} belongs to region {}, agent serves {}",
                view.name, view.region, self.region.id
            )));
        }
        let base_ordinals: Vec<usize> = view
            .columns
            .iter()
            .map(|c| base.schema.resolve(None, c))
            .collect::<Result<_>>()?;
        let predicate_base_ordinal = match &view.predicate {
            Some(p) => Some(base.schema.resolve(None, &p.column)?),
            None => None,
        };
        let base_key_ordinals = base.key_ordinals();
        // The view must retain the base key so deletes can be applied.
        for key_col in &base.key {
            if !view.covers_column(key_col) {
                return Err(Error::Config(format!(
                    "view {} must retain base key column {key_col}",
                    view.name
                )));
            }
        }

        // Materialize the view's table at the cache.
        let mut table = Table::new(
            view.name.clone(),
            view.schema.clone(),
            view.key_ordinals.clone(),
        );
        for (ix_name, lead_col) in &view.local_indexes {
            let ord = view
                .ordinal_of(lead_col)
                .ok_or_else(|| Error::Config(format!("index column {lead_col} not in view")))?;
            table.create_index(ix_name.clone(), vec![ord])?;
        }

        let sub = Subscription {
            view,
            base_ordinals,
            predicate_base_ordinal,
            base_key_ordinals,
        };

        // Populate from a consistent snapshot.
        let (rows, snapshot_cursor) = self.master.snapshot_table(&base.name)?;
        for row in rows {
            if let Some(projected) = project_row(&sub, &row) {
                table.insert(projected)?;
            }
        }
        self.cache_storage.create_table(table)?;

        if self.subscriptions.is_empty() {
            self.cursor = snapshot_cursor;
        }
        // else: keep the existing cursor; replaying txns the snapshot
        // already covers is idempotent (upsert/delete by key).
        self.subscriptions.push(sub);
        Ok(())
    }

    /// Cancel the subscription for `view_name` (the view's table at the
    /// cache is dropped by the caller). Returns true if a subscription was
    /// removed.
    pub fn unsubscribe(&mut self, view_name: &str) -> bool {
        let before = self.subscriptions.len();
        self.subscriptions
            .retain(|s| !s.view.name.eq_ignore_ascii_case(view_name));
        self.subscriptions.len() != before
    }

    /// Run one propagation cycle at time `now`: apply, in commit order,
    /// every logged transaction that had reached the distributor by
    /// `now − update_delay`, including heartbeat updates for this region.
    ///
    /// The whole cycle is staged first (pure computation, no locks), then
    /// published as **one copy-on-write snapshot per view**, with the
    /// region's heartbeat published *last* — so a concurrent scan either
    /// sees a view before this cycle or after it (never mid-batch), and the
    /// advertised heartbeat never claims more freshness than the data
    /// actually published (no torn heartbeat).
    ///
    /// Returns the number of transactions applied.
    pub fn propagate(&mut self, now: Timestamp) -> Result<usize> {
        if self.stalled {
            return Ok(0);
        }
        let as_of = now.minus(self.region.update_delay);
        let txns = self.master.log_since_until(self.cursor, as_of);
        let applied = txns.len();
        if applied == 0 {
            self.last_propagation = Some(now);
            return Ok(0);
        }

        // Stage: fold every change into per-view op lists, in commit order.
        let mut staged: Vec<Vec<ViewOp>> = vec![Vec::new(); self.subscriptions.len()];
        let mut heartbeat: Option<Row> = None;
        for txn in &txns {
            for change in &txn.changes {
                if change.table == HEARTBEAT_TABLE {
                    self.stage_heartbeat(&change.change, &mut heartbeat)?;
                    continue;
                }
                for (sub, ops) in self.subscriptions.iter().zip(staged.iter_mut()) {
                    if sub.view.base_table_name.eq_ignore_ascii_case(&change.table) {
                        ops.push(stage_view_op(sub, &change.change));
                    }
                }
            }
        }

        // Publish: each data view gets the cycle's whole batch in one
        // atomic snapshot swap.
        for (sub, ops) in self.subscriptions.iter().zip(staged.iter()) {
            if ops.is_empty() {
                continue;
            }
            let handle = self.cache_storage.table(&sub.view.name)?;
            handle.update(|t| {
                for op in ops {
                    match op {
                        ViewOp::Upsert(row) => t.upsert(row.clone())?,
                        ViewOp::Delete(key) => {
                            t.delete(key);
                        }
                    }
                }
                Ok(())
            })?;
        }
        // Heartbeat last: once a scan observes the new heartbeat, every
        // data publish it vouches for has already happened.
        if let Some(row) = heartbeat {
            let handle = self
                .cache_storage
                .table(&self.region.heartbeat_table_name())?;
            handle.update(|t| t.upsert(row))?;
        }

        self.cursor += applied;
        self.last_propagation = Some(now);
        Ok(applied)
    }

    /// Fold a heartbeat-table change into the staged heartbeat row for this
    /// region (commit order ⇒ the last one wins).
    fn stage_heartbeat(&self, change: &RowChange, staged: &mut Option<Row>) -> Result<()> {
        let row = match change {
            RowChange::Insert(row) | RowChange::Update { row, .. } => row,
            RowChange::Delete { .. } => return Ok(()),
        };
        if row.get(0).as_int()? == self.region.id.raw() as i64 {
            *staged = Some(row.clone());
        }
        Ok(())
    }

    /// Restore a persisted propagation position after a back-end restart:
    /// reset the log cursor and, when known, re-seed the local heartbeat
    /// row so currency accounting resumes from the pre-crash watermark
    /// instead of silently re-reporting staleness from zero.
    ///
    /// The caller is expected to clamp `cursor` to the recovered master's
    /// `log_len()`; setting it low is always safe because propagation
    /// applies are idempotent.
    pub fn restore_watermark(&mut self, cursor: usize, heartbeat: Option<Timestamp>) -> Result<()> {
        self.cursor = cursor;
        if let Some(at) = heartbeat {
            let row = Row::new(vec![
                Value::Int(self.region.id.raw() as i64),
                Value::Timestamp(at.millis()),
            ]);
            let handle = self
                .cache_storage
                .table(&self.region.heartbeat_table_name())?;
            handle.update(|t| t.upsert(row))?;
        }
        Ok(())
    }

    /// The timestamp currently stored in this region's local heartbeat
    /// table (None before the first heartbeat arrives).
    pub fn local_heartbeat(&self) -> Option<Timestamp> {
        let t = self
            .cache_storage
            .table(&self.region.heartbeat_table_name())
            .ok()?
            .snapshot();
        let row = t.get(&[Value::Int(self.region.id.raw() as i64)])?;
        row.get(1).as_int().ok().map(Timestamp)
    }
}

/// A staged view mutation, computed during the staging pass and applied
/// inside the view's single copy-on-write publish.
#[derive(Debug, Clone)]
enum ViewOp {
    Upsert(Row),
    Delete(Vec<Value>),
}

/// Translate one base-table change into the view op it implies.
fn stage_view_op(sub: &Subscription, change: &RowChange) -> ViewOp {
    match change {
        RowChange::Insert(row) | RowChange::Update { row, .. } => match project_row(sub, row) {
            Some(projected) => ViewOp::Upsert(projected),
            None => {
                // Row fell out of the view's selection range (or was never
                // in it): ensure it is absent.
                let key: Vec<Value> = sub
                    .base_key_ordinals
                    .iter()
                    .map(|&i| row.get(i).clone())
                    .collect();
                ViewOp::Delete(base_key_to_view_key(sub, &key))
            }
        },
        RowChange::Delete { key } => ViewOp::Delete(base_key_to_view_key(sub, key)),
    }
}

/// Map a base-table clustered key onto the corresponding view clustered
/// key. Views retain the full base key (enforced at subscribe), and the
/// view's clustered key is exactly those columns, so this is a reorder.
fn base_key_to_view_key(sub: &Subscription, base_key: &[Value]) -> Vec<Value> {
    sub.view
        .key_ordinals
        .iter()
        .map(|&view_ord| {
            // view column `view_ord` corresponds to base ordinal
            // sub.base_ordinals[view_ord]; find its position in the base key
            let base_ord = sub.base_ordinals[view_ord];
            let pos = sub
                .base_key_ordinals
                .iter()
                .position(|&k| k == base_ord)
                .expect("view key column is part of the base key");
            base_key[pos].clone()
        })
        .collect()
}

/// Project a base-table row through the view definition; `None` when the
/// row does not satisfy the view's selection predicate.
fn project_row(sub: &Subscription, row: &Row) -> Option<Row> {
    if let (Some(ord), Some(pred)) = (sub.predicate_base_ordinal, &sub.view.predicate) {
        if !pred.range.contains(row.get(ord)) {
            return None;
        }
    }
    Some(Row::new(
        sub.base_ordinals
            .iter()
            .map(|&i| row.get(i).clone())
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_backend::TableChange;
    use rcc_catalog::{Catalog, ViewPredicate};
    use rcc_common::{
        Clock, Column, DataType, Duration, RegionId, Schema, SimClock, TableId, ViewId,
    };
    use rcc_storage::KeyRange;

    struct Fixture {
        clock: SimClock,
        master: Arc<MasterDb>,
        cache: Arc<StorageEngine>,
        agent: DistributionAgent,
        meta: TableMeta,
    }

    fn fixture(predicate: Option<ViewPredicate>) -> Fixture {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(catalog.clone(), Arc::new(clock.clone())));
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        let meta = TableMeta::new(TableId(1), "items", schema.clone(), vec!["id".into()]).unwrap();
        master.create_table(&meta).unwrap();
        for i in 0..10 {
            master
                .bulk_load(
                    "items",
                    vec![Row::new(vec![
                        Value::Int(i),
                        Value::Int(i % 3),
                        Value::Str(format!("n{i}")),
                    ])],
                )
                .unwrap();
        }
        let region = Arc::new(CurrencyRegion::new(
            RegionId(1),
            "CR1",
            Duration::from_secs(10),
            Duration::from_secs(2),
        ));
        let cache = Arc::new(StorageEngine::new());
        let mut agent =
            DistributionAgent::new(AgentId(1), region, master.clone(), cache.clone()).unwrap();
        let view_schema = Schema::new(vec![
            Column::new("id", DataType::Int).with_source(TableId(1)),
            Column::new("grp", DataType::Int).with_source(TableId(1)),
        ])
        .with_qualifier("items_v");
        let view = Arc::new(CachedViewDef {
            id: ViewId(1),
            name: "items_v".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "items".into(),
            columns: vec!["id".into(), "grp".into()],
            predicate,
            schema: view_schema,
            key_ordinals: vec![0],
            local_indexes: vec![],
        });
        agent.subscribe(view, &meta).unwrap();
        Fixture {
            clock,
            master,
            cache,
            agent,
            meta,
        }
    }

    fn upd(id: i64, grp: i64) -> TableChange {
        TableChange::new(
            "items",
            RowChange::Update {
                key: vec![Value::Int(id)],
                row: Row::new(vec![
                    Value::Int(id),
                    Value::Int(grp),
                    Value::Str(format!("u{id}")),
                ]),
            },
        )
    }

    #[test]
    fn subscribe_populates_snapshot() {
        let f = fixture(None);
        let v = f.cache.table("items_v").unwrap();
        assert_eq!(v.snapshot().row_count(), 10);
        assert_eq!(v.snapshot().schema().len(), 2, "projection applied");
    }

    #[test]
    fn propagation_applies_in_commit_order_after_delay() {
        let mut f = fixture(None);
        f.master.execute_txn(vec![upd(3, 99)]).unwrap(); // commit at t=0
                                                         // At t=1s, delay=2s: txn not yet deliverable.
        f.clock.advance(Duration::from_secs(1));
        assert_eq!(f.agent.propagate(f.clock.now()).unwrap(), 0);
        // At t=3s: deliverable.
        f.clock.advance(Duration::from_secs(2));
        assert_eq!(f.agent.propagate(f.clock.now()).unwrap(), 1);
        let v = f.cache.table("items_v").unwrap();
        assert_eq!(
            v.snapshot().get(&[Value::Int(3)]).unwrap().get(1),
            &Value::Int(99)
        );
    }

    #[test]
    fn deletes_and_inserts_flow() {
        let mut f = fixture(None);
        f.master
            .execute_txn(vec![TableChange::new(
                "items",
                RowChange::Delete {
                    key: vec![Value::Int(0)],
                },
            )])
            .unwrap();
        f.master
            .execute_txn(vec![TableChange::new(
                "items",
                RowChange::Insert(Row::new(vec![
                    Value::Int(100),
                    Value::Int(1),
                    Value::Str("new".into()),
                ])),
            )])
            .unwrap();
        f.clock.advance(Duration::from_secs(5));
        f.agent.propagate(f.clock.now()).unwrap();
        let v = f.cache.table("items_v").unwrap();
        assert!(v.snapshot().get(&[Value::Int(0)]).is_none());
        assert!(v.snapshot().get(&[Value::Int(100)]).is_some());
        assert_eq!(v.snapshot().row_count(), 10);
    }

    #[test]
    fn selection_view_filters_and_evicts() {
        // keep only grp = 0 rows (ids 0,3,6,9)
        let f0 = fixture(Some(ViewPredicate {
            column: "grp".into(),
            range: KeyRange::eq(Value::Int(0)),
        }));
        let mut f = f0;
        let v = f.cache.table("items_v").unwrap();
        assert_eq!(v.snapshot().row_count(), 4);
        // move id=3 out of the selection range; insert id=200 inside it
        f.master.execute_txn(vec![upd(3, 2)]).unwrap();
        f.master
            .execute_txn(vec![TableChange::new(
                "items",
                RowChange::Insert(Row::new(vec![
                    Value::Int(200),
                    Value::Int(0),
                    Value::Str("in".into()),
                ])),
            )])
            .unwrap();
        f.clock.advance(Duration::from_secs(5));
        f.agent.propagate(f.clock.now()).unwrap();
        assert!(v.snapshot().get(&[Value::Int(3)]).is_none(), "evicted");
        assert!(v.snapshot().get(&[Value::Int(200)]).is_some(), "admitted");
    }

    #[test]
    fn heartbeat_replicates_only_own_region() {
        let mut f = fixture(None);
        f.clock.advance(Duration::from_secs(4));
        f.master.beat(RegionId(1)).unwrap();
        f.master.beat(RegionId(2)).unwrap();
        f.clock.advance(Duration::from_secs(3));
        f.agent.propagate(f.clock.now()).unwrap();
        assert_eq!(f.agent.local_heartbeat(), Some(Timestamp(4_000)));
        let hb = f.cache.table("heartbeat_cr1").unwrap();
        assert_eq!(hb.snapshot().row_count(), 1, "only own region's row");
    }

    #[test]
    fn stalled_agent_applies_nothing() {
        let mut f = fixture(None);
        f.master.execute_txn(vec![upd(1, 42)]).unwrap();
        f.clock.advance(Duration::from_secs(10));
        f.agent.set_stalled(true);
        assert_eq!(f.agent.propagate(f.clock.now()).unwrap(), 0);
        assert_eq!(f.agent.cursor(), 0);
        f.agent.set_stalled(false);
        assert_eq!(f.agent.propagate(f.clock.now()).unwrap(), 1);
    }

    #[test]
    fn wrong_region_subscription_rejected() {
        let f = fixture(None);
        let mut agent = f.agent;
        let bad_view = Arc::new(CachedViewDef {
            id: ViewId(9),
            name: "bad".into(),
            region: RegionId(9),
            base_table: TableId(1),
            base_table_name: "items".into(),
            columns: vec!["id".into()],
            predicate: None,
            schema: Schema::new(vec![Column::new("id", DataType::Int)]),
            key_ordinals: vec![0],
            local_indexes: vec![],
        });
        assert!(agent.subscribe(bad_view, &f.meta).is_err());
    }

    #[test]
    fn view_missing_base_key_rejected() {
        let f = fixture(None);
        let mut agent = f.agent;
        let bad_view = Arc::new(CachedViewDef {
            id: ViewId(9),
            name: "nokey".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "items".into(),
            columns: vec!["grp".into()],
            predicate: None,
            schema: Schema::new(vec![Column::new("grp", DataType::Int)]),
            key_ordinals: vec![0],
            local_indexes: vec![],
        });
        assert!(agent.subscribe(bad_view, &f.meta).is_err());
    }

    #[test]
    fn local_heartbeat_none_before_first_beat() {
        let f = fixture(None);
        assert_eq!(f.agent.local_heartbeat(), None);
    }
}
