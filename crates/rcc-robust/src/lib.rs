#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Template-level robustness analysis for relaxed-currency workloads.
//!
//! The paper's currency clauses let individual reads accept bounded
//! staleness; the cache then serves them from local replicas instead of the
//! strict (master, serializable) path. That is a per-statement guarantee —
//! it says nothing about whether a multi-statement **transaction template**
//! stays serializable when its reads are allowed to lag. This crate closes
//! that gap with a static analysis in the style of robustness testing
//! against weak isolation (Vandevoort et al.): given the read/write
//! summaries of every template in a workload
//! ([`rcc_semantics::TemplateSummary`]), decide per template whether every
//! interleaving its relaxed reads admit is serializable (`ROBUST`) or
//! whether the template must be pinned to the strict path (`NOT ROBUST`),
//! with a concrete interference-cycle witness.
//!
//! # The model
//!
//! Templates conflict on (table, key-class) objects: two accesses conflict
//! when they touch the same base table, their key classes may overlap
//! ([`rcc_semantics::KeySpec::overlaps`] — point keys over distinct
//! literals are provably disjoint, everything else conservatively
//! overlaps), and at least one is a write. Edges are labelled `rw` / `wr` /
//! `ww` in the usual dependency sense. Any number of instances of each
//! template may run concurrently, so a template can conflict with another
//! instance of itself.
//!
//! A template `T1` is **not robust** when an interference cycle exists that
//! a relaxed read makes realizable under the cache's guarantees:
//!
//! 1. a *vulnerable* `rw` edge leaves a relaxed read `b1` of `T1` (bound >
//!    0: the read may be served stale, so a concurrent writer can commit
//!    "between" the read's snapshot and `T1`'s own writes);
//! 2. the cycle continues through **writer** templates only (any conflict
//!    edge), and
//! 3. a closing `ww`/`wr` edge re-enters `T1` at an access `a1` positioned
//!    after `b1` — either in a later statement, or at a different
//!    *consistency position* of the same statement. Reads that share a
//!    statement, currency spec and BY-group share one position: the paper
//!    guarantees them a single snapshot, so no writer can split them, and
//!    no dangerous cycle can close between them.
//!
//! Condition 2 is a deliberate *modular blame* rule: read-only templates
//! can be split victims (case 1) but never relays or closers. Blame for a
//! non-serializable interleaving always lands on a template that both
//! relaxes a read and participates in writes reaching back into it.
//! Consequences: strict-only and read-only templates are `ROBUST` by
//! construction, and **adding a read-only template can never flip an
//! existing `ROBUST` verdict** — a property the proptests pin down.

use rcc_semantics::TemplateSummary;
use std::collections::VecDeque;
use std::fmt;

/// Per-template analysis outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every interleaving the template's relaxed reads admit is
    /// serializable; the relaxed path is safe.
    Robust,
    /// A dangerous interference cycle exists; the template must be pinned
    /// to the strict path.
    NotRobust,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Robust => write!(f, "ROBUST"),
            Verdict::NotRobust => write!(f, "NOT ROBUST"),
        }
    }
}

/// The analysis result for one template.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateReport {
    /// Template name.
    pub name: String,
    /// 1-based declaration line (0 if synthesized).
    pub line: u32,
    /// The verdict.
    pub verdict: Verdict,
    /// For [`Verdict::NotRobust`]: the interference-cycle witness, e.g.
    /// `pay --rw(customer)--> transfer --ww(customer)--> pay
    /// (relaxed read at line 2 separated from line 3)`.
    pub witness: Option<String>,
    /// Number of statements in the template.
    pub statements: usize,
    /// Number of relaxed (bound > 0) reads.
    pub relaxed_reads: usize,
    /// Number of write accesses.
    pub writes: usize,
}

impl TemplateReport {
    /// The verdict with its witness, as one displayable string.
    pub fn verdict_string(&self) -> String {
        match (&self.verdict, &self.witness) {
            (Verdict::NotRobust, Some(w)) => format!("NOT ROBUST (cycle witness: {w})"),
            (v, _) => v.to_string(),
        }
    }
}

/// The analysis result for a whole workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// One report per template, in input order.
    pub templates: Vec<TemplateReport>,
}

impl WorkloadReport {
    /// Number of `ROBUST` templates.
    pub fn robust_count(&self) -> usize {
        self.templates
            .iter()
            .filter(|t| t.verdict == Verdict::Robust)
            .count()
    }

    /// Number of `NOT ROBUST` templates.
    pub fn not_robust_count(&self) -> usize {
        self.templates.len() - self.robust_count()
    }

    /// Look up one template's report by name.
    pub fn report(&self, name: &str) -> Option<&TemplateReport> {
        self.templates.iter().find(|t| t.name == name)
    }
}

/// Dependency-edge label between two conflicting accesses, in edge
/// direction (`from` happens logically first).
fn edge_kind(from_write: bool, to_write: bool) -> &'static str {
    match (from_write, to_write) {
        (false, true) => "rw",
        (true, false) => "wr",
        _ => "ww",
    }
}

/// May the closing edge land at `a1` given the vulnerable read left at
/// `b1`? Later statement: yes. Same statement: only at a different
/// consistency position (same position ⇒ one snapshot ⇒ unsplittable).
fn position_splittable(
    b1: &rcc_semantics::TemplateAccess,
    a1: &rcc_semantics::TemplateAccess,
) -> bool {
    b1.stmt < a1.stmt || (b1.stmt == a1.stmt && b1.pos != a1.pos)
}

/// Analyze a workload of bound template summaries.
///
/// Deterministic: verdicts and witnesses depend only on the summaries'
/// order and content. Template and parameter *names* never influence a
/// verdict (alpha-equivalence), only the witness text.
pub fn analyze(summaries: &[TemplateSummary]) -> WorkloadReport {
    let writers: Vec<usize> = (0..summaries.len())
        .filter(|&i| summaries[i].has_writes())
        .collect();

    // Conflict adjacency over writer templates, indexed by slot in
    // `writers` (instances, so self-edges count): slot i -> slot j when any
    // pair of accesses conflicts.
    let w_adj: Vec<Vec<usize>> = writers
        .iter()
        .map(|&i| {
            (0..writers.len())
                .filter(|&jw| {
                    summaries[i].accesses.iter().any(|x| {
                        summaries[writers[jw]]
                            .accesses
                            .iter()
                            .any(|y| x.conflicts_with(y))
                    })
                })
                .collect()
        })
        .collect();

    let templates = summaries
        .iter()
        .enumerate()
        .map(|(t1, s)| {
            let witness = dangerous_cycle(summaries, &writers, &w_adj, t1);
            TemplateReport {
                name: s.name.clone(),
                line: s.line,
                verdict: if witness.is_some() {
                    Verdict::NotRobust
                } else {
                    Verdict::Robust
                },
                witness,
                statements: s.statements,
                relaxed_reads: s
                    .accesses
                    .iter()
                    .filter(|a| a.mode.is_relaxed_read())
                    .count(),
                writes: s.accesses.iter().filter(|a| a.mode.is_write()).count(),
            }
        })
        .collect();
    WorkloadReport { templates }
}

/// Search for a dangerous cycle splitting template `t1`; returns the
/// witness string of the first one found (deterministic order).
fn dangerous_cycle(
    summaries: &[TemplateSummary],
    writers: &[usize],
    w_adj: &[Vec<usize>],
    t1: usize,
) -> Option<String> {
    let s1 = &summaries[t1];
    for b1 in s1.accesses.iter().filter(|a| a.mode.is_relaxed_read()) {
        // Entry points: writer templates with a write conflicting the
        // vulnerable read (the rw edge out of b1).
        let entries: Vec<usize> = (0..writers.len())
            .filter(|&wi| {
                summaries[writers[wi]]
                    .accesses
                    .iter()
                    .any(|w| w.mode.is_write() && w.conflicts_with(b1))
            })
            .collect();
        if entries.is_empty() {
            continue;
        }

        // BFS through writer templates from every entry, tracking parents
        // for witness reconstruction.
        let mut parent: Vec<Option<usize>> = vec![None; writers.len()];
        let mut seen = vec![false; writers.len()];
        let mut queue = VecDeque::new();
        for &e in &entries {
            if !seen[e] {
                seen[e] = true;
                parent[e] = Some(usize::MAX); // entry marker
                queue.push_back(e);
            }
        }
        while let Some(wi) = queue.pop_front() {
            let tn = writers[wi];
            // Can tn close the cycle back into t1?
            for w in summaries[tn].accesses.iter().filter(|a| a.mode.is_write()) {
                for a1 in &s1.accesses {
                    if w.conflicts_with(a1) && position_splittable(b1, a1) {
                        return Some(witness_string(
                            summaries, writers, &parent, t1, b1, wi, w, a1,
                        ));
                    }
                }
            }
            for &nx in &w_adj[wi] {
                if !seen[nx] {
                    seen[nx] = true;
                    parent[nx] = Some(wi);
                    queue.push_back(nx);
                }
            }
        }
    }
    None
}

/// Render `t1 --rw(tbl)--> ... --ww(tbl)--> t1 (relaxed read at line L1
/// separated from line L2)` from the BFS parent chain.
#[allow(clippy::too_many_arguments)]
fn witness_string(
    summaries: &[TemplateSummary],
    writers: &[usize],
    parent: &[Option<usize>],
    t1: usize,
    b1: &rcc_semantics::TemplateAccess,
    close_wi: usize,
    closing_write: &rcc_semantics::TemplateAccess,
    a1: &rcc_semantics::TemplateAccess,
) -> String {
    // Reconstruct entry -> ... -> close_wi.
    let mut chain = vec![close_wi];
    let mut cur = close_wi;
    while let Some(p) = parent[cur] {
        if p == usize::MAX {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();

    let mut out = format!(
        "{} --rw({})--> {}",
        summaries[t1].name, b1.table, summaries[writers[chain[0]]].name
    );
    for hop in chain.windows(2) {
        let (x, y) = (writers[hop[0]], writers[hop[1]]);
        // First conflicting access pair, for the edge label.
        let (kx, tbl) = summaries[x]
            .accesses
            .iter()
            .flat_map(|ax| {
                summaries[y]
                    .accesses
                    .iter()
                    .filter(move |ay| ax.conflicts_with(ay))
                    .map(move |ay| {
                        (
                            edge_kind(ax.mode.is_write(), ay.mode.is_write()),
                            ax.table.clone(),
                        )
                    })
            })
            .next()
            .unwrap_or(("ww", String::new()));
        out.push_str(&format!(" --{kx}({tbl})--> {}", summaries[y].name));
    }
    out.push_str(&format!(
        " --{}({})--> {} (relaxed read at line {} separated from line {})",
        edge_kind(true, a1.mode.is_write()),
        closing_write.table,
        summaries[t1].name,
        b1.line,
        a1.line
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_catalog::{Catalog, TableMeta};
    use rcc_common::{Column, DataType, Schema, TableId};
    use rcc_semantics::summarize_template;
    use rcc_sql::ast::Statement;
    use rcc_sql::parse_statement;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_acctbal", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(TableId(1), "customer", schema, vec!["c_custkey".into()]).unwrap(),
        )
        .unwrap();
        let schema = Schema::new(vec![
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_custkey", DataType::Int),
            Column::new("o_totalprice", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(TableId(2), "orders", schema, vec!["o_orderkey".into()]).unwrap(),
        )
        .unwrap();
        cat
    }

    fn summaries(cat: &Catalog, sqls: &[&str]) -> Vec<rcc_semantics::TemplateSummary> {
        sqls.iter()
            .map(|sql| match parse_statement(sql).expect("parse") {
                Statement::CreateTemplate(t) => summarize_template(cat, &t).expect("bind"),
                other => panic!("not a template: {other:?}"),
            })
            .collect()
    }

    const PAY: &str = "CREATE TEMPLATE pay ($c, $amt) AS \
        SELECT c_acctbal FROM customer WHERE c_custkey = $c \
          CURRENCY BOUND 10 SEC ON (customer); \
        UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END";

    const PAY_STRICT: &str = "CREATE TEMPLATE pay_strict ($c, $amt) AS \
        SELECT c_acctbal FROM customer WHERE c_custkey = $c \
          CURRENCY BOUND 0 SEC ON (customer); \
        UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END";

    #[test]
    fn lost_update_is_not_robust_strict_variant_is() {
        let cat = catalog();
        let r = analyze(&summaries(&cat, &[PAY, PAY_STRICT]));
        let pay = r.report("pay").unwrap();
        assert_eq!(pay.verdict, Verdict::NotRobust);
        let w = pay.witness.as_deref().unwrap();
        assert!(w.contains("--rw(customer)-->"), "{w}");
        assert!(w.contains("--ww(customer)-->"), "{w}");
        assert_eq!(r.report("pay_strict").unwrap().verdict, Verdict::Robust);
    }

    #[test]
    fn read_only_template_is_robust_even_when_relaxed() {
        let cat = catalog();
        let r = analyze(&summaries(
            &cat,
            &[
                "CREATE TEMPLATE peek ($c) AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                 CURRENCY BOUND 60 SEC ON (customer); END",
                PAY,
            ],
        ));
        assert_eq!(r.report("peek").unwrap().verdict, Verdict::Robust);
    }

    #[test]
    fn split_read_across_statements_is_caught_via_wr_closing_edge() {
        let cat = catalog();
        // T1 reads customer twice (relaxed), T2 writes it: the second read
        // can observe the writer that the first read missed.
        let r = analyze(&summaries(
            &cat,
            &[
                "CREATE TEMPLATE twice ($c) AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                   CURRENCY BOUND 10 SEC ON (customer); \
                 SELECT c_acctbal FROM customer WHERE c_custkey = $c; \
                 UPDATE orders SET o_totalprice = 0.0 WHERE o_orderkey = $c; END",
                "CREATE TEMPLATE bump ($c, $amt) AS \
                 UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END",
            ],
        ));
        let t = r.report("twice").unwrap();
        assert_eq!(t.verdict, Verdict::NotRobust);
        assert!(t.witness.as_deref().unwrap().contains("--wr(customer)-->"));
    }

    #[test]
    fn single_consistency_class_is_unsplittable_two_classes_are_not() {
        let cat = catalog();
        let bump = "CREATE TEMPLATE bump ($c, $amt) AS \
            UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END";
        // Two reads of customer in ONE statement and ONE consistency
        // class: the paper guarantees them a single snapshot, so the
        // writer cannot land between them.
        let one_class = "CREATE TEMPLATE once ($c) AS \
            SELECT a.c_acctbal, b.c_name FROM customer a, customer b \
            WHERE a.c_custkey = $c AND b.c_custkey = $c \
            CURRENCY BOUND 10 SEC ON (a, b); END";
        let r = analyze(&summaries(&cat, &[one_class, bump]));
        assert_eq!(r.report("once").unwrap().verdict, Verdict::Robust);

        // Same reads in two independent classes: each may come from its
        // own snapshot, the writer can split them (fractured read).
        let two_classes = "CREATE TEMPLATE once ($c) AS \
            SELECT a.c_acctbal, b.c_name FROM customer a, customer b \
            WHERE a.c_custkey = $c AND b.c_custkey = $c \
            CURRENCY BOUND 10 SEC ON (a), 10 SEC ON (b); END";
        let r = analyze(&summaries(&cat, &[two_classes, bump]));
        let t = r.report("once").unwrap();
        assert_eq!(t.verdict, Verdict::NotRobust);
        assert!(t.witness.as_deref().unwrap().contains("--wr(customer)-->"));
    }

    #[test]
    fn literal_disjoint_keys_keep_robust_dropping_key_flips() {
        let cat = catalog();
        // Reader relaxed on customer 1 (and writing orders); the only
        // customer writer is pinned to customer 2: provably disjoint.
        let keyed = "CREATE TEMPLATE audit1 () AS \
            SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
              CURRENCY BOUND 10 SEC ON (customer); \
            UPDATE orders SET o_totalprice = 0.0 WHERE o_orderkey = 1; END";
        let other = "CREATE TEMPLATE w2 () AS \
            UPDATE customer SET c_acctbal = 0.0 WHERE c_custkey = 2; END";
        let r = analyze(&summaries(&cat, &[keyed, other]));
        assert_eq!(r.report("audit1").unwrap().verdict, Verdict::Robust);

        // Drop the writer's key predicate: Range overlaps everything, the
        // rw edge appears, and the cycle closes through audit1's own
        // orders write (another instance).
        let unkeyed = "CREATE TEMPLATE w2 () AS \
            UPDATE customer SET c_acctbal = 0.0; END";
        let r = analyze(&summaries(&cat, &[keyed, unkeyed]));
        assert_eq!(r.report("audit1").unwrap().verdict, Verdict::NotRobust);
    }

    #[test]
    fn multi_hop_cycle_through_second_writer() {
        let cat = catalog();
        // T1: relaxed read of customer, writes orders.
        // T2: writes customer, reads orders (strict).
        // rw(customer) into T2, wr/ww back via orders.
        let r = analyze(&summaries(
            &cat,
            &[
                "CREATE TEMPLATE t1 ($c) AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                   CURRENCY BOUND 10 SEC ON (customer); \
                 UPDATE orders SET o_totalprice = 1.0 WHERE o_orderkey = $c; END",
                "CREATE TEMPLATE t2 ($c) AS \
                 UPDATE customer SET c_acctbal = 1.0 WHERE c_custkey = $c; \
                 UPDATE orders SET o_totalprice = 2.0 WHERE o_orderkey = $c; END",
            ],
        ));
        let t = r.report("t1").unwrap();
        assert_eq!(t.verdict, Verdict::NotRobust);
        assert!(t.witness.as_deref().unwrap().contains("t2"));
    }

    #[test]
    fn tpcd_corpus_verdicts_match_expectations() {
        let cat = Catalog::new();
        cat.register_table(rcc_tpcd::customer_meta(TableId(1)))
            .unwrap();
        cat.register_table(rcc_tpcd::orders_meta(TableId(2)))
            .unwrap();
        let corpus = rcc_tpcd::robust_template_corpus();
        let sqls: Vec<&str> = corpus.iter().map(|c| c.sql).collect();
        let r = analyze(&summaries(&cat, &sqls));
        for case in &corpus {
            let t = r.report(case.name).expect(case.name);
            assert_eq!(
                t.verdict == Verdict::Robust,
                case.robust,
                "{}: got {}",
                case.name,
                t.verdict_string()
            );
            if case.robust {
                assert!(t.witness.is_none());
            } else {
                let w = t.witness.as_deref().expect("witness");
                assert!(w.contains("-->"), "{w}");
            }
        }
    }

    #[test]
    fn tpcd_mutations_flip_their_target() {
        let cat = Catalog::new();
        cat.register_table(rcc_tpcd::customer_meta(TableId(1)))
            .unwrap();
        cat.register_table(rcc_tpcd::orders_meta(TableId(2)))
            .unwrap();
        for m in rcc_tpcd::template_mutation_corpus() {
            let base = analyze(&summaries(&cat, m.base));
            let mutated = analyze(&summaries(&cat, m.mutated));
            let before = base.report(m.target).expect(m.target);
            let after = mutated.report(m.target).expect(m.target);
            assert_eq!(
                before.verdict == Verdict::Robust,
                m.base_robust,
                "{}: base got {}",
                m.label,
                before.verdict_string()
            );
            assert_eq!(
                after.verdict == Verdict::Robust,
                !m.base_robust,
                "{}: mutated got {}",
                m.label,
                after.verdict_string()
            );
        }
    }

    #[test]
    fn workload_counts_and_lookup() {
        let cat = catalog();
        let r = analyze(&summaries(&cat, &[PAY, PAY_STRICT]));
        assert_eq!(r.robust_count(), 1);
        assert_eq!(r.not_robust_count(), 1);
        assert!(r.report("nope").is_none());
        let pay = r.report("pay").unwrap();
        assert_eq!(pay.statements, 2);
        assert_eq!(pay.relaxed_reads, 1);
        assert_eq!(pay.writes, 1);
        assert!(pay
            .verdict_string()
            .starts_with("NOT ROBUST (cycle witness: "));
        assert_eq!(r.report("pay_strict").unwrap().verdict_string(), "ROBUST");
    }
}
