//! Property tests for the robustness analyzer, over randomly generated
//! template workloads bound against the TPC-C-flavored catalog.
//!
//! * **Alpha-equivalence** — verdicts depend only on the workload's
//!   structure: consistently renaming every template and parameter and
//!   reordering each template's parameter declaration list leaves every
//!   verdict unchanged.
//! * **Modular blame** — adding a read-only template to a workload never
//!   flips an existing template's `ROBUST` verdict: entry, relay, and
//!   closing positions of a dangerous cycle all require writes, so a
//!   template without writes can endanger only itself.

use proptest::prelude::*;
use rcc_catalog::Catalog;
use rcc_common::TableId;
use rcc_robust::{analyze, Verdict};
use rcc_semantics::{summarize_template, TemplateSummary};
use rcc_sql::ast::Statement;

/// One generated statement: which table it touches, whether it writes,
/// the currency bound for reads (seconds), and how the key is supplied.
#[derive(Clone, Debug)]
struct StmtSpec {
    orders: bool,
    write: bool,
    bound_secs: u32,
    /// 0 = parameter, 1/2 = distinct integer literals.
    key: u8,
}

fn coin() -> impl Strategy<Value = bool> {
    (0..2u8).prop_map(|b| b == 1)
}

fn stmt_strategy() -> impl Strategy<Value = StmtSpec> {
    (
        coin(),
        coin(),
        prop_oneof![Just(0u32), Just(5), Just(30)],
        0..3u8,
    )
        .prop_map(|(orders, write, bound_secs, key)| StmtSpec {
            orders,
            write,
            bound_secs,
            key,
        })
}

/// A workload: 1-4 templates of 1-3 statements each.
fn workload_strategy() -> impl Strategy<Value = Vec<Vec<StmtSpec>>> {
    prop::collection::vec(prop::collection::vec(stmt_strategy(), 1..4), 1..5)
}

/// A read-only template body (no writes, any bounds and keys).
fn read_only_strategy() -> impl Strategy<Value = Vec<StmtSpec>> {
    prop::collection::vec(
        stmt_strategy().prop_map(|mut s| {
            s.write = false;
            s
        }),
        1..4,
    )
}

fn key_term(spec: &StmtSpec, param: &str) -> String {
    match spec.key {
        0 => format!("${param}"),
        k => k.to_string(),
    }
}

/// Render one statement; `param` names the parameter a key == 0 uses.
fn render_stmt(spec: &StmtSpec, param: &str) -> String {
    let k = key_term(spec, param);
    match (spec.orders, spec.write) {
        (false, false) => format!(
            "SELECT c_acctbal FROM customer WHERE c_custkey = {k} \
             CURRENCY BOUND {} SEC ON (customer)",
            spec.bound_secs
        ),
        (false, true) => format!("UPDATE customer SET c_acctbal = 0 WHERE c_custkey = {k}"),
        (true, false) => format!(
            "SELECT o_totalprice FROM orders WHERE o_custkey = {k} AND o_orderkey = 1 \
             CURRENCY BOUND {} SEC ON (orders)",
            spec.bound_secs
        ),
        (true, true) => {
            format!("UPDATE orders SET o_totalprice = 0 WHERE o_custkey = {k} AND o_orderkey = 1")
        }
    }
}

/// Render a whole template. Statement `i` uses parameter `params[i]`;
/// `decl_order` permutes the declaration list only (usage is positional),
/// which is exactly the reordering the verdict must be invariant under.
fn render_template(
    name: &str,
    body: &[StmtSpec],
    params: &[String],
    decl_order: &[usize],
) -> String {
    let declared: Vec<String> = decl_order
        .iter()
        .filter(|&&i| body[i].key == 0)
        .map(|&i| format!("${}", params[i]))
        .collect();
    let stmts: Vec<String> = body
        .iter()
        .enumerate()
        .map(|(i, s)| render_stmt(s, &params[i]))
        .collect();
    format!(
        "CREATE TEMPLATE {name} ({}) AS {}; END",
        declared.join(", "),
        stmts.join("; ")
    )
}

fn catalog() -> Catalog {
    let cat = Catalog::new();
    cat.register_table(rcc_tpcd::customer_meta(TableId(1)))
        .expect("static schema");
    cat.register_table(rcc_tpcd::orders_meta(TableId(2)))
        .expect("static schema");
    cat
}

fn bind(catalog: &Catalog, sql: &str) -> TemplateSummary {
    let Ok(Statement::CreateTemplate(decl)) = rcc_sql::parser::parse_statement(sql) else {
        panic!("not a CREATE TEMPLATE: {sql}");
    };
    summarize_template(catalog, &decl).expect("generated template must bind")
}

/// Canonical rendering: templates `t0..`, statement `i` uses `p{i}`,
/// parameters declared in statement order.
fn canonical(workload: &[Vec<StmtSpec>]) -> Vec<String> {
    workload
        .iter()
        .enumerate()
        .map(|(ti, body)| {
            let params: Vec<String> = (0..body.len()).map(|i| format!("p{i}")).collect();
            let order: Vec<usize> = (0..body.len()).collect();
            render_template(&format!("t{ti}"), body, &params, &order)
        })
        .collect()
}

/// Alpha-renamed rendering: fresh template and parameter names, and the
/// parameter declaration list reversed.
fn renamed(workload: &[Vec<StmtSpec>]) -> Vec<String> {
    workload
        .iter()
        .enumerate()
        .map(|(ti, body)| {
            let params: Vec<String> = (0..body.len())
                .map(|i| format!("zz_arg_{ti}_{i}"))
                .collect();
            let order: Vec<usize> = (0..body.len()).rev().collect();
            render_template(&format!("renamed_tpl_{ti}"), body, &params, &order)
        })
        .collect()
}

fn verdicts(catalog: &Catalog, sqls: &[String]) -> Vec<Verdict> {
    let summaries: Vec<TemplateSummary> = sqls.iter().map(|s| bind(catalog, s)).collect();
    analyze(&summaries)
        .templates
        .iter()
        .map(|t| t.verdict)
        .collect()
}

proptest! {
    /// Verdicts are invariant under consistent renaming of template and
    /// parameter names and reordering of parameter declarations.
    #[test]
    fn verdicts_invariant_under_alpha_renaming(workload in workload_strategy()) {
        let cat = catalog();
        let base = verdicts(&cat, &canonical(&workload));
        let alpha = verdicts(&cat, &renamed(&workload));
        prop_assert_eq!(base, alpha);
    }

    /// Adding a read-only template never flips an existing `ROBUST`
    /// verdict: only templates that write can participate in the cycle
    /// positions that endanger *other* templates.
    #[test]
    fn read_only_addition_never_flips_robust(
        workload in workload_strategy(),
        extra in read_only_strategy(),
    ) {
        let cat = catalog();
        let mut sqls = canonical(&workload);
        let before = verdicts(&cat, &sqls);
        let params: Vec<String> = (0..extra.len()).map(|i| format!("x{i}")).collect();
        let order: Vec<usize> = (0..extra.len()).collect();
        sqls.push(render_template("read_only_extra", &extra, &params, &order));
        let after = verdicts(&cat, &sqls);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b == Verdict::Robust {
                prop_assert_eq!(
                    *a,
                    Verdict::Robust,
                    "template t{} flipped to NOT ROBUST after adding a read-only template",
                    i
                );
            }
        }
    }

    /// Determinism: analyzing the same workload twice yields identical
    /// reports, witnesses included.
    #[test]
    fn analysis_is_deterministic(workload in workload_strategy()) {
        let cat = catalog();
        let sqls = canonical(&workload);
        let a: Vec<TemplateSummary> = sqls.iter().map(|s| bind(&cat, s)).collect();
        let b: Vec<TemplateSummary> = sqls.iter().map(|s| bind(&cat, s)).collect();
        prop_assert_eq!(analyze(&a), analyze(&b));
    }
}
