//! Plan-cache behaviour: "re-optimization only if a view's consistency
//! properties change" (paper Sec. 3.2) — the dynamic plan is reused across
//! heartbeats, updates and replication cycles, and invalidated only by
//! catalog changes.

use rcc_common::{Duration, Value};
use rcc_mtcache::MTCache;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..50 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)";

#[test]
fn plans_are_reused_across_time_updates_and_guard_flips() {
    let cache = rig();
    let misses0 = cache.plan_cache().stats().1;
    cache.execute(Q).unwrap();
    let misses_after_first = cache.plan_cache().stats().1;
    assert!(misses_after_first > misses0);

    // heartbeats, data updates and propagation cycles do NOT recompile
    cache.execute("UPDATE t SET v = 99 WHERE a = 7").unwrap();
    cache.advance(Duration::from_secs(60)).unwrap();
    for _ in 0..5 {
        cache.execute(Q).unwrap();
    }
    let (hits, misses) = cache.plan_cache().stats();
    assert_eq!(misses, misses_after_first, "no recompilation");
    assert!(hits >= 5);

    // even a guard flip (stale region → remote branch) reuses the SAME plan
    cache.set_region_stalled("r", true);
    cache.advance(Duration::from_secs(120)).unwrap();
    let r = cache.execute(Q).unwrap();
    assert!(r.used_remote, "guard failed at run time");
    assert_eq!(
        cache.plan_cache().stats().1,
        misses_after_first,
        "still the cached plan"
    );
}

#[test]
fn catalog_changes_invalidate() {
    let cache = rig();
    cache.execute(Q).unwrap();
    let misses_before = cache.plan_cache().stats().1;

    // a new cached view changes the consistency properties available
    cache
        .execute("CREATE CACHED VIEW t_v2 REGION r AS SELECT a, v FROM t WHERE a < 25")
        .unwrap();
    cache.execute(Q).unwrap();
    assert!(
        cache.plan_cache().stats().1 > misses_before,
        "recompiled after DDL"
    );

    // ANALYZE also invalidates (statistics steer the cost model)
    let misses_mid = cache.plan_cache().stats().1;
    cache.analyze("t").unwrap();
    cache.execute(Q).unwrap();
    assert!(cache.plan_cache().stats().1 > misses_mid);
}

#[test]
fn different_params_compile_separately_then_hit() {
    let cache = rig();
    let sql = "SELECT v FROM t WHERE a = $k CURRENCY BOUND 30 SEC ON (t)";
    for k in [1i64, 2, 1, 2, 1] {
        let mut params = HashMap::new();
        params.insert("k".to_string(), Value::Int(k));
        let r = cache.execute_with_params(sql, &params).unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Int(k));
    }
    let (hits, _) = cache.plan_cache().stats();
    assert_eq!(hits, 3, "two compilations, three hits");
}

#[test]
fn cached_plan_results_stay_correct() {
    let cache = rig();
    let first = cache.execute(Q).unwrap();
    assert_eq!(first.rows[0].get(0), &Value::Int(7));
    cache.execute("UPDATE t SET v = 1234 WHERE a = 7").unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    let second = cache.execute(Q).unwrap();
    assert_eq!(
        second.rows[0].get(0),
        &Value::Int(1234),
        "cached plan, fresh data"
    );
}
