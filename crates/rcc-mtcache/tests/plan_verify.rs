//! The `VERIFY SELECT` statement and the post-optimize conformance audit.
//!
//! Regression guards for the static analyzer's integration points: VERIFY
//! returns one row per proof obligation, the debug-build audit re-runs
//! whenever a plan is actually (re)compiled — so a cached plan is
//! re-verified when the currency clause changes or the catalog's
//! replication state moves — and plan-cache hits skip the audit.

use rcc_common::{Duration, Value};
use rcc_mtcache::MTCache;

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..50 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

fn audits(cache: &MTCache) -> u64 {
    cache
        .metrics()
        .snapshot()
        .counter("rcc_verify_audits_total")
}

#[test]
fn verify_statement_reports_proof_obligations() {
    let cache = rig();
    let r = cache
        .execute("VERIFY SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    assert_eq!(r.schema.len(), 3);
    assert!(!r.rows.is_empty(), "expected one row per proof obligation");
    for row in &r.rows {
        match &row.values()[2] {
            Value::Str(s) => assert_eq!(s, "proved", "obligation {:?}", row.values()),
            other => panic!("status column should be a string, got {other:?}"),
        }
    }
    assert!(r.warnings[0].contains("plan verified"));
    assert!(!r.plan_explain.is_empty(), "VERIFY should show the plan");
    // The guarded plan has two worlds (guard pass / guard fail), and the
    // obligations must mention the SwitchUnion machinery somewhere.
    let kinds: Vec<&str> = r
        .rows
        .iter()
        .map(|row| match &row.values()[0] {
            Value::Str(s) => s.as_str(),
            _ => "",
        })
        .collect();
    assert!(kinds.contains(&"bound-satisfiable"));
    assert!(kinds.contains(&"guard-well-formed"));
}

#[test]
fn verify_works_through_a_session() {
    let cache = rig();
    let mut session = cache.session();
    let r = session
        .execute("VERIFY SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    assert!(r.warnings[0].contains("plan verified"));
}

#[test]
fn verify_never_executes_the_query() {
    let cache = rig();
    let before = cache
        .metrics()
        .snapshot()
        .counter("rcc_query_rows_returned_total");
    cache
        .execute("VERIFY SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    let after = cache
        .metrics()
        .snapshot()
        .counter("rcc_query_rows_returned_total");
    assert_eq!(before, after, "VERIFY must not execute the plan");
}

// The audit itself only runs in debug builds (it sits behind
// `#[cfg(debug_assertions)]` in MTCache::compile), so the counter-based
// regression guards are debug-only too.

#[cfg(debug_assertions)]
#[test]
fn cache_hits_skip_the_audit_and_clause_changes_reaudit() {
    let cache = rig();
    const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)";
    let a0 = audits(&cache);
    cache.execute(Q).unwrap();
    let a1 = audits(&cache);
    assert_eq!(a1, a0 + 1, "fresh compile must be audited");

    // Plan-cache hit: same statement, no recompile, no re-audit.
    cache.execute(Q).unwrap();
    assert_eq!(audits(&cache), a1, "cache hit must not re-audit");

    // A different currency clause is a different plan: must be re-audited.
    cache
        .execute("SELECT v FROM t WHERE a = 7 CURRENCY BOUND 5 MIN ON (t)")
        .unwrap();
    assert_eq!(audits(&cache), a1 + 1, "new clause means new audit");
}

#[cfg(debug_assertions)]
#[test]
fn replication_state_change_invalidates_and_reaudits() {
    let cache = rig();
    const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)";
    cache.execute(Q).unwrap();
    let a1 = audits(&cache);
    cache.execute(Q).unwrap();
    assert_eq!(audits(&cache), a1, "steady state: cached plan, no audit");

    // A replication-topology change (new region + cached view) moves the
    // catalog epoch; the cached plan must be recompiled and re-verified.
    cache
        .execute("CREATE REGION r2 INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v2 REGION r2 AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache.execute(Q).unwrap();
    assert!(
        audits(&cache) > a1,
        "catalog change must force re-verification of the cached plan"
    );
}

#[cfg(debug_assertions)]
#[test]
fn verify_statement_failures_counter_stays_zero_on_conformant_plans() {
    let cache = rig();
    cache
        .execute("VERIFY SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    cache.execute("VERIFY SELECT v FROM t WHERE a = 7").unwrap();
    assert_eq!(
        cache
            .metrics()
            .snapshot()
            .counter("rcc_verify_failures_total"),
        0
    );
}
