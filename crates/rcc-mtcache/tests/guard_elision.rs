//! Certified guard elision end-to-end.
//!
//! With `set_elide_guards(true)`, plans whose currency guards the dataflow
//! analysis proves statically decided are served without those guards —
//! and the observable behaviour (rows, remote usage) must be identical to
//! the guarded plan, because elision only removes checks whose outcome was
//! already certain. `EXPLAIN FLOW` exposes the per-node analysis.

use rcc_common::{Duration, Value};
use rcc_mtcache::MTCache;

/// Region `r`: update interval 10 s, delay 2 s, heartbeat 1 s →
/// healthy-replication envelope H = 13 s. Bounds above 13 s always pass,
/// bounds below 2 s never pass, anything between is contingent.
fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..50 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

fn elided_total(cache: &MTCache) -> u64 {
    cache
        .metrics()
        .snapshot()
        .counter("rcc_flow_guards_elided_total")
}

fn violations(cache: &MTCache) -> u64 {
    cache
        .metrics()
        .snapshot()
        .counter("rcc_flow_interval_violations_total")
}

#[test]
fn always_pass_guard_is_elided_with_identical_results() {
    let cache = rig();
    // bound 30 s > H = 13 s: the guard can never fail under healthy
    // replication, so the elided plan reads the cached view directly.
    const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)";
    let off = cache.execute(Q).unwrap();
    assert_eq!(off.guards.len(), 1, "guarded plan evaluates its guard");
    assert!(!off.used_remote);

    cache.set_elide_guards(true);
    let on = cache.execute(Q).unwrap();
    assert_eq!(on.rows, off.rows, "elision must not change results");
    assert!(!on.used_remote);
    assert!(
        on.guards.is_empty(),
        "elided plan evaluates no guard, got {:?}",
        on.guards
    );
    assert!(elided_total(&cache) >= 1, "elision metric must move");
    assert_eq!(violations(&cache), 0, "healthy replication: no escapes");
}

#[test]
fn never_pass_guard_collapses_to_the_remote_arm() {
    let cache = rig();
    // bound 1 s < delay 2 s: no replica can ever satisfy it; both modes
    // must answer from the back-end.
    const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 1 SEC ON (t)";
    let off = cache.execute(Q).unwrap();
    assert!(off.used_remote, "sub-delay bound must go remote");

    cache.set_elide_guards(true);
    let on = cache.execute(Q).unwrap();
    assert_eq!(on.rows, off.rows);
    assert!(on.used_remote, "collapsed plan still reads the back-end");
    assert!(on.guards.is_empty(), "no guard left to evaluate");
}

#[test]
fn contingent_guard_survives_elision() {
    let cache = rig();
    cache.set_elide_guards(true);
    // 2 s ≤ 5 s ≤ 13 s: statically undecided, the runtime check must stay.
    let r = cache
        .execute("SELECT v FROM t WHERE a = 7 CURRENCY BOUND 5 SEC ON (t)")
        .unwrap();
    assert_eq!(
        r.guards.len(),
        1,
        "contingent guard must still be evaluated"
    );
}

#[test]
fn toggling_elision_invalidates_cached_plans() {
    let cache = rig();
    const Q: &str = "SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)";
    cache.execute(Q).unwrap();
    let r = cache.execute(Q).unwrap();
    assert!(r.stats.plan_cache_hit, "steady state: plan reused");

    // The toggle must invalidate: the very next execution recompiles and
    // serves the elided plan (no guard observations).
    cache.set_elide_guards(true);
    let r = cache.execute(Q).unwrap();
    assert!(!r.stats.plan_cache_hit, "toggle must force a recompile");
    assert!(r.guards.is_empty());

    // ... and back off again.
    cache.set_elide_guards(false);
    let r = cache.execute(Q).unwrap();
    assert!(!r.stats.plan_cache_hit);
    assert_eq!(r.guards.len(), 1);
}

#[test]
fn explain_flow_reports_one_row_per_plan_node() {
    let cache = rig();
    let r = cache
        .execute("EXPLAIN FLOW SELECT v FROM t WHERE a = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    let cols: Vec<&str> = r.schema.columns().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(cols, ["operator", "interval", "verdict", "decision"]);
    assert!(!r.rows.is_empty(), "one row per plan node");
    let cells: Vec<String> = r
        .rows
        .iter()
        .flat_map(|row| row.values().iter())
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            other => panic!("EXPLAIN FLOW emits strings, got {other:?}"),
        })
        .collect();
    let all = cells.join("\n");
    assert!(
        all.contains("always-pass"),
        "30 s bound beats the 13 s envelope:\n{all}"
    );
    assert!(all.contains("elide-local"), "decision column:\n{all}");
    assert!(r.warnings[0].starts_with("flow:"), "{:?}", r.warnings);
    // EXPLAIN FLOW analyzes, it does not execute
    assert!(r.guards.is_empty());
}

#[test]
fn explain_flow_works_through_a_session_and_is_uncached() {
    let cache = rig();
    let mut session = cache.session();
    // 5 s sits inside the (2 s, 13 s] envelope: statically undecided,
    // so the analysis must keep the runtime guard.
    let r = session
        .execute("EXPLAIN FLOW SELECT v FROM t WHERE a = 7 CURRENCY BOUND 5 SEC ON (t)")
        .unwrap();
    let all: Vec<String> = r
        .rows
        .iter()
        .map(|row| format!("{:?}", row.values()))
        .collect();
    let all = all.join("\n");
    assert!(all.contains("contingent"), "{all}");
    assert!(all.contains("keep"), "{all}");
}
