//! DDL/DML surface tests for the cache server: full SQL-scripted setup
//! (including `CREATE REGION`), forwarded DML semantics, and the
//! query-result cache.

use rcc_common::{Duration, Error, Value};
use rcc_mtcache::{MTCache, QueryResultCache};

#[test]
fn fully_sql_scripted_setup() {
    // everything through SQL — no programmatic setup calls at all
    let cache = MTCache::new();
    for stmt in [
        "CREATE TABLE inv (sku INT, qty INT, PRIMARY KEY (sku))",
        "INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)",
        "CREATE REGION warehouse INTERVAL 10 SEC DELAY 2 SEC",
        "CREATE CACHED VIEW inv_v REGION warehouse AS SELECT sku, qty FROM inv",
    ] {
        cache
            .execute(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    }
    cache.analyze("inv").unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    let r = cache
        .execute("SELECT qty FROM inv WHERE sku = 2 CURRENCY BOUND 30 SEC ON (inv)")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int(20));
    assert!(!r.used_remote);
}

#[test]
fn create_region_duplicate_rejected() {
    let cache = MTCache::new();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    let err = cache
        .execute("CREATE REGION r INTERVAL 9 SEC DELAY 1 SEC")
        .unwrap_err();
    assert!(matches!(err, Error::AlreadyExists(_)));
}

#[test]
fn insert_variants_and_errors() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, b VARCHAR, c FLOAT, PRIMARY KEY (a))")
        .unwrap();
    // full-row insert, multi-row
    cache
        .execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5)")
        .unwrap();
    // column-list insert: missing column becomes NULL
    cache
        .execute("INSERT INTO t (a, b) VALUES (3, 'z')")
        .unwrap();
    let r = cache.execute("SELECT c FROM t WHERE a = 3").unwrap();
    assert!(r.rows[0].get(0).is_null());
    // negative literals
    cache
        .execute("INSERT INTO t VALUES (4, 'n', -2.5)")
        .unwrap();
    // arity mismatch
    assert!(cache.execute("INSERT INTO t (a, b) VALUES (5)").is_err());
    // duplicate key propagates a storage error
    assert!(cache
        .execute("INSERT INTO t VALUES (1, 'dup', 0.0)")
        .is_err());
    // non-literal values rejected
    assert!(cache
        .execute("INSERT INTO t VALUES (6, 'e', a + 1)")
        .is_err());
}

#[test]
fn update_with_expressions_and_no_match() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    cache
        .execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        .unwrap();
    // expression referencing the row
    cache
        .execute("UPDATE t SET v = v * 2 + 1 WHERE a = 1")
        .unwrap();
    let r = cache.execute("SELECT v FROM t WHERE a = 1").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int(21));
    // predicate matching nothing is a no-op, not an error
    cache.execute("UPDATE t SET v = 0 WHERE a = 999").unwrap();
    // unqualified update (all rows)
    cache.execute("UPDATE t SET v = 7").unwrap();
    let r = cache.execute("SELECT v FROM t ORDER BY 1").unwrap();
    assert!(r.rows.iter().all(|row| row.get(0) == &Value::Int(7)));
    // unknown column in assignment
    assert!(cache.execute("UPDATE t SET zz = 1").is_err());
}

#[test]
fn delete_with_in_list_and_unqualified() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..10 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    cache.execute("DELETE FROM t WHERE a IN (1, 3, 5)").unwrap();
    assert_eq!(cache.execute("SELECT a FROM t").unwrap().rows.len(), 7);
    cache.execute("DELETE FROM t").unwrap();
    assert!(cache.execute("SELECT a FROM t").unwrap().rows.is_empty());
}

#[test]
fn create_index_makes_backend_range_queries_cheap() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v FLOAT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..500 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {})", i as f64 / 2.0))
            .unwrap();
    }
    cache.execute("CREATE INDEX ix_v ON t (v)").unwrap();
    cache.analyze("t").unwrap();
    // the catalog now advertises the index and the master table has it
    let meta = cache.catalog().table("t").unwrap();
    assert!(meta.index_on("v").is_some());
    let r = cache
        .execute("SELECT a FROM t WHERE v BETWEEN 10.0 AND 12.0")
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    // duplicate index name rejected
    assert!(cache.execute("CREATE INDEX ix_v ON t (a)").is_err());
    // unknown column rejected
    assert!(cache.execute("CREATE INDEX ix_zz ON t (zz)").is_err());
}

#[test]
fn cached_view_ddl_validation() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))")
        .unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    // must retain the key
    assert!(cache
        .execute("CREATE CACHED VIEW v1 REGION r AS SELECT b FROM t")
        .is_err());
    // unknown region
    assert!(cache
        .execute("CREATE CACHED VIEW v2 REGION ghost AS SELECT a, b FROM t")
        .is_err());
    // joins not allowed in view definitions
    assert!(cache
        .execute("CREATE CACHED VIEW v3 REGION r AS SELECT x.a FROM t x, t y WHERE x.a = y.a")
        .is_err());
    // predicate must be a single-column range
    assert!(cache
        .execute("CREATE CACHED VIEW v4 REGION r AS SELECT a, b FROM t WHERE a < 5 AND b > 2")
        .is_err());
    // a valid selection view works and its predicate column must be retained
    cache
        .execute("CREATE CACHED VIEW v5 REGION r AS SELECT a, b FROM t WHERE a < 100")
        .unwrap();
    // duplicate view name
    assert!(cache
        .execute("CREATE CACHED VIEW v5 REGION r AS SELECT a, b FROM t")
        .is_err());
}

#[test]
fn qcache_distinguishes_queries_and_clears() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        .unwrap();
    cache.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    let qc = QueryResultCache::new();
    let q1 = "SELECT a FROM t WHERE a = 1 CURRENCY BOUND 60 SEC ON (t)";
    let q2 = "SELECT a FROM t WHERE a = 2 CURRENCY BOUND 60 SEC ON (t)";
    qc.execute(&cache, q1).unwrap();
    qc.execute(&cache, q2).unwrap();
    assert_eq!(qc.len(), 2);
    assert_eq!(qc.stats(), (0, 2));
    qc.execute(&cache, q1).unwrap();
    assert_eq!(qc.stats(), (1, 2));
    qc.clear();
    assert!(qc.is_empty());
    // queries without a clause (bound 0) are never served from the cache
    let hits_before = qc.stats().0;
    let q3 = "SELECT a FROM t WHERE a = 1";
    qc.execute(&cache, q3).unwrap();
    qc.execute(&cache, q3).unwrap();
    assert_eq!(qc.stats().0, hits_before, "no hits for bound-0 queries");
    assert!(qc.is_empty(), "bound-0 results are not stored either");
}

#[test]
fn qcache_bounds_capacity_with_lru_eviction() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        .unwrap();
    cache
        .execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        .unwrap();
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    let qc = QueryResultCache::with_capacity(2);
    assert_eq!(qc.capacity(), 2);
    let q = |i: i64| format!("SELECT a FROM t WHERE a = {i} CURRENCY BOUND 60 SEC ON (t)");
    qc.execute(&cache, &q(1)).unwrap();
    qc.execute(&cache, &q(2)).unwrap();
    // touch q1 so q2 is the LRU victim when q3 arrives
    qc.execute(&cache, &q(1)).unwrap();
    qc.execute(&cache, &q(3)).unwrap();
    assert_eq!(qc.len(), 2, "capacity bound holds");
    let misses_before = qc.stats().1;
    qc.execute(&cache, &q(1)).unwrap();
    qc.execute(&cache, &q(3)).unwrap();
    assert_eq!(qc.stats().1, misses_before, "recently used entries survive");
    qc.execute(&cache, &q(2)).unwrap();
    assert_eq!(qc.stats().1, misses_before + 1, "LRU entry was evicted");
}

#[test]
fn qcache_memoizes_bound_across_expiry() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        .unwrap();
    cache.execute("INSERT INTO t VALUES (1)").unwrap();
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    let qc = QueryResultCache::new();
    let q = "SELECT a FROM t WHERE a = 1 CURRENCY BOUND 30 SEC ON (t)";
    let r1 = qc.execute(&cache, q).unwrap();
    // let the stored result expire: recompute must go through the full
    // pipeline again (a miss) but reuse the memoized bound
    cache.advance(Duration::from_secs(60)).unwrap();
    let r2 = qc.execute(&cache, q).unwrap();
    assert_eq!(qc.stats(), (0, 2), "expired entry recomputes");
    assert_eq!(r1.rows, r2.rows);
    // and a prompt re-execution is a hit again
    qc.execute(&cache, q).unwrap();
    assert_eq!(qc.stats(), (1, 2));
}

#[test]
fn dml_on_unknown_table_fails_cleanly() {
    let cache = MTCache::new();
    assert!(matches!(
        cache.execute("INSERT INTO ghost VALUES (1)"),
        Err(Error::NotFound(_))
    ));
    assert!(matches!(
        cache.execute("UPDATE ghost SET a = 1"),
        Err(Error::NotFound(_))
    ));
    assert!(matches!(
        cache.execute("DELETE FROM ghost"),
        Err(Error::NotFound(_))
    ));
}

#[test]
fn drop_cached_view_ends_subscription_and_recompiles_plans() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    for i in 0..20 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    const Q: &str = "SELECT v FROM t WHERE a = 3 CURRENCY BOUND 30 SEC ON (t)";
    let before = cache.execute(Q).unwrap();
    assert!(!before.used_remote, "view serves locally");

    cache.execute("DROP CACHED VIEW t_v").unwrap();
    assert!(cache.catalog().view("t_v").is_err());
    assert!(!cache.cache_storage().contains("t_v"));

    // the cached plan referencing the dropped view must NOT be reused
    let after = cache.execute(Q).unwrap();
    assert!(
        after.used_remote,
        "no view left → remote: {}",
        after.plan_explain
    );
    assert_eq!(after.rows[0].get(0), &Value::Int(3));

    // replication keeps working for remaining subscriptions (none) and the
    // agent survives future cycles
    cache.execute("UPDATE t SET v = 99 WHERE a = 3").unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    // dropping again fails cleanly; re-creating works and re-populates
    assert!(cache.execute("DROP CACHED VIEW t_v").is_err());
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();
    let back = cache.execute(Q).unwrap();
    assert!(!back.used_remote);
    assert_eq!(
        back.rows[0].get(0),
        &Value::Int(99),
        "recreated view caught up"
    );
}

#[test]
fn dropping_one_view_leaves_siblings_replicating() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    cache.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW v1 REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW v2 REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(10)).unwrap();
    cache.execute("DROP CACHED VIEW v1").unwrap();
    cache.execute("UPDATE t SET v = 77 WHERE a = 1").unwrap();
    cache.advance(Duration::from_secs(10)).unwrap();
    // v2 still follows the master
    let v2 = cache.cache_storage().table("v2").unwrap();
    assert_eq!(
        v2.snapshot()
            .get(&[rcc_common::Value::Int(1)])
            .unwrap()
            .get(1),
        &Value::Int(77)
    );
}
