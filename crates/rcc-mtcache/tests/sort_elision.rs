//! Sort elision through delivered order properties: `ORDER BY` a clustered
//! key the scan already delivers in order needs no Sort operator.

use rcc_common::Duration;
use rcc_mtcache::MTCache;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    for i in (0..200).rev() {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {})", 199 - i))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

#[test]
fn clustered_order_by_skips_the_sort() {
    let cache = rig();
    // local plan: clustered range scan on `a` delivers ascending `a`
    let sql = "SELECT a, v FROM t WHERE a < 50 ORDER BY a CURRENCY BOUND 30 SEC ON (t)";
    let opt = cache.explain(sql, &HashMap::new()).unwrap();
    // NOTE: the local branch is under a SwitchUnion, which gives no order
    // guarantee (the remote branch could return anything) — so elision must
    // NOT fire for guarded plans...
    let guarded_plan = opt.plan.explain();
    assert!(
        guarded_plan.contains("Sort"),
        "guarded plans keep the sort:\n{guarded_plan}"
    );

    // ...but the back-end role plan elides it
    use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
    let stmt = match rcc_sql::parse_statement("SELECT a, v FROM t WHERE a < 50 ORDER BY a").unwrap()
    {
        rcc_sql::Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    let opt = optimize(cache.catalog(), &graph, &OptimizerConfig::backend()).unwrap();
    let plan = opt.plan.explain();
    assert!(
        !plan.contains("Sort"),
        "clustered order already delivered:\n{plan}"
    );
}

#[test]
fn results_still_ordered_with_and_without_elision() {
    let cache = rig();
    for sql in [
        "SELECT a, v FROM t WHERE a < 50 ORDER BY a CURRENCY BOUND 30 SEC ON (t)",
        "SELECT a, v FROM t WHERE a < 50 ORDER BY a",
        "SELECT a, v FROM t WHERE a < 50 ORDER BY v", // non-key: real sort
        "SELECT a, v FROM t WHERE a < 50 ORDER BY a DESC", // desc: real sort
    ] {
        let r = cache.execute(sql).unwrap();
        assert_eq!(r.rows.len(), 50, "{sql}");
        let ord = if sql.contains("ORDER BY v") { 1 } else { 0 };
        let desc = sql.contains("DESC");
        for w in r.rows.windows(2) {
            if desc {
                assert!(w[0].get(ord) >= w[1].get(ord), "{sql}");
            } else {
                assert!(w[0].get(ord) <= w[1].get(ord), "{sql}");
            }
        }
    }
}
