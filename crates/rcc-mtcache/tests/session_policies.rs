//! Session-level violation-policy and display-surface tests.

use rcc_common::Duration;
use rcc_mtcache::{MTCache, ViolationPolicy};

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (a INT, v INT, PRIMARY KEY (a))")
        .unwrap();
    cache
        .execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        .unwrap();
    cache.analyze("t").unwrap();
    cache
        .execute("CREATE REGION r INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_v REGION r AS SELECT a, v FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();
    cache
}

const Q: &str = "SELECT v FROM t WHERE a = 1 CURRENCY BOUND 10 SEC ON (t)";

#[test]
fn session_serve_stale_policy_applies_to_its_queries() {
    let cache = rig();
    cache.set_backend_available(false);
    cache.set_region_stalled("r", true);
    cache.advance(Duration::from_secs(60)).unwrap();

    let mut strict = cache.session();
    assert!(strict.execute(Q).is_err(), "default session policy rejects");

    let mut lenient = cache.session();
    lenient.set_policy(ViolationPolicy::ServeStale);
    let r = lenient.execute(Q).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(!r.warnings.is_empty());

    // Each policy arm increments its own degradation counter.
    let snap = cache.metrics().snapshot();
    assert_eq!(
        snap.counter("rcc_policy_degradations_total{policy=\"reject\"}"),
        1,
        "strict session's rejection must be counted under the reject arm"
    );
    assert_eq!(
        snap.counter("rcc_policy_degradations_total{policy=\"serve_stale\"}"),
        1,
        "lenient session's stale answer must be counted under the serve_stale arm"
    );
}

#[test]
fn display_rows_truncates() {
    let cache = rig();
    let r = cache.execute("SELECT a, v FROM t ORDER BY a").unwrap();
    let shown = r.display_rows(1);
    assert!(shown.contains("a | v"));
    assert!(shown.contains("(2 rows total)"));
    let full = r.display_rows(10);
    assert!(!full.contains("rows total"));
}

#[test]
fn session_dml_and_ddl_pass_through() {
    let cache = rig();
    let mut session = cache.session();
    session.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    let r = session.execute("SELECT v FROM t WHERE a = 3").unwrap();
    assert_eq!(r.rows.len(), 1);
    session
        .execute("CREATE REGION r2 INTERVAL 5 SEC DELAY 1 SEC")
        .unwrap();
    assert!(cache.catalog().region_by_name("r2").is_ok());
}
