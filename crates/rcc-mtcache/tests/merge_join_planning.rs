//! Sort-property-driven merge joins: the back-end's clustered layouts
//! (customer on c_custkey, orders on (o_custkey, o_orderkey)) deliver the
//! join-key order for free, so the back-end optimizer can merge-join
//! without sorting — the paper's canonical plan-property example.

use rcc_common::Value;
use rcc_mtcache::paper::{paper_setup, warm_up};

#[test]
fn backend_uses_merge_join_when_clustered_orders_align() {
    let cache = paper_setup(0.005, 42).unwrap();
    warm_up(&cache).unwrap();
    // both scans are clustered ranges on the join columns thanks to the
    // transitive predicate (c_custkey <= K implies o_custkey <= K)
    let (_, rows) = cache
        .backend()
        .query(
            "SELECT c.c_custkey, o.o_orderkey FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 100",
        )
        .unwrap();
    assert!(!rows.is_empty());
    // and the result matches a hash-join ground truth computed by
    // restricting only one side (which breaks the order on the other)
    let (_, truth) = cache
        .backend()
        .query(
            "SELECT c.c_custkey, o.o_orderkey FROM customer c, orders o \
             WHERE o.o_custkey = c.c_custkey AND c.c_custkey <= 100",
        )
        .unwrap();
    let mut a = rows.clone();
    let mut b = truth.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn merge_join_results_match_across_selectivities() {
    let cache = paper_setup(0.005, 7).unwrap();
    warm_up(&cache).unwrap();
    for k in [1i64, 10, 100, 750] {
        let (_, rows) = cache
            .backend()
            .query(&format!(
                "SELECT c.c_custkey, o.o_totalprice FROM customer c, orders o \
                 WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= {k}"
            ))
            .unwrap();
        // every output key is within the bound and counts match a
        // two-step computation
        assert!(rows.iter().all(|r| r.get(0).as_int().unwrap() <= k));
        let (_, orders) = cache
            .backend()
            .query(&format!(
                "SELECT o_custkey FROM orders WHERE o_custkey <= {k}"
            ))
            .unwrap();
        assert_eq!(rows.len(), orders.len(), "k={k}");
    }
}

#[test]
fn merge_join_appears_in_backend_explain() {
    use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
    use std::collections::HashMap;
    let cache = paper_setup(0.005, 42).unwrap();
    warm_up(&cache).unwrap();
    let stmt = match rcc_sql::parse_statement(
        "SELECT c.c_custkey, o.o_orderkey FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 100",
    )
    .unwrap()
    {
        rcc_sql::Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    let opt = optimize(cache.catalog(), &graph, &OptimizerConfig::backend()).unwrap();
    let plan = opt.plan.explain();
    assert!(plan.contains("MergeJoin"), "expected a merge join:\n{plan}");
    assert!(!plan.contains("Sort"), "no sort enforcers needed:\n{plan}");
}

#[test]
fn no_order_no_merge_join() {
    use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
    use std::collections::HashMap;
    let cache = paper_setup(0.005, 42).unwrap();
    warm_up(&cache).unwrap();
    // joining on non-leading columns: no delivered order, hash join it is
    let stmt = match rcc_sql::parse_statement(
        "SELECT c.c_custkey FROM customer c, orders o WHERE c.c_nationkey = o.o_orderkey",
    )
    .unwrap()
    {
        rcc_sql::Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    let opt = optimize(cache.catalog(), &graph, &OptimizerConfig::backend()).unwrap();
    assert!(
        !opt.plan.explain().contains("MergeJoin"),
        "{}",
        opt.plan.explain()
    );
    let _ = Value::Int(0);
}
