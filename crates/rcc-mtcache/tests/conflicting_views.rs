//! The paper's *conflicting consistency property* scenario (Sec. 3.2.2):
//! "Suppose we have two (local) projection views of T that belong to
//! different currency regions ... and cover different subsets of columns
//! from T. A query that requires columns from both views could then be
//! computed by joining the two views. The delivered consistency property
//! for this plan would be {<R1, T>, <R2, T>}, which conflicts with our
//! consistency model."
//!
//! Our view matching requires a single view to cover *all* columns the
//! query needs from an operand, so the conflicting join is never even
//! generated — the rule is enforced structurally, and the query falls back
//! to the back-end.

use rcc_common::{Duration, RegionId, Value};
use rcc_mtcache::MTCache;
use rcc_optimizer::property::{DeliveredGroup, DeliveredProperty};
use rcc_optimizer::RegionTag;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (id INT, x INT, y INT, PRIMARY KEY (id))")
        .unwrap();
    for i in 0..50 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {}, {})", i * 2, i * 3))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .create_region("R1", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .create_region("R2", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    // two projection views of T, different column subsets, different regions
    cache
        .execute("CREATE CACHED VIEW t_x REGION r1 AS SELECT id, x FROM t")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_y REGION r2 AS SELECT id, y FROM t")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

#[test]
fn query_needing_both_column_subsets_goes_remote() {
    let cache = rig();
    // needs x AND y: neither view covers both → no conflicting join is
    // generated; the plan is remote and the answer correct
    let r = cache
        .execute("SELECT x, y FROM t WHERE id = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    assert!(r.used_remote, "plan: {}", r.plan_explain);
    assert!(!r.plan_explain.contains("t_x"), "{}", r.plan_explain);
    assert!(!r.plan_explain.contains("t_y"), "{}", r.plan_explain);
    assert_eq!(r.rows[0].get(0), &Value::Int(14));
    assert_eq!(r.rows[0].get(1), &Value::Int(21));
}

#[test]
fn queries_needing_one_subset_use_the_matching_view() {
    let cache = rig();
    let rx = cache
        .execute("SELECT x FROM t WHERE id = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    assert!(!rx.used_remote, "plan: {}", rx.plan_explain);
    assert!(rx.plan_explain.contains("t_x"), "{}", rx.plan_explain);
    let ry = cache
        .execute("SELECT y FROM t WHERE id = 7 CURRENCY BOUND 30 SEC ON (t)")
        .unwrap();
    assert!(!ry.used_remote, "plan: {}", ry.plan_explain);
    assert!(ry.plan_explain.contains("t_y"), "{}", ry.plan_explain);
}

#[test]
fn the_conflicting_property_itself_is_rejected() {
    // the hand-built property from the paper's example: operand T claimed
    // from two different regions
    let conflicting = DeliveredProperty {
        groups: vec![
            DeliveredGroup {
                tag: RegionTag::Region(RegionId(1)),
                operands: [0u32].into_iter().collect(),
            },
            DeliveredGroup {
                tag: RegionTag::Region(RegionId(2)),
                operands: [0u32].into_iter().collect(),
            },
        ],
    };
    assert!(conflicting.is_conflicting());
    let req = rcc_optimizer::CCConstraint::tight_default([0u32]);
    assert!(!conflicting.satisfies(&req));
    assert!(conflicting.violates(&req));
    let _ = HashMap::<String, Value>::new();
}
