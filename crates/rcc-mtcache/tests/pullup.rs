//! The SwitchUnion pull-up extension (the paper's Sec. 3.2.3 future work:
//! "SwitchUnion operators are generated at the leaf level but they can
//! always be propagated upwards and adjacent SwitchUnion operators can be
//! merged"). With pull-up enabled, a multi-table consistency class whose
//! views share one region is answered by a single guard over the whole
//! local join.

use rcc_common::{Duration, Value};
use rcc_mtcache::MTCache;
use rcc_optimizer::optimize::PlanChoice;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE books (isbn INT, title VARCHAR, PRIMARY KEY (isbn))")
        .unwrap();
    cache
        .execute("CREATE TABLE reviews (rid INT, isbn INT, rating INT, PRIMARY KEY (rid))")
        .unwrap();
    for i in 1..=20 {
        cache
            .execute(&format!("INSERT INTO books VALUES ({i}, 'B{i}')"))
            .unwrap();
        cache
            .execute(&format!(
                "INSERT INTO reviews VALUES ({i}, {}, {})",
                (i % 10) + 1,
                i % 5
            ))
            .unwrap();
    }
    cache.analyze("books").unwrap();
    cache.analyze("reviews").unwrap();
    cache
        .create_region("R", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW b_v REGION r AS SELECT isbn, title FROM books")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW r_v REGION r AS SELECT rid, isbn, rating FROM reviews")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

const E1: &str = "SELECT b.title, r.rating FROM books b, reviews r \
                  WHERE b.isbn = r.isbn CURRENCY BOUND 10 MIN ON (b, r)";

#[test]
fn without_pullup_multi_table_class_goes_remote() {
    // paper-prototype behaviour: per-leaf guards cannot promise mutual
    // consistency, so the class forces a remote plan
    let cache = rig();
    let opt = cache.explain(E1, &HashMap::new()).unwrap();
    assert!(
        matches!(
            opt.choice,
            PlanChoice::FullRemote | PlanChoice::RemoteFetchLocalJoin
        ),
        "{:?}",
        opt.choice
    );
}

#[test]
fn with_pullup_single_guard_serves_locally() {
    let cache = rig();
    cache.set_pullup_switch_union(true);
    let opt = cache.explain(E1, &HashMap::new()).unwrap();
    assert_eq!(
        opt.choice,
        PlanChoice::PulledUpSwitchUnion,
        "plan:\n{}",
        opt.plan.explain()
    );
    assert_eq!(opt.plan.guard_count(), 1, "exactly one guard over the join");

    let r = cache.execute(E1).unwrap();
    assert!(!r.used_remote);
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn pullup_results_match_remote_truth() {
    let cache = rig();
    let truth = cache.execute(E1).unwrap(); // without pullup: remote
    cache.set_pullup_switch_union(true);
    let local = cache.execute(E1).unwrap();
    let mut a = truth.rows.clone();
    let mut b = local.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn pullup_guard_still_fails_safe_when_stale() {
    let cache = rig();
    cache.set_pullup_switch_union(true);
    cache.set_region_stalled("R", true);
    cache.advance(Duration::from_secs(1200)).unwrap();
    cache
        .execute("UPDATE books SET title = 'NEW' WHERE isbn = 1")
        .unwrap();
    let r = cache.execute(E1).unwrap();
    assert!(
        r.used_remote,
        "stale region → remote branch of the pulled-up union"
    );
    assert!(
        r.rows.iter().any(|row| row.get(0) == &Value::from("NEW")),
        "remote sees the update"
    );
}

#[test]
fn pullup_not_applicable_across_regions() {
    // views in different regions: pull-up cannot manufacture consistency
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE a (id INT, PRIMARY KEY (id))")
        .unwrap();
    cache
        .execute("CREATE TABLE b (id INT, PRIMARY KEY (id))")
        .unwrap();
    cache.execute("INSERT INTO a VALUES (1)").unwrap();
    cache.execute("INSERT INTO b VALUES (1)").unwrap();
    cache.analyze("a").unwrap();
    cache.analyze("b").unwrap();
    cache
        .create_region("R1", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .create_region("R2", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW a_v REGION r1 AS SELECT id FROM a")
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW b_v REGION r2 AS SELECT id FROM b")
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache.set_pullup_switch_union(true);
    let opt = cache
        .explain(
            "SELECT a.id FROM a, b WHERE a.id = b.id CURRENCY BOUND 1 MIN ON (a, b)",
            &HashMap::new(),
        )
        .unwrap();
    assert_ne!(opt.choice, PlanChoice::PulledUpSwitchUnion);
    assert!(matches!(
        opt.choice,
        PlanChoice::FullRemote | PlanChoice::RemoteFetchLocalJoin
    ));
}
