//! Thread-safety smoke tests: concurrent readers against the cache while
//! DML commits at the back-end. Replication runs on the simulated clock
//! (advanced from the main thread between phases), so these tests exercise
//! lock discipline rather than wall-clock races.

use rcc_common::{Duration, Value};
use rcc_mtcache::paper::{paper_setup, warm_up};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_readers_and_writers() {
    let cache = Arc::new(paper_setup(0.005, 42).unwrap());
    warm_up(&cache).unwrap();

    let mut handles = Vec::new();
    // 4 reader threads hammering bounded and unbounded reads
    for t in 0..4 {
        let cache = Arc::clone(&cache);
        handles.push(thread::spawn(move || {
            for i in 0..50 {
                let key = (t * 50 + i) % 700 + 1;
                let bounded = cache
                    .execute(&format!(
                        "SELECT c_acctbal FROM customer WHERE c_custkey = {key} \
                         CURRENCY BOUND 60 SEC ON (customer)"
                    ))
                    .unwrap();
                assert_eq!(bounded.rows.len(), 1);
                let current = cache
                    .execute(&format!(
                        "SELECT c_acctbal FROM customer WHERE c_custkey = {key}"
                    ))
                    .unwrap();
                assert_eq!(current.rows.len(), 1);
            }
        }));
    }
    // 2 writer threads committing updates at the back-end
    for t in 0..2 {
        let cache = Arc::clone(&cache);
        handles.push(thread::spawn(move || {
            for i in 0..40 {
                let key = (t * 40 + i) % 700 + 1;
                cache
                    .execute(&format!(
                        "UPDATE customer SET c_acctbal = {}.0 WHERE c_custkey = {key}",
                        i
                    ))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }

    // replication catches up afterwards and bounded reads converge
    cache.advance(Duration::from_secs(60)).unwrap();
    let bounded = cache
        .execute(
            "SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
             CURRENCY BOUND 60 SEC ON (customer)",
        )
        .unwrap();
    let current = cache
        .execute("SELECT c_acctbal FROM customer WHERE c_custkey = 1")
        .unwrap();
    assert_eq!(bounded.rows[0].get(0), current.rows[0].get(0));
}

#[test]
fn concurrent_plan_cache_access() {
    let cache = Arc::new(paper_setup(0.002, 7).unwrap());
    warm_up(&cache).unwrap();
    let mut handles = Vec::new();
    for _ in 0..6 {
        let cache = Arc::clone(&cache);
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let r = cache
                    .execute(
                        "SELECT c_name FROM customer WHERE c_custkey = 3 \
                         CURRENCY BOUND 60 SEC ON (customer)",
                    )
                    .unwrap();
                assert_eq!(r.rows[0].get(0), &Value::from("Customer#000000003"));
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
    let (hits, misses) = cache.plan_cache().stats();
    assert!(hits >= 290, "hits={hits} misses={misses}");
}
