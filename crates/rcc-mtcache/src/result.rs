//! Query results.

use rcc_common::{Row, Schema, TableId};
use rcc_executor::context::GuardObservation;
use rcc_executor::PhaseTimings;
use rcc_obs::QueryStats;
use rcc_optimizer::optimize::PlanChoice;

/// The outcome of one query at the cache: rows plus full provenance — which
/// plan shape won, what every currency guard observed, and the per-phase
/// timings the overhead experiments report.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Shape of the chosen plan (paper plans 1–5).
    pub plan_choice: PlanChoice,
    /// EXPLAIN rendering of the executed plan.
    pub plan_explain: String,
    /// Estimated optimizer cost of the chosen plan.
    pub est_cost: f64,
    /// Every currency-guard evaluation during execution.
    pub guards: Vec<GuardObservation>,
    /// Did execution actually contact the back-end?
    pub used_remote: bool,
    /// Human-readable warnings (e.g. stale data served under a relaxed
    /// violation policy).
    pub warnings: Vec<String>,
    /// Setup / run / shutdown wall-time breakdown.
    pub timings: PhaseTimings,
    /// Base tables the query read (for timeline-consistency bookkeeping).
    pub tables: Vec<TableId>,
    /// Per-phase statement statistics (parse → remote-ship pipeline).
    pub stats: QueryStats,
}

impl QueryResult {
    /// Number of guards that chose their local branch.
    pub fn local_branches(&self) -> usize {
        self.guards.iter().filter(|g| g.chose_local).count()
    }

    /// Number of guards that fell back to the remote branch.
    pub fn remote_branches(&self) -> usize {
        self.guards.iter().filter(|g| !g.chose_local).count()
    }

    /// Pretty-print rows for examples and debugging.
    pub fn display_rows(&self, max: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let _ = writeln!(out, "{}", names.join(" | "));
        for row in self.rows.iter().take(max) {
            let vals: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{}", vals.join(" | "));
        }
        if self.rows.len() > max {
            let _ = writeln!(out, "... ({} rows total)", self.rows.len());
        }
        out
    }
}
