//! The back-end server: executes shipped SQL against the master database.

use parking_lot::Mutex;
use rcc_backend::MasterDb;
use rcc_catalog::Catalog;
use rcc_common::{Error, Result, Row, Schema};
use rcc_executor::{execute_plan, ExecContext, RemoteService};
use rcc_obs::{MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The back-end database server. Parses, plans (in back-end role: every
/// table is local and current) and executes SQL shipped from the cache,
/// returning the result rows — the paper's remote-query path.
#[derive(Debug)]
pub struct BackendServer {
    master: Arc<MasterDb>,
    catalog: Arc<Catalog>,
    config: OptimizerConfig,
    /// Simulated network latency: fixed microseconds per round trip.
    latency_fixed_us: AtomicU64,
    /// Simulated network latency: microseconds per KiB of result shipped.
    latency_per_kib_us: AtomicU64,
    /// Optional registry for remote-latency and wire-byte metrics.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl BackendServer {
    /// Wrap a master database.
    pub fn new(master: Arc<MasterDb>) -> BackendServer {
        let catalog = Arc::clone(master.catalog());
        BackendServer {
            master,
            catalog,
            config: OptimizerConfig::backend(),
            latency_fixed_us: AtomicU64::new(0),
            latency_per_kib_us: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Publish remote-call latency and wire-byte metrics to `registry`.
    pub fn set_metrics(&self, registry: Arc<MetricsRegistry>) {
        registry.describe(
            "rcc_remote_latency_seconds",
            "Wall time of remote calls shipped from the cache to the back-end.",
        );
        registry.describe(
            "rcc_wire_bytes_encoded_total",
            "Result bytes serialized into the wire format at the back-end.",
        );
        registry.describe(
            "rcc_wire_bytes_decoded_total",
            "Wire-format bytes successfully decoded back into rows.",
        );
        *self.metrics.lock() = Some(registry);
    }

    /// Enable a simulated network: every remote call busy-waits for
    /// `fixed_us` plus `per_kib_us` per KiB of result bytes. The in-process
    /// back-end is otherwise as fast as local execution, which would
    /// invert the local/remote cost relationship the paper's overhead
    /// experiment (Sec. 4.3) depends on. Wall-clock only; the simulated
    /// replication clock is unaffected.
    pub fn set_simulated_network(&self, fixed_us: u64, per_kib_us: u64) {
        self.latency_fixed_us.store(fixed_us, Ordering::Relaxed);
        self.latency_per_kib_us.store(per_kib_us, Ordering::Relaxed);
    }

    fn apply_latency(&self, result_bytes: usize) {
        let fixed = self.latency_fixed_us.load(Ordering::Relaxed);
        let per_kib = self.latency_per_kib_us.load(Ordering::Relaxed);
        if fixed == 0 && per_kib == 0 {
            return;
        }
        let total_us = fixed + per_kib * (result_bytes as u64 / 1024);
        let deadline = std::time::Instant::now() + std::time::Duration::from_micros(total_us);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// The underlying master database.
    pub fn master(&self) -> &Arc<MasterDb> {
        &self.master
    }

    /// Parse, optimize and execute a SELECT against the master tables.
    pub fn query(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.query_with_bytes(sql)
            .map(|(schema, rows, _)| (schema, rows))
    }

    /// [`BackendServer::query`], also returning the wire-payload size in
    /// bytes — what the cache's per-query byte accounting consumes.
    pub fn query_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        let metrics = self.metrics.lock().clone();
        let started = std::time::Instant::now();
        let out = self.query_inner(sql, metrics.as_deref());
        if let Some(m) = &metrics {
            m.histogram("rcc_remote_latency_seconds", &[], DEFAULT_LATENCY_BUCKETS)
                .observe(started.elapsed().as_secs_f64());
        }
        out
    }

    fn query_inner(
        &self,
        sql: &str,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<(Schema, Vec<Row>, u64)> {
        let stmt = parse_statement(sql)?;
        let select = match stmt {
            Statement::Select(s) => *s,
            other => {
                return Err(Error::Remote(format!(
                    "back-end remote interface only accepts SELECT, got {other:?}"
                )))
            }
        };
        if select.currency.is_some() {
            return Err(Error::Remote(
                "currency clauses must not reach the back-end (it always serves the latest snapshot)"
                    .into(),
            ));
        }
        let graph = bind_select(&self.catalog, &select, &HashMap::new())?;
        let optimized = optimize(&self.catalog, &graph, &self.config)?;
        let ctx = ExecContext::new(
            Arc::clone(self.master.storage()),
            None,
            Arc::clone(self.master.clock()),
        );
        let result = execute_plan(&optimized.plan, &ctx)?;
        // results really travel through the wire format, so the latency
        // model and byte accounting see true serialized sizes; the decoded
        // rows are returned (the planner-side schema keeps its binding
        // qualifiers, which the wire format does not carry)
        let payload = rcc_executor::wire::encode_result(&result.schema, &result.rows);
        let bytes = payload.len() as u64;
        if let Some(m) = metrics {
            m.counter("rcc_wire_bytes_encoded_total", &[]).add(bytes);
        }
        self.apply_latency(payload.len());
        let (_, rows) = rcc_executor::wire::decode_result(payload)?;
        if let Some(m) = metrics {
            m.counter("rcc_wire_bytes_decoded_total", &[]).add(bytes);
        }
        Ok((result.schema, rows, bytes))
    }
}

impl RemoteService for BackendServer {
    fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.query(sql)
    }

    fn execute_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        self.query_with_bytes(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{SimClock, TableId, Value};
    use rcc_tpcd::{customer_meta, orders_meta, TpcdGenerator};

    fn backend() -> BackendServer {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(catalog.clone(), Arc::new(clock)));
        let cm = customer_meta(TableId(1));
        let om = orders_meta(TableId(2));
        master.create_table(&cm).unwrap();
        master.create_table(&om).unwrap();
        catalog.register_table(cm).unwrap();
        catalog.register_table(om).unwrap();
        let gen = TpcdGenerator::new(0.001, 42);
        gen.load_into(|t, rows| master.bulk_load(t, rows)).unwrap();
        catalog.set_stats("customer", master.compute_stats("customer").unwrap());
        catalog.set_stats("orders", master.compute_stats("orders").unwrap());
        BackendServer::new(master)
    }

    #[test]
    fn point_query() {
        let b = backend();
        let (schema, rows) = b
            .query("SELECT c_name FROM customer WHERE c_custkey = 5")
            .unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).as_str().unwrap(), "Customer#000000005");
    }

    #[test]
    fn join_query() {
        let b = backend();
        let (_, rows) = b
            .query(
                "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
                 WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 3",
            )
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() <= 3 * 15);
    }

    #[test]
    fn aggregate_query() {
        let b = backend();
        let (_, rows) = b.query("SELECT COUNT(*) AS n FROM customer").unwrap();
        assert_eq!(rows[0].get(0), &Value::Int(150));
    }

    #[test]
    fn rejects_non_select_and_currency() {
        let b = backend();
        assert!(matches!(
            b.query("DELETE FROM customer"),
            Err(Error::Remote(_))
        ));
        assert!(matches!(
            b.query("SELECT c_name FROM customer CURRENCY BOUND 5 SEC ON (customer)"),
            Err(Error::Remote(_))
        ));
    }

    #[test]
    fn secondary_index_range() {
        let b = backend();
        let (_, rows) = b
            .query("SELECT c_custkey FROM customer WHERE c_acctbal BETWEEN 0.0 AND 1000.0")
            .unwrap();
        assert!(!rows.is_empty());
    }
}
