//! The back-end server: executes shipped SQL against the master database.

use bytes::Bytes;
use parking_lot::Mutex;
use rcc_backend::MasterDb;
use rcc_catalog::Catalog;
use rcc_common::{Error, NetworkModel, Result, Row, Schema};
use rcc_executor::{ExecContext, RemoteService};
use rcc_obs::{MetricsRegistry, TraceHandle, DEFAULT_LATENCY_BUCKETS};
use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;
use std::sync::Arc;

/// The back-end database server. Parses, plans (in back-end role: every
/// table is local and current) and executes SQL shipped from the cache,
/// returning the result rows — the paper's remote-query path.
#[derive(Debug)]
pub struct BackendServer {
    master: Arc<MasterDb>,
    catalog: Arc<Catalog>,
    config: OptimizerConfig,
    /// Who pays for the round trip: simulated latency knobs, or a real
    /// transport (in which case no artificial delay is ever injected).
    network: Mutex<NetworkModel>,
    /// Optional registry for remote-latency and wire-byte metrics.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl BackendServer {
    /// Wrap a master database.
    pub fn new(master: Arc<MasterDb>) -> BackendServer {
        let catalog = Arc::clone(master.catalog());
        BackendServer {
            master,
            catalog,
            config: OptimizerConfig::backend(),
            network: Mutex::new(NetworkModel::default()),
            metrics: Mutex::new(None),
        }
    }

    /// Publish remote-call latency and wire-byte metrics to `registry`.
    pub fn set_metrics(&self, registry: Arc<MetricsRegistry>) {
        registry.describe(
            "rcc_remote_latency_seconds",
            "Wall time of remote calls shipped from the cache to the back-end.",
        );
        registry.describe(
            "rcc_wire_bytes_encoded_total",
            "Result bytes serialized into the wire format at the back-end.",
        );
        registry.describe(
            "rcc_wire_bytes_decoded_total",
            "Wire-format bytes successfully decoded back into rows.",
        );
        *self.metrics.lock() = Some(registry);
    }

    /// Enable a simulated network: every remote call busy-waits for
    /// `fixed_us` plus `per_kib_us` per KiB of result bytes. The in-process
    /// back-end is otherwise as fast as local execution, which would
    /// invert the local/remote cost relationship the paper's overhead
    /// experiment (Sec. 4.3) depends on. Wall-clock only; the simulated
    /// replication clock is unaffected.
    ///
    /// Shorthand for [`BackendServer::set_network_model`] with
    /// [`NetworkModel::Simulated`]. Once the model is pinned to
    /// [`NetworkModel::Real`] (a TCP transport is serving this back-end),
    /// this call is ignored — real sockets already pay real latency and
    /// the simulation must never stack on top of them.
    pub fn set_simulated_network(&self, fixed_us: u64, per_kib_us: u64) {
        let mut model = self.network.lock();
        if *model == NetworkModel::Real {
            return;
        }
        *model = NetworkModel::Simulated {
            fixed_us,
            per_kib_us,
        };
    }

    /// Replace the network model outright. The TCP transport pins
    /// [`NetworkModel::Real`] here when it takes ownership of this
    /// back-end's traffic.
    pub fn set_network_model(&self, model: NetworkModel) {
        *self.network.lock() = model;
    }

    /// The current network model.
    pub fn network_model(&self) -> NetworkModel {
        *self.network.lock()
    }

    fn apply_latency(&self, result_bytes: usize) {
        let total_us = self.network.lock().delay_micros(result_bytes);
        if total_us == 0 {
            return;
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_micros(total_us);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// The underlying master database.
    pub fn master(&self) -> &Arc<MasterDb> {
        &self.master
    }

    /// Parse, optimize and execute a SELECT against the master tables.
    pub fn query(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.query_with_bytes(sql)
            .map(|(schema, rows, _)| (schema, rows))
    }

    /// [`BackendServer::query`], also returning the wire-payload size in
    /// bytes — what the cache's per-query byte accounting consumes.
    pub fn query_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        let metrics = self.metrics.lock().clone();
        let started = std::time::Instant::now();
        let out = self.query_inner(sql, metrics.as_deref());
        if let Some(m) = &metrics {
            m.histogram("rcc_remote_latency_seconds", &[], DEFAULT_LATENCY_BUCKETS)
                .observe(started.elapsed().as_secs_f64());
        }
        out
    }

    /// Parse, optimize and execute a SELECT, returning the result already
    /// serialized in the wire format — the payload a network transport
    /// ships verbatim. Simulated latency (if the model is
    /// [`NetworkModel::Simulated`]) is charged here, exactly once, so
    /// in-process and framed-TCP callers account the same way.
    pub fn query_wire(&self, sql: &str) -> Result<Bytes> {
        let metrics = self.metrics.lock().clone();
        let started = std::time::Instant::now();
        let out = self.run_select(sql, metrics.as_deref(), None);
        if let Some(m) = &metrics {
            m.histogram("rcc_remote_latency_seconds", &[], DEFAULT_LATENCY_BUCKETS)
                .observe(started.elapsed().as_secs_f64());
        }
        out.map(|(_, payload)| payload)
    }

    /// [`BackendServer::query_wire`], recording per-phase spans (named
    /// `backend:*`) on `trace` — the transport ships them back so the
    /// originating query's trace shows both sides of the wire.
    pub fn query_wire_traced(&self, sql: &str, trace: &TraceHandle) -> Result<Bytes> {
        let metrics = self.metrics.lock().clone();
        let started = std::time::Instant::now();
        let out = self.run_select(sql, metrics.as_deref(), Some(trace));
        if let Some(m) = &metrics {
            m.histogram("rcc_remote_latency_seconds", &[], DEFAULT_LATENCY_BUCKETS)
                .observe(started.elapsed().as_secs_f64());
        }
        out.map(|(_, payload)| payload)
    }

    fn query_inner(
        &self,
        sql: &str,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<(Schema, Vec<Row>, u64)> {
        let (schema, payload) = self.run_select(sql, metrics, None)?;
        let bytes = payload.len() as u64;
        let (_, rows) = rcc_executor::wire::decode_result(payload)?;
        if let Some(m) = metrics {
            m.counter("rcc_wire_bytes_decoded_total", &[]).add(bytes);
        }
        Ok((schema, rows, bytes))
    }

    /// The shared SELECT pipeline: plan, execute, serialize, charge
    /// simulated latency. Returns the planner-side schema (which keeps its
    /// binding qualifiers — the wire format does not carry them) alongside
    /// the encoded payload.
    fn run_select(
        &self,
        sql: &str,
        metrics: Option<&MetricsRegistry>,
        trace: Option<&TraceHandle>,
    ) -> Result<(Schema, Bytes)> {
        let span = |name: &str| trace.map(|t| t.span(name));
        let select = {
            let _s = span("backend:parse");
            let stmt = parse_statement(sql)?;
            match stmt {
                Statement::Select(s) => *s,
                other => {
                    return Err(Error::Remote(format!(
                        "back-end remote interface only accepts SELECT, got {other:?}"
                    )))
                }
            }
        };
        if select.currency.is_some() {
            return Err(Error::Remote(
                "currency clauses must not reach the back-end (it always serves the latest snapshot)"
                    .into(),
            ));
        }
        let optimized = {
            let _s = span("backend:plan");
            let graph = bind_select(&self.catalog, &select, &HashMap::new())?;
            optimize(&self.catalog, &graph, &self.config)?
        };
        let ctx = ExecContext::new(
            Arc::clone(self.master.storage()),
            None,
            Arc::clone(self.master.clock()),
        );
        let result = {
            let _s = span("backend:execute");
            rcc_executor::execute_plan_batched(&optimized.plan, &ctx)?
        };
        // results really travel through the wire format, so the latency
        // model and byte accounting see true serialized sizes; batches are
        // serialized straight from their column buffers
        let payload = {
            let _s = span("backend:encode");
            rcc_executor::wire::encode_batches(&result.schema, &result.batches)
        };
        if let Some(m) = metrics {
            m.counter("rcc_wire_bytes_encoded_total", &[])
                .add(payload.len() as u64);
        }
        self.apply_latency(payload.len());
        Ok((result.schema, payload))
    }
}

impl RemoteService for BackendServer {
    fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.query(sql)
    }

    fn execute_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        self.query_with_bytes(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{SimClock, TableId, Value};
    use rcc_tpcd::{customer_meta, orders_meta, TpcdGenerator};

    fn backend() -> BackendServer {
        let clock = SimClock::new();
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(catalog.clone(), Arc::new(clock)));
        let cm = customer_meta(TableId(1));
        let om = orders_meta(TableId(2));
        master.create_table(&cm).unwrap();
        master.create_table(&om).unwrap();
        catalog.register_table(cm).unwrap();
        catalog.register_table(om).unwrap();
        let gen = TpcdGenerator::new(0.001, 42);
        gen.load_into(|t, rows| master.bulk_load(t, rows)).unwrap();
        catalog.set_stats("customer", master.compute_stats("customer").unwrap());
        catalog.set_stats("orders", master.compute_stats("orders").unwrap());
        BackendServer::new(master)
    }

    #[test]
    fn point_query() {
        let b = backend();
        let (schema, rows) = b
            .query("SELECT c_name FROM customer WHERE c_custkey = 5")
            .unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).as_str().unwrap(), "Customer#000000005");
    }

    #[test]
    fn join_query() {
        let b = backend();
        let (_, rows) = b
            .query(
                "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
                 WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 3",
            )
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() <= 3 * 15);
    }

    #[test]
    fn aggregate_query() {
        let b = backend();
        let (_, rows) = b.query("SELECT COUNT(*) AS n FROM customer").unwrap();
        assert_eq!(rows[0].get(0), &Value::Int(150));
    }

    #[test]
    fn rejects_non_select_and_currency() {
        let b = backend();
        assert!(matches!(
            b.query("DELETE FROM customer"),
            Err(Error::Remote(_))
        ));
        assert!(matches!(
            b.query("SELECT c_name FROM customer CURRENCY BOUND 5 SEC ON (customer)"),
            Err(Error::Remote(_))
        ));
    }

    #[test]
    fn query_wire_payload_decodes_to_same_rows() {
        let b = backend();
        let sql = "SELECT c_name FROM customer WHERE c_custkey = 5";
        let payload = b.query_wire(sql).unwrap();
        let (_, wire_rows) = rcc_executor::wire::decode_result(payload).unwrap();
        let (_, rows) = b.query(sql).unwrap();
        assert_eq!(wire_rows, rows);
    }

    #[test]
    fn real_network_model_pins_out_simulation() {
        let b = backend();
        b.set_network_model(NetworkModel::Real);
        // once a real transport owns the traffic, the simulated knobs are
        // inert — no double-counted latency
        b.set_simulated_network(5_000_000, 1_000);
        assert_eq!(b.network_model(), NetworkModel::Real);
        let started = std::time::Instant::now();
        b.query("SELECT c_name FROM customer WHERE c_custkey = 5")
            .unwrap();
        assert!(started.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn simulated_model_applies_before_real_pin() {
        let b = backend();
        b.set_simulated_network(150, 20);
        assert!(b.network_model().is_simulated());
    }

    #[test]
    fn secondary_index_range() {
        let b = backend();
        let (_, rows) = b
            .query("SELECT c_custkey FROM customer WHERE c_acctbal BETWEEN 0.0 AND 1000.0")
            .unwrap();
        assert!(!rows.is_empty());
    }
}
