//! The MTCache server.

use crate::backend_server::BackendServer;
use crate::plan_cache::{CompiledQuery, ElidedPlan, PlanCache};
use crate::policy::ViolationPolicy;
use crate::result::QueryResult;
use crate::session::Session;
use parking_lot::{Mutex, RwLock};
use rcc_backend::{MasterDb, TableChange};
use rcc_catalog::{CachedViewDef, Catalog, CurrencyRegion, TableMeta};
use rcc_common::{
    AgentId, Clock, Column, Duration, Error, RegionId, Result, Row, ScanPool, Schema, SimClock,
    TableId, Timestamp, Value,
};
use rcc_executor::GuardObservation;
use rcc_executor::{
    execute_plan, execute_plan_analyzed, execute_plan_rows, ExecContext, ExecCounters,
    ExecutionResult, QueryMeter, RemoteService, DEFAULT_BATCH_ROWS, DEFAULT_MORSEL_ROWS,
};
use rcc_obs::{
    EventJournal, EventKind, MetricsRegistry, QueryPhase, QueryStats, TraceHandle, TraceRef,
    Tracer, DEFAULT_LATENCY_BUCKETS, DEFAULT_SLACK_BUCKETS, DEFAULT_STALENESS_BUCKETS,
};
use rcc_optimizer::cost::column_ranges;
use rcc_optimizer::optimize::{Optimized, PlanChoice};
use rcc_optimizer::{bind_select, optimize, BoundExpr, OptimizerConfig};
use rcc_replication::{DistributionAgent, ReplicationRuntime};
use rcc_robust::{Verdict, WorkloadReport};
use rcc_semantics::{summarize_template, TemplateSummary};
use rcc_sql::ast::TemplateDecl;
use rcc_sql::{parse_statement, Expr, SelectItem, SelectStmt, Statement, TableRef};
use rcc_storage::{
    DurableStore, RecoveredState, RecoveryStats, RowChange, StorageEngine, SyncPolicy, TableStats,
    WatermarkRecord,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

/// The mid-tier database cache.
///
/// Owns the whole rig: the back-end master database (with its replication
/// log and heartbeats), the cache-side storage holding cached views and
/// local heartbeat tables, the distribution agents on a simulated clock,
/// the shadow catalog, and the C&C-aware optimizer/executor pipeline.
#[derive(Debug)]
pub struct MTCache {
    clock: SimClock,
    clock_arc: Arc<dyn Clock>,
    catalog: Arc<Catalog>,
    master: Arc<MasterDb>,
    backend: Arc<BackendServer>,
    cache_storage: Arc<StorageEngine>,
    runtime: ReplicationRuntime,
    config: RwLock<OptimizerConfig>,
    /// When set, the executor's remote branch ships SQL through this
    /// service (e.g. a pooled TCP transport) instead of calling the
    /// in-process [`BackendServer`] directly.
    remote_override: RwLock<Option<Arc<dyn RemoteService>>>,
    plan_cache: Arc<PlanCache>,
    counters: Arc<ExecCounters>,
    metrics: Arc<MetricsRegistry>,
    tracer: Tracer,
    journal: EventJournal,
    backend_available: AtomicBool,
    next_agent: AtomicU32,
    next_region: AtomicU32,
    next_session: AtomicU64,
    /// Queries tracked by the currency SLO (delivered-staleness accounting
    /// ran for them).
    slo_queries: AtomicU64,
    /// SLO-tracked queries whose slack went negative *without* a
    /// sanctioned policy degradation — the compliance ratio's numerator
    /// complement.
    slo_unsanctioned: AtomicU64,
    /// Worker pool for morsel-driven parallel scans; `None` keeps every
    /// scan on the session thread (the default).
    scan_pool: RwLock<Option<Arc<ScanPool>>>,
    /// Target logical rows per column batch in the vectorized engine.
    batch_rows: AtomicUsize,
    /// When set, queries run on the row-at-a-time reference engine instead
    /// of the vectorized one — the A side of batched-vs-row comparisons.
    row_engine: AtomicBool,
    /// When set, newly compiled plans also store a guard-elided variant:
    /// guards the dataflow analysis certified as statically decided are
    /// removed (always-pass → local arm, never-pass → remote arm). Off by
    /// default; flipping it invalidates the plan cache.
    elide_guards: AtomicBool,
    /// Durable store behind the master (None = classic in-memory rig).
    durability: Option<Arc<DurableStore>>,
    /// State recovered at open, consumed by [`MTCache::finish_recovery`].
    recovered: Mutex<Option<RecoveredState>>,
    /// Watermarks recovered at open, consumed by
    /// [`MTCache::restore_watermarks`] once regions exist.
    pending_watermarks: Mutex<Vec<WatermarkRecord>>,
    /// Bound summaries of every declared transaction template, in
    /// declaration order.
    templates: RwLock<Vec<TemplateSummary>>,
    /// The robustness analyzer's latest workload report, recomputed on
    /// every `CREATE TEMPLATE` (the compile-time hook) and served by
    /// `AUDIT TEMPLATES` and [`MTCache::template_verdict`].
    robust_report: RwLock<WorkloadReport>,
}

/// Snapshot of the durability subsystem for `/healthz` and diagnostics.
#[derive(Debug, Clone)]
pub struct DurabilityStatus {
    /// WAL sync policy name (`always`, `group`, `never`).
    pub policy: &'static str,
    /// WAL size on disk in bytes.
    pub wal_bytes: u64,
    /// WAL records since the last checkpoint.
    pub wal_records: u64,
    /// Lifetime fsync count.
    pub wal_fsyncs: u64,
    /// Buffer-pool frames resident.
    pub bufpool_frames_in_use: u64,
    /// Buffer-pool frame budget.
    pub bufpool_capacity: u64,
    /// Lifetime buffer-pool evictions.
    pub bufpool_evictions: u64,
    /// Sim-clock seconds since the last checkpoint (None before the first).
    pub last_checkpoint_age_seconds: Option<f64>,
}

fn sync_policy_name(policy: SyncPolicy) -> &'static str {
    match policy {
        SyncPolicy::Always => "always",
        SyncPolicy::Group => "group",
        SyncPolicy::Never => "never",
    }
}

impl Default for MTCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MTCache {
    /// A fresh cache + back-end pair on a shared simulated clock starting
    /// at the epoch.
    pub fn new() -> MTCache {
        Self::build(None)
    }

    /// A cache whose back-end master is durable: commits are written ahead
    /// to `data_dir`'s WAL, and whatever a previous process left there is
    /// recovered. Call [`MTCache::finish_recovery`] after the schema is
    /// registered and initial data is loaded (and before the first logged
    /// transaction), then [`MTCache::restore_watermarks`] once regions and
    /// views exist.
    pub fn new_durable(data_dir: &Path, sync: SyncPolicy) -> Result<MTCache> {
        let (store, state) = DurableStore::open(data_dir, sync)?;
        Ok(Self::build(Some((store, state))))
    }

    fn build(durable: Option<(Arc<DurableStore>, RecoveredState)>) -> MTCache {
        let clock = SimClock::new();
        let clock_arc: Arc<dyn Clock> = Arc::new(clock.clone());
        let catalog = Arc::new(Catalog::new());
        let master = Arc::new(MasterDb::new(Arc::clone(&catalog), Arc::clone(&clock_arc)));
        let backend = Arc::new(BackendServer::new(Arc::clone(&master)));
        let runtime = ReplicationRuntime::new(clock.clone(), Arc::clone(&master));
        let metrics = Arc::new(MetricsRegistry::new());
        let counters = Arc::new(ExecCounters::default());
        counters.register_metrics(&metrics);
        backend.set_metrics(Arc::clone(&metrics));
        runtime.set_metrics(Arc::clone(&metrics));
        let plan_cache = Arc::new(PlanCache::new());
        let cache_storage = Arc::new(StorageEngine::new());
        let tracer = Tracer::default();
        let journal = EventJournal::new(256);
        journal.set_metrics(Arc::clone(&metrics));
        Self::register_cache_metrics(&metrics, &plan_cache, &master, &cache_storage);
        Self::register_telemetry_metrics(&metrics, &tracer);
        let (durability, recovered) = match durable {
            Some((store, state)) => {
                // Attach before any logged transaction: recovery replay
                // goes through `MasterDb::recover`, which writes the log
                // directly and never re-appends to the WAL.
                master.attach_durability(Arc::clone(&store));
                Self::register_durability_metrics(&metrics, &store, &clock);
                (Some(store), Some(state))
            }
            None => (None, None),
        };
        MTCache {
            clock,
            clock_arc,
            catalog,
            master,
            backend,
            cache_storage,
            runtime,
            config: RwLock::new(OptimizerConfig::default()),
            remote_override: RwLock::new(None),
            plan_cache,
            counters,
            metrics,
            tracer,
            journal,
            backend_available: AtomicBool::new(true),
            next_agent: AtomicU32::new(0),
            next_region: AtomicU32::new(0),
            next_session: AtomicU64::new(0),
            slo_queries: AtomicU64::new(0),
            slo_unsanctioned: AtomicU64::new(0),
            scan_pool: RwLock::new(None),
            batch_rows: AtomicUsize::new(DEFAULT_BATCH_ROWS),
            row_engine: AtomicBool::new(false),
            elide_guards: AtomicBool::new(false),
            durability,
            recovered: Mutex::new(recovered),
            pending_watermarks: Mutex::new(Vec::new()),
            templates: RwLock::new(Vec::new()),
            robust_report: RwLock::new(WorkloadReport {
                templates: Vec::new(),
            }),
        }
    }

    /// Apply state recovered by [`MTCache::new_durable`]: restore the
    /// checkpoint's table images, replay the WAL tail, move the simulated
    /// clock forward to the last persisted instant (so currency accounting
    /// is continuous across the restart), and journal a `recovery` event
    /// with the replay stats. A fresh data dir (nothing to recover) journals
    /// no event. Returns `None` for in-memory caches.
    ///
    /// Must run after every table the recovered state references has been
    /// registered and loaded, and before regions and views are created.
    pub fn finish_recovery(&self) -> Result<Option<RecoveryStats>> {
        let Some(state) = self.recovered.lock().take() else {
            return Ok(None);
        };
        self.master.recover(
            state.tables,
            state.base_log_len,
            state.next_id,
            &state.commits,
        )?;
        if state.last_clock_ms > self.clock.now().millis() {
            self.clock.set(Timestamp(state.last_clock_ms));
        }
        *self.pending_watermarks.lock() = state.watermarks;
        let stats = state.stats;
        // A genuinely fresh data dir recovers nothing — journaling a
        // zero-stats `recovery` event would be noise (and would defeat
        // "did we actually recover?" checks against SHOW EVENTS).
        let recovered_anything = state.has_checkpoint
            || stats.commits_replayed > 0
            || stats.truncated_bytes > 0
            || stats.watermarks_restored > 0;
        if !recovered_anything {
            return Ok(Some(stats));
        }
        self.journal.record(
            self.clock.now().millis(),
            EventKind::Recovery,
            format!(
                "replayed {} commits, truncated {} tail bytes, restored {} watermarks, \
                 {} checkpoint tables ({} rows)",
                stats.commits_replayed,
                stats.truncated_bytes,
                stats.watermarks_restored,
                stats.checkpoint_tables,
                stats.checkpoint_rows,
            ),
            "",
            "",
            0,
        );
        Ok(Some(stats))
    }

    /// Hand each recovered per-region watermark back to its distribution
    /// agent (cursor clamped to the recovered log length — torn-tail
    /// truncation can leave a persisted cursor past the end, and replaying
    /// a little extra is idempotent). Returns how many were restored.
    ///
    /// Must run after regions and views are created; a watermark for a
    /// region that no longer exists is dropped.
    pub fn restore_watermarks(&self) -> Result<usize> {
        let pending = std::mem::take(&mut *self.pending_watermarks.lock());
        let log_len = self.master.log_len();
        let mut restored = 0;
        for wm in pending {
            let cursor = (wm.cursor as usize).min(log_len);
            let heartbeat = (wm.heartbeat_ms >= 0).then_some(Timestamp(wm.heartbeat_ms));
            let mut result = Ok(());
            let found = self.runtime.with_agent(&wm.region, |agent| {
                result = agent.restore_watermark(cursor, heartbeat);
            });
            result?;
            if found {
                restored += 1;
            }
        }
        Ok(restored)
    }

    /// Write a checkpoint capturing the master tables and every region's
    /// current replication watermark, then truncate the WAL. Returns
    /// `false` (doing nothing) for in-memory caches. Used by graceful
    /// shutdown and `rccd`'s periodic checkpointer.
    pub fn checkpoint(&self) -> Result<bool> {
        let watermarks: Vec<WatermarkRecord> = self
            .runtime
            .watermarks()
            .into_iter()
            .map(|(region, cursor, heartbeat)| WatermarkRecord {
                region,
                cursor: cursor as u64,
                heartbeat_ms: heartbeat.map_or(-1, |t| t.millis()),
            })
            .collect();
        self.master.checkpoint(&watermarks)
    }

    /// Durability snapshot for `/healthz`; `None` for in-memory caches.
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        let store = self.durability.as_ref()?;
        let now_ms = self.clock.now().millis();
        Some(DurabilityStatus {
            policy: sync_policy_name(store.policy()),
            wal_bytes: store.wal_bytes(),
            wal_records: store.wal_records(),
            wal_fsyncs: store.wal_fsyncs(),
            bufpool_frames_in_use: store.bufpool_frames_in_use(),
            bufpool_capacity: store.bufpool_capacity(),
            bufpool_evictions: store.bufpool_evictions(),
            last_checkpoint_age_seconds: store
                .last_checkpoint_ms()
                .map(|ms| (now_ms.saturating_sub(ms)) as f64 / 1000.0),
        })
    }

    /// Describe the durability metric names and mirror the store's WAL and
    /// buffer-pool counters into the registry via a collector.
    fn register_durability_metrics(
        metrics: &Arc<MetricsRegistry>,
        store: &Arc<DurableStore>,
        clock: &SimClock,
    ) {
        metrics.describe("rcc_wal_bytes", "Write-ahead log size on disk in bytes.");
        metrics.describe(
            "rcc_wal_records_total",
            "WAL records appended since the last checkpoint reset the log.",
        );
        metrics.describe(
            "rcc_wal_fsyncs_total",
            "fsync calls issued by the WAL (per-commit or group-batched).",
        );
        metrics.describe(
            "rcc_wal_checkpoint_age_seconds",
            "Simulated seconds since the last completed checkpoint.",
        );
        metrics.describe(
            "rcc_bufpool_frames_in_use",
            "Checkpoint buffer-pool frames currently resident.",
        );
        metrics.describe(
            "rcc_bufpool_evictions_total",
            "Checkpoint buffer-pool frames evicted (clock second-chance).",
        );
        let wal_bytes = metrics.gauge("rcc_wal_bytes", &[]);
        let wal_records = metrics.counter("rcc_wal_records_total", &[]);
        let wal_fsyncs = metrics.counter("rcc_wal_fsyncs_total", &[]);
        let ckpt_age = metrics.gauge("rcc_wal_checkpoint_age_seconds", &[]);
        let frames = metrics.gauge("rcc_bufpool_frames_in_use", &[]);
        let evictions = metrics.counter("rcc_bufpool_evictions_total", &[]);
        let store = Arc::clone(store);
        let clock = clock.clone();
        metrics.register_collector(move || {
            wal_bytes.set(store.wal_bytes() as f64);
            wal_records.set(store.wal_records());
            wal_fsyncs.set(store.wal_fsyncs());
            frames.set(store.bufpool_frames_in_use() as f64);
            evictions.set(store.bufpool_evictions());
            let age = store
                .last_checkpoint_ms()
                .map(|ms| (clock.now().millis().saturating_sub(ms)) as f64 / 1000.0);
            ckpt_age.set(age.unwrap_or(-1.0));
        });
    }

    /// Configure morsel-driven parallel scans: `workers > 1` installs a
    /// shared [`ScanPool`] used by every subsequent query; `workers <= 1`
    /// restores serial scans. Safe to call while sessions are live — the
    /// pool is swapped atomically and in-flight queries keep the pool they
    /// started with.
    pub fn set_scan_workers(&self, workers: usize) {
        let pool = if workers > 1 {
            Some(Arc::new(ScanPool::new(workers)))
        } else {
            None
        };
        self.metrics
            .gauge("rcc_scan_workers", &[])
            .set(workers.max(1) as f64);
        *self.scan_pool.write() = pool;
    }

    /// Set the target logical rows per column batch for subsequent
    /// queries. Values are clamped to at least 1. Safe to call while
    /// sessions are live — in-flight queries keep the size they started
    /// with.
    pub fn set_batch_rows(&self, rows: usize) {
        self.batch_rows.store(rows.max(1), Ordering::Relaxed);
    }

    /// Route subsequent queries through the row-at-a-time reference engine
    /// (`true`) or the vectorized engine (`false`, the default). The two
    /// produce byte-identical results; the switch exists for differential
    /// testing and benchmarking.
    pub fn set_row_engine(&self, on: bool) {
        self.row_engine.store(on, Ordering::Relaxed);
    }

    /// Dispatch a plan to whichever engine is selected.
    fn run_plan(
        &self,
        plan: &rcc_optimizer::PhysicalPlan,
        ctx: &ExecContext,
    ) -> Result<ExecutionResult> {
        if self.row_engine.load(Ordering::Relaxed) {
            execute_plan_rows(plan, ctx)
        } else {
            execute_plan(plan, ctx)
        }
    }

    /// Describe the cache-level metric names and mirror the plan cache's
    /// internal hit/miss/size counters (and the master's committed-txn
    /// count) into the registry via a collector, so external resets and
    /// epoch evictions are always reflected in snapshots.
    fn register_cache_metrics(
        metrics: &Arc<MetricsRegistry>,
        plan_cache: &Arc<PlanCache>,
        master: &Arc<MasterDb>,
        cache_storage: &Arc<StorageEngine>,
    ) {
        metrics.describe("rcc_queries_total", "Statements executed at the cache.");
        metrics.describe(
            "rcc_query_rows_returned_total",
            "Rows returned to clients by cache queries.",
        );
        metrics.describe(
            "rcc_query_phase_seconds",
            "Per-statement phase latency (parse, bind, optimize, guard_eval, local_exec, remote_ship).",
        );
        metrics.describe(
            "rcc_guard_staleness_seconds",
            "Staleness observed by currency guards, per region heartbeat.",
        );
        metrics.describe(
            "rcc_stale_served_total",
            "Queries answered from stale local data under ViolationPolicy::ServeStale.",
        );
        metrics.describe(
            "rcc_policy_degradations_total",
            "Queries that hit the violation policy because the back-end was \
             unreachable, labeled by policy arm (reject, serve_stale).",
        );
        metrics.describe(
            "rcc_verify_audits_total",
            "Optimized plans statically audited for C&C conformance \
             (post-optimize audit and VERIFY statements).",
        );
        metrics.describe(
            "rcc_verify_failures_total",
            "Plan conformance audits that found a delivered-vs-required divergence.",
        );
        metrics.describe(
            "rcc_robust_audits_total",
            "Template robustness analyses run (each CREATE TEMPLATE re-audits \
             the whole declared workload).",
        );
        metrics.describe(
            "rcc_robust_templates",
            "Declared transaction templates by latest robustness verdict \
             (robust, not_robust).",
        );
        metrics.describe(
            "rcc_lint_diagnostics_total",
            "Currency-clause lint diagnostics emitted at compile time and by \
             LINT statements, labeled by code (L001..L007).",
        );
        metrics.describe(
            "rcc_plan_cache_hits_total",
            "Plan-cache lookups that reused a compiled dynamic plan.",
        );
        metrics.describe(
            "rcc_plan_cache_misses_total",
            "Plan-cache lookups that had to bind and re-optimize.",
        );
        metrics.describe("rcc_plan_cache_entries", "Compiled plans currently cached.");
        metrics.describe(
            "rcc_master_txns_total",
            "Transactions committed in the back-end master's replication log.",
        );
        let hits = metrics.counter("rcc_plan_cache_hits_total", &[]);
        let misses = metrics.counter("rcc_plan_cache_misses_total", &[]);
        let entries = metrics.gauge("rcc_plan_cache_entries", &[]);
        let master_txns = metrics.counter("rcc_master_txns_total", &[]);
        metrics.describe(
            "rcc_snapshot_publishes_total",
            "Copy-on-write table snapshots published, per store \
             (master back-end vs. cache-side replicas).",
        );
        metrics.describe(
            "rcc_scan_workers",
            "Configured scan parallelism (1 = serial scans).",
        );
        let cache_publishes =
            metrics.counter("rcc_snapshot_publishes_total", &[("store", "cache")]);
        let master_publishes =
            metrics.counter("rcc_snapshot_publishes_total", &[("store", "master")]);
        let pc = Arc::clone(plan_cache);
        let master = Arc::clone(master);
        let cache_storage = Arc::clone(cache_storage);
        metrics.register_collector(move || {
            let (h, m) = pc.stats();
            hits.set(h);
            misses.set(m);
            entries.set(pc.len() as f64);
            master_txns.set(master.log_len() as u64);
            cache_publishes.set(cache_storage.total_publishes());
            master_publishes.set(master.storage().total_publishes());
        });
    }

    /// Describe the currency-telemetry metric names and mirror the
    /// tracer's dropped-span count into the registry.
    fn register_telemetry_metrics(metrics: &Arc<MetricsRegistry>, tracer: &Tracer) {
        metrics.describe(
            "rcc_delivered_staleness_seconds",
            "Actual staleness of every snapshot served (back-end commit clock \
             minus region heartbeat at guard-evaluation time), per region.",
        );
        metrics.describe(
            "rcc_currency_slack_seconds",
            "Promised currency bound minus delivered staleness, per region; \
             negative slack means the bound was overrun.",
        );
        metrics.describe(
            "rcc_slo_queries_total",
            "Queries tracked by the delivered-currency SLO.",
        );
        metrics.describe(
            "rcc_slo_violations_total",
            "Queries whose currency slack went negative, labeled by whether a \
             sanctioned policy degradation (serve_stale) caused it.",
        );
        metrics.describe(
            "rcc_slo_compliance_ratio",
            "Fraction of tracked queries that met their bound or degraded only \
             via sanctioned policy.",
        );
        metrics.describe(
            "rcc_events_total",
            "Structured journal events recorded, per kind \
             (degradation, violation, failover, lint, recovery).",
        );
        metrics.describe(
            "rcc_flow_guards_elided_total",
            "Currency guards removed at compile time by the certified \
             dataflow elision pass (set_elide_guards).",
        );
        metrics.describe(
            "rcc_flow_interval_violations_total",
            "Delivered staleness observed outside a compile-time-certified \
             flow interval — a broken analysis premise such as unhealthy \
             replication. Benches assert this stays zero.",
        );
        metrics.describe(
            "rcc_trace_dropped_spans_total",
            "Spans recorded after their trace had already finished; counted \
             instead of silently discarded.",
        );
        let dropped = metrics.counter("rcc_trace_dropped_spans_total", &[]);
        let tracer = tracer.clone();
        metrics.register_collector(move || {
            dropped.set(tracer.dropped_spans());
        });
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shadow catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The master database at the back-end.
    pub fn master(&self) -> &Arc<MasterDb> {
        &self.master
    }

    /// The back-end server.
    pub fn backend(&self) -> &Arc<BackendServer> {
        &self.backend
    }

    /// Cache-side storage (cached views + local heartbeat tables).
    pub fn cache_storage(&self) -> &Arc<StorageEngine> {
        &self.cache_storage
    }

    /// Global execution counters (guard outcomes, remote traffic).
    pub fn counters(&self) -> &Arc<ExecCounters> {
        &self.counters
    }

    /// The compiled-plan cache (invalidated on every catalog change).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The metrics registry covering the whole pipeline; render with
    /// [`MetricsRegistry::render_prometheus`] or inspect via
    /// [`MetricsRegistry::snapshot`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The query tracer: every statement records a trace with parse /
    /// bind / optimize / execute spans, kept in a bounded ring buffer
    /// ([`Tracer::recent`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The structured event journal (degradations, violations, failovers,
    /// lint findings) — the store behind `SHOW EVENTS` and `/events`.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// A fresh session label (`session-1`, `session-2`, …) for journal
    /// attribution.
    pub(crate) fn next_session_label(&self) -> String {
        format!(
            "session-{}",
            self.next_session.fetch_add(1, Ordering::Relaxed) + 1
        )
    }

    /// Route the executor's remote branch through `service` — the hook the
    /// TCP transport uses so a `CURRENCY BOUND` miss really ships SQL over
    /// a socket to a back-end in another thread or process. Pass `None` to
    /// restore the direct in-process call. Compiled plans stay valid (the
    /// transport is a run-time concern), so the plan cache is untouched.
    pub fn set_remote_service(&self, service: Option<Arc<dyn RemoteService>>) {
        *self.remote_override.write() = service;
    }

    /// Simulate losing (or restoring) the link to the back-end — the
    /// *traditional replicated database* scenario.
    pub fn set_backend_available(&self, up: bool) {
        let was = self.backend_available.swap(up, Ordering::SeqCst);
        self.config.write().backend_available = up;
        self.plan_cache.invalidate();
        if was != up {
            self.journal.record(
                self.clock.now().millis(),
                EventKind::Failover,
                if up {
                    "back-end link marked available"
                } else {
                    "back-end link marked unavailable"
                },
                "",
                "",
                0,
            );
        }
    }

    /// Enable/disable the SwitchUnion pull-up extension.
    pub fn set_pullup_switch_union(&self, on: bool) {
        self.config.write().pullup_switch_union = on;
        self.plan_cache.invalidate();
    }

    /// Enable/disable certified guard elision. When on, compiling a query
    /// also stores a variant with every statically-decided currency guard
    /// removed, served to sessions whose state matches the certificates'
    /// premises (no timeline floors, no forced-local degradation).
    /// Invalidates the plan cache so the toggle takes effect immediately.
    pub fn set_elide_guards(&self, on: bool) {
        self.elide_guards.store(on, Ordering::SeqCst);
        self.plan_cache.invalidate();
    }

    /// Replace the optimizer's cost constants (for ablations).
    pub fn set_cost_params(&self, cost: rcc_optimizer::cost::CostParams) {
        self.config.write().cost = cost;
        self.plan_cache.invalidate();
    }

    /// Advance simulated time, firing heartbeats and agent propagation.
    pub fn advance(&self, d: Duration) -> Result<()> {
        self.runtime.advance_to(self.clock.now().plus(d))
    }

    /// Create a currency region with a distribution agent. Heartbeats
    /// default to 1 s so that the paper's "propagation interval is a
    /// multiple of the heartbeat interval" alignment holds for any whole-
    /// second interval.
    pub fn create_region(
        &self,
        name: &str,
        update_interval: Duration,
        update_delay: Duration,
    ) -> Result<Arc<CurrencyRegion>> {
        self.create_region_with_heartbeat(
            name,
            update_interval,
            update_delay,
            Duration::from_secs(1),
        )
    }

    /// [`MTCache::create_region`] with an explicit heartbeat interval — a
    /// coarser beat makes the guard's staleness estimate conservative (the
    /// heartbeat-granularity extension of Fig. 4.2).
    pub fn create_region_with_heartbeat(
        &self,
        name: &str,
        update_interval: Duration,
        update_delay: Duration,
        heartbeat_interval: Duration,
    ) -> Result<Arc<CurrencyRegion>> {
        if heartbeat_interval.is_zero() {
            return Err(Error::Config("heartbeat interval must be positive".into()));
        }
        let id = RegionId(self.next_region.fetch_add(1, Ordering::SeqCst) + 1);
        let mut region = CurrencyRegion::new(id, name, update_interval, update_delay);
        region.heartbeat_interval = heartbeat_interval;
        let region = self.catalog.register_region(region)?;
        let agent = DistributionAgent::new(
            AgentId(self.next_agent.fetch_add(1, Ordering::SeqCst) + 1),
            Arc::clone(&region),
            Arc::clone(&self.master),
            Arc::clone(&self.cache_storage),
        )?;
        self.runtime.add_agent(agent);
        self.plan_cache.invalidate();
        Ok(region)
    }

    /// Stall / resume a region's distribution agent (failure injection).
    pub fn set_region_stalled(&self, region_name: &str, stalled: bool) -> bool {
        self.runtime
            .with_agent(region_name, |a| a.set_stalled(stalled))
    }

    /// The region's current local heartbeat, if any.
    pub fn local_heartbeat(&self, region_name: &str) -> Option<Timestamp> {
        self.runtime.local_heartbeat(region_name)
    }

    /// Current staleness bound for a region: `now − local heartbeat`.
    pub fn region_staleness(&self, region_name: &str) -> Option<Duration> {
        self.local_heartbeat(region_name)
            .map(|hb| self.clock.now().since(hb))
    }

    /// Bulk-load initial rows into a master table (unlogged: models the
    /// pre-existing database state).
    pub fn bulk_load(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.master.bulk_load(table, rows)
    }

    /// Recompute and install back-end statistics for a table (the shadow
    /// database carries back-end stats — paper Sec. 3 point 1).
    pub fn analyze(&self, table: &str) -> Result<()> {
        let stats = self.master.compute_stats(table)?;
        self.catalog.set_stats(table, stats);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Register a base table directly from metadata (programmatic DDL).
    pub fn register_table(&self, meta: TableMeta) -> Result<Arc<TableMeta>> {
        self.master.create_table(&meta)?;
        self.plan_cache.invalidate();
        self.catalog.register_table(meta)
    }

    /// Start a session (needed for `BEGIN TIMEORDERED`).
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    // ------------------------------------------------------------ execute

    /// Execute one SQL statement with no parameters.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &HashMap::new())
    }

    /// Execute one SQL statement with `$name` parameters bound.
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.execute_internal(
            sql,
            params,
            &HashMap::new(),
            ViolationPolicy::Reject,
            "direct",
        )
    }

    /// Execute with an explicit violation policy (matters when the
    /// back-end is unavailable).
    pub fn execute_with_policy(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
        policy: ViolationPolicy,
    ) -> Result<QueryResult> {
        self.execute_internal(sql, params, &HashMap::new(), policy, "direct")
    }

    /// Optimize without executing (EXPLAIN).
    pub fn explain(&self, sql: &str, params: &HashMap<String, Value>) -> Result<Optimized> {
        let stmt = parse_statement(sql)?;
        let select = match stmt {
            Statement::Select(s) => *s,
            other => {
                return Err(Error::analysis(format!(
                    "EXPLAIN expects a query, got {other:?}"
                )))
            }
        };
        let graph = bind_select(&self.catalog, &select, params)?;
        optimize(&self.catalog, &graph, &self.config.read())
    }

    /// Execute a query with per-operator instrumentation and return the
    /// result with `plan_explain` replaced by the EXPLAIN ANALYZE printout
    /// (per-operator actual row counts and wall times; untaken SwitchUnion
    /// branches are marked `never executed`). `sql` may carry the
    /// `EXPLAIN ANALYZE` prefix or be the bare query.
    pub fn explain_analyze(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let body = strip_explain_analyze(sql).unwrap_or(sql);
        self.execute_analyzed(body, params, &HashMap::new(), "direct")
    }

    pub(crate) fn execute_internal(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
        floors: &HashMap<RegionId, Timestamp>,
        policy: ViolationPolicy,
        session: &str,
    ) -> Result<QueryResult> {
        if let Some(body) = strip_explain_analyze(sql) {
            return self.execute_analyzed(body, params, floors, session);
        }
        let parse_started = Instant::now();
        let stmt = parse_statement(sql)?;
        let parse_time = parse_started.elapsed();
        match stmt {
            Statement::Select(select) => {
                self.execute_select(sql, &select, params, floors, policy, parse_time, session)
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.execute_insert(&table, &columns, &rows),
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.execute_update(&table, &assignments, filter.as_ref()),
            Statement::Delete { table, filter } => self.execute_delete(&table, filter.as_ref()),
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => self.create_table_ddl(&name, columns, primary_key),
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => self.create_index_ddl(&name, &table, columns),
            Statement::CreateCachedView {
                name,
                region,
                query,
            } => {
                self.create_cached_view(&name, &region, &query, Vec::new())?;
                Ok(self.ddl_result())
            }
            Statement::CreateRegion {
                name,
                interval,
                delay,
            } => {
                self.create_region(&name, interval, delay)?;
                Ok(self.ddl_result())
            }
            Statement::DropCachedView { name } => {
                self.drop_cached_view(&name)?;
                Ok(self.ddl_result())
            }
            Statement::BeginTimeordered | Statement::EndTimeordered => Err(Error::analysis(
                "BEGIN/END TIMEORDERED requires a session; use MTCache::session()",
            )),
            Statement::Verify(select) => self.execute_verify(&select, params),
            Statement::Lint(select) => Ok(self.execute_lint(&select)),
            Statement::ExplainFlow(select) => self.execute_explain_flow(&select, params),
            Statement::ShowEvents => Ok(self.show_events()),
            Statement::ShowTrace => Ok(self.show_trace()),
            Statement::CreateTemplate(decl) => self.create_template(&decl, session),
            Statement::AuditTemplates => Ok(self.audit_templates()),
        }
    }

    /// `CREATE TEMPLATE ...`: bind the template against the catalog, store
    /// its summary, and re-run the robustness analyzer over the whole
    /// declared workload (the compile-time hook). The statement's result
    /// carries the template's own verdict; a `NOT ROBUST` outcome is also
    /// journaled so operators can see which declaration pinned itself to
    /// the strict path.
    fn create_template(&self, decl: &TemplateDecl, session: &str) -> Result<QueryResult> {
        let summary = summarize_template(&self.catalog, decl)?;
        {
            let mut templates = self.templates.write();
            // Redeclaration replaces (templates evolve during development);
            // order is otherwise declaration order.
            if let Some(existing) = templates.iter_mut().find(|t| t.name == summary.name) {
                *existing = summary.clone();
            } else {
                templates.push(summary.clone());
            }
            let report = rcc_robust::analyze(&templates);
            self.metrics.counter("rcc_robust_audits_total", &[]).inc();
            let robust = report.robust_count();
            let not_robust = report.not_robust_count();
            self.metrics
                .gauge("rcc_robust_templates", &[("verdict", "robust")])
                .set(robust as f64);
            self.metrics
                .gauge("rcc_robust_templates", &[("verdict", "not_robust")])
                .set(not_robust as f64);
            *self.robust_report.write() = report;
        }
        let report = self.robust_report.read();
        let own = report
            .report(&summary.name)
            .ok_or_else(|| Error::analysis("template vanished during analysis"))?;
        if own.verdict == Verdict::NotRobust {
            self.journal.record(
                self.clock.now().millis(),
                EventKind::Robustness,
                format!("template {} is {}", own.name, own.verdict_string()),
                "",
                session,
                0,
            );
        }
        let mut result = self.ddl_result();
        result.warnings.push(format!(
            "template {} declared: {}",
            own.name,
            own.verdict_string()
        ));
        Ok(result)
    }

    /// `AUDIT TEMPLATES`: one row per declared template with the latest
    /// robustness verdict, its witness (empty when robust), and the
    /// summary counts the verdict was derived from.
    fn audit_templates(&self) -> QueryResult {
        let schema = Schema::new(vec![
            Column::new("template", rcc_common::DataType::Str),
            Column::new("verdict", rcc_common::DataType::Str),
            Column::new("witness", rcc_common::DataType::Str),
            Column::new("statements", rcc_common::DataType::Int),
            Column::new("relaxed_reads", rcc_common::DataType::Int),
            Column::new("writes", rcc_common::DataType::Int),
            Column::new("line", rcc_common::DataType::Int),
        ]);
        let report = self.robust_report.read();
        let rows = report
            .templates
            .iter()
            .map(|t| {
                Row::new(vec![
                    Value::Str(t.name.clone()),
                    Value::Str(t.verdict.to_string()),
                    Value::Str(t.witness.clone().unwrap_or_default()),
                    Value::Int(t.statements as i64),
                    Value::Int(t.relaxed_reads as i64),
                    Value::Int(t.writes as i64),
                    Value::Int(t.line as i64),
                ])
            })
            .collect();
        let warnings = vec![format!(
            "{} template(s): {} robust, {} not robust",
            report.templates.len(),
            report.robust_count(),
            report.not_robust_count()
        )];
        QueryResult {
            schema,
            rows,
            plan_choice: PlanChoice::BackendLocal,
            plan_explain: String::new(),
            est_cost: 0.0,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        }
    }

    /// The latest robustness verdict for a declared template, or `None` if
    /// no such template exists. The write path will consult this to decide
    /// whether a template instance may take the relaxed path at all.
    pub fn template_verdict(&self, name: &str) -> Option<Verdict> {
        self.robust_report.read().report(name).map(|t| t.verdict)
    }

    /// `SHOW EVENTS`: the journal's recent entries as a result set, oldest
    /// first.
    fn show_events(&self) -> QueryResult {
        let schema = Schema::new(vec![
            Column::new("seq", rcc_common::DataType::Int),
            Column::new("at_ms", rcc_common::DataType::Int),
            Column::new("kind", rcc_common::DataType::Str),
            Column::new("cause", rcc_common::DataType::Str),
            Column::new("policy", rcc_common::DataType::Str),
            Column::new("session", rcc_common::DataType::Str),
            Column::new("trace_id", rcc_common::DataType::Int),
        ]);
        let events = self.journal.recent(usize::MAX);
        let warnings = vec![format!(
            "{} event(s) retained of {} recorded",
            events.len(),
            self.journal.total()
        )];
        let rows = events
            .into_iter()
            .map(|e| {
                Row::new(vec![
                    Value::Int(e.seq as i64),
                    Value::Int(e.at_ms),
                    Value::Str(e.kind.name().to_string()),
                    Value::Str(e.cause),
                    Value::Str(e.policy),
                    Value::Str(e.session),
                    Value::Int(e.trace_id as i64),
                ])
            })
            .collect();
        QueryResult {
            schema,
            rows,
            plan_choice: PlanChoice::BackendLocal,
            plan_explain: String::new(),
            est_cost: 0.0,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        }
    }

    /// `SHOW TRACE`: the most recently finished trace's spans as a result
    /// set (start-ordered), with the trace header in the warnings.
    fn show_trace(&self) -> QueryResult {
        let schema = Schema::new(vec![
            Column::new("span", rcc_common::DataType::Str),
            Column::new("depth", rcc_common::DataType::Int),
            Column::new("start_us", rcc_common::DataType::Int),
            Column::new("elapsed_us", rcc_common::DataType::Int),
        ]);
        let (rows, warnings) = match self.tracer.recent(1).pop() {
            Some(trace) => {
                let mut spans = trace.spans.clone();
                spans.sort_by_key(|s| s.start);
                let rows = spans
                    .into_iter()
                    .map(|sp| {
                        Row::new(vec![
                            Value::Str(sp.name),
                            Value::Int(sp.depth as i64),
                            Value::Int(sp.start.as_micros() as i64),
                            Value::Int(sp.elapsed.as_micros() as i64),
                        ])
                    })
                    .collect();
                (
                    rows,
                    vec![format!(
                        "trace #{} [{:?}] {}",
                        trace.id, trace.elapsed, trace.label
                    )],
                )
            }
            None => (Vec::new(), vec!["no traces recorded yet".to_string()]),
        };
        QueryResult {
            schema,
            rows,
            plan_choice: PlanChoice::BackendLocal,
            plan_explain: String::new(),
            est_cost: 0.0,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        }
    }

    /// `LINT SELECT ...`: run the currency-clause semantic lint and return
    /// the diagnostics as a result set (one row per finding). Never binds,
    /// optimizes, or executes — a clean statement returns zero rows.
    fn execute_lint(&self, select: &SelectStmt) -> QueryResult {
        let diags = rcc_lint::lint_select(&self.catalog, select);
        for d in &diags {
            self.metrics
                .counter("rcc_lint_diagnostics_total", &[("code", d.code)])
                .inc();
        }
        let schema = Schema::new(vec![
            Column::new("code", rcc_common::DataType::Str),
            Column::new("position", rcc_common::DataType::Str),
            Column::new("subject", rcc_common::DataType::Str),
            Column::new("message", rcc_common::DataType::Str),
        ]);
        let rows = diags
            .iter()
            .map(|d| {
                Row::new(vec![
                    Value::Str(d.code.to_string()),
                    Value::Str(format!("{}:{}", d.line, d.col)),
                    Value::Str(d.subject.clone()),
                    Value::Str(d.message.clone()),
                ])
            })
            .collect();
        let warnings = if diags.is_empty() {
            vec!["lint clean: no currency-clause diagnostics".to_string()]
        } else {
            vec![format!("lint found {} diagnostic(s)", diags.len())]
        };
        QueryResult {
            schema,
            rows,
            plan_choice: PlanChoice::BackendLocal,
            plan_explain: String::new(),
            est_cost: 0.0,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        }
    }

    /// Statically verify the plan the optimizer would run for `sql` (which
    /// may carry a leading `VERIFY`). Optimizes but never executes; returns
    /// the full proof-obligation report.
    pub fn verify(
        &self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<rcc_verify::VerifyReport> {
        let select = match parse_statement(sql)? {
            Statement::Select(s) | Statement::Verify(s) => s,
            other => {
                return Err(Error::analysis(format!(
                    "VERIFY expects a query, got {other:?}"
                )))
            }
        };
        let graph = bind_select(&self.catalog, &select, params)?;
        let optimized = optimize(&self.catalog, &graph, &self.config.read())?;
        let report = rcc_verify::verify_plan(&self.catalog, &graph.constraint, &optimized.plan);
        self.metrics.counter("rcc_verify_audits_total", &[]).inc();
        if !report.ok() {
            self.metrics.counter("rcc_verify_failures_total", &[]).inc();
        }
        Ok(report)
    }

    /// `VERIFY SELECT ...`: optimize, statically check plan conformance,
    /// and return the proof obligations as a result set (one row per
    /// obligation) with the plan in `plan_explain`.
    fn execute_verify(
        &self,
        select: &SelectStmt,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let graph = bind_select(&self.catalog, select, params)?;
        let optimized = optimize(&self.catalog, &graph, &self.config.read())?;
        let report = rcc_verify::verify_plan(&self.catalog, &graph.constraint, &optimized.plan);
        self.metrics.counter("rcc_verify_audits_total", &[]).inc();
        if !report.ok() {
            self.metrics.counter("rcc_verify_failures_total", &[]).inc();
        }
        let schema = Schema::new(vec![
            Column::new("obligation", rcc_common::DataType::Str),
            Column::new("subject", rcc_common::DataType::Str),
            Column::new("status", rcc_common::DataType::Str),
        ]);
        let rows = report
            .obligations
            .iter()
            .map(|o| {
                Row::new(vec![
                    Value::Str(o.kind.name().to_string()),
                    Value::Str(o.subject.clone()),
                    Value::Str(match &o.status {
                        rcc_verify::ObligationStatus::Proved => "proved".to_string(),
                        rcc_verify::ObligationStatus::Violated(why) => {
                            format!("VIOLATED: {why}")
                        }
                    }),
                ])
            })
            .collect();
        let violations = report.violations().len();
        let warnings = if violations == 0 {
            vec![format!(
                "plan verified: {} proof obligations proved over {} world(s)",
                report.obligations.len(),
                report.worlds
            )]
        } else {
            vec![format!(
                "plan REJECTED: {violations} of {} proof obligations violated",
                report.obligations.len()
            )]
        };
        Ok(QueryResult {
            schema,
            rows,
            plan_choice: optimized.choice,
            plan_explain: optimized.plan.explain(),
            est_cost: optimized.cost,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        })
    }

    /// `EXPLAIN FLOW SELECT ...`: optimize, run the currency dataflow
    /// analysis, and report one row per plan node — operator, delivered
    /// staleness interval with its consistency groups, guard verdict, and
    /// elision decision.
    fn execute_explain_flow(
        &self,
        select: &SelectStmt,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        let graph = bind_select(&self.catalog, select, params)?;
        let optimized = optimize(&self.catalog, &graph, &self.config.read())?;
        let analysis = rcc_flow::analyze(&self.catalog, &optimized.plan);
        let elided = rcc_flow::elide(&optimized.plan, &analysis);
        let schema = Schema::new(vec![
            Column::new("operator", rcc_common::DataType::Str),
            Column::new("interval", rcc_common::DataType::Str),
            Column::new("verdict", rcc_common::DataType::Str),
            Column::new("decision", rcc_common::DataType::Str),
        ]);
        let rows =
            analysis
                .nodes
                .iter()
                .map(|n| {
                    Row::new(vec![
                        Value::Str(format!("{}{}", "  ".repeat(n.depth), n.label)),
                        Value::Str(format!("{} {}", n.interval, n.groups)),
                        Value::Str(
                            n.verdict
                                .as_ref()
                                .map(|v| v.label())
                                .unwrap_or_else(|| "-".to_string()),
                        ),
                        Value::Str(n.decision.map(|d| d.label().to_string()).unwrap_or_else(
                            || {
                                if n.verdict.is_some() {
                                    "keep".to_string()
                                } else {
                                    "-".to_string()
                                }
                            },
                        )),
                    ])
                })
                .collect();
        let warnings = vec![format!(
            "flow: root interval {}, {} guard(s), {} elidable",
            analysis.root().interval,
            analysis.guards.len(),
            elided.elided.len()
        )];
        Ok(QueryResult {
            schema,
            rows,
            plan_choice: optimized.choice,
            plan_explain: optimized.plan.explain(),
            est_cost: optimized.cost,
            guards: Vec::new(),
            used_remote: false,
            warnings,
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        })
    }

    /// Look up or compile the dynamic plan for `sql`, tracing and timing
    /// the bind and optimize steps (both zero on a plan-cache hit).
    fn compile(
        &self,
        sql: &str,
        select: &SelectStmt,
        params: &HashMap<String, Value>,
        trace: &TraceHandle,
        session: &str,
    ) -> Result<(Arc<CompiledQuery>, bool, StdDuration, StdDuration)> {
        // "re-optimization only if a view's consistency properties change":
        // the compiled dynamic plan is reused until the catalog epoch moves
        let key = PlanCache::key(sql, params);
        if let Some(c) = self.plan_cache.get(&key) {
            return Ok((c, true, StdDuration::ZERO, StdDuration::ZERO));
        }
        // Compile-time currency-clause lint: one AST walk on the cache-miss
        // path only. Diagnostics never fail the query — they ride along as
        // warnings on every result served from this plan, and bump the
        // per-code counter so absurd clauses show up in the metrics.
        let span = trace.span("lint");
        let lint_diags = rcc_lint::lint_select(&self.catalog, select);
        for d in &lint_diags {
            self.metrics
                .counter("rcc_lint_diagnostics_total", &[("code", d.code)])
                .inc();
        }
        if !lint_diags.is_empty() {
            let codes: Vec<&str> = lint_diags.iter().map(|d| d.code).collect();
            self.journal.record(
                self.clock.now().millis(),
                EventKind::Lint,
                format!("{} ({} diagnostic(s))", codes.join(","), lint_diags.len()),
                "",
                session,
                trace.id(),
            );
        }
        let lint: Vec<String> = lint_diags.iter().map(|d| format!("lint: {d}")).collect();
        drop(span);
        let span = trace.span("bind");
        let started = Instant::now();
        let graph = bind_select(&self.catalog, select, params)?;
        let bind_time = started.elapsed();
        drop(span);
        let tables: Vec<TableId> = graph.operands.iter().map(|o| o.table.id).collect();
        let span = trace.span("optimize");
        let started = Instant::now();
        let optimized = optimize(&self.catalog, &graph, &self.config.read())?;
        let optimize_time = started.elapsed();
        drop(span);
        // Post-optimize conformance audit (debug builds): before a freshly
        // compiled plan enters the plan cache, statically prove it delivers
        // the query's currency clause. An independent re-derivation — see
        // `rcc-verify` — so an optimizer property bug cannot vouch for
        // itself. Cache hits skip this; invalidation forces re-audit.
        #[cfg(debug_assertions)]
        {
            let report = rcc_verify::verify_plan(&self.catalog, &graph.constraint, &optimized.plan);
            self.metrics.counter("rcc_verify_audits_total", &[]).inc();
            if !report.ok() {
                self.metrics.counter("rcc_verify_failures_total", &[]).inc();
                return Err(Error::analysis(format!(
                    "plan conformance audit failed for {sql:?}:\n{}",
                    report.render()
                )));
            }
        }
        // Currency dataflow analysis: per-node staleness intervals and one
        // certificate per guard. Computed on every compile (EXPLAIN FLOW
        // and the verifier read it); the elided plan variant is stored only
        // when the toggle is on and at least one guard was certified away.
        let flow = rcc_flow::analyze(&self.catalog, &optimized.plan);
        let hypo = rcc_flow::elide(&optimized.plan, &flow);
        // Debug builds audit every hypothetical elision — toggle on or off —
        // with the independent replay in `rcc-verify`, so an analysis bug
        // surfaces on the first compile, not on the first elided serve.
        #[cfg(debug_assertions)]
        {
            let obligations =
                rcc_verify::verify_elision(&self.catalog, &optimized.plan, &flow, &hypo.plan);
            if !rcc_verify::elision_ok(&obligations) {
                let failed: Vec<String> = obligations
                    .iter()
                    .filter(|o| !o.status.is_proved())
                    .map(|o| o.to_string())
                    .collect();
                return Err(Error::analysis(format!(
                    "guard-elision audit failed for {sql:?}:\n{}",
                    failed.join("\n")
                )));
            }
        }
        let elided = if self.elide_guards.load(Ordering::SeqCst) && !hypo.elided.is_empty() {
            self.metrics
                .counter("rcc_flow_guards_elided_total", &[])
                .add(hypo.elided.len() as u64);
            Some(ElidedPlan {
                plan: hypo.plan,
                certs: hypo.elided,
            })
        } else {
            None
        };
        let c = Arc::new(CompiledQuery {
            optimized,
            tables,
            lint,
            flow,
            elided,
        });
        self.plan_cache.put(key, Arc::clone(&c));
        Ok((c, false, bind_time, optimize_time))
    }

    /// Assemble per-statement [`QueryStats`] from the query meter and
    /// publish the per-query metrics (query counter, row counter, phase
    /// histograms). `local_exec` is the executor total minus guard and
    /// remote time.
    #[allow(clippy::too_many_arguments)]
    fn finish_stats(
        &self,
        trace_id: u64,
        plan_cache_hit: bool,
        parse: StdDuration,
        bind: StdDuration,
        optimize: StdDuration,
        meter: &QueryMeter,
        exec_total: StdDuration,
        rows_returned: u64,
    ) -> QueryStats {
        let guard_eval = meter.guard_eval();
        let remote_ship = meter.remote_ship();
        let local_exec = exec_total
            .saturating_sub(guard_eval)
            .saturating_sub(remote_ship);
        let stats = QueryStats {
            trace_id,
            plan_cache_hit,
            parse,
            bind,
            optimize,
            guard_eval,
            local_exec,
            remote_ship,
            rows_returned,
            bytes_shipped: meter.bytes_shipped.load(Ordering::Relaxed),
            remote_queries: meter.remote_queries.load(Ordering::Relaxed),
        };
        self.metrics.counter("rcc_queries_total", &[]).inc();
        self.metrics
            .counter("rcc_query_rows_returned_total", &[])
            .add(rows_returned);
        for phase in QueryPhase::ALL {
            self.metrics
                .histogram(
                    "rcc_query_phase_seconds",
                    &[("phase", phase.name())],
                    DEFAULT_LATENCY_BUCKETS,
                )
                .observe(stats.phase(phase).as_secs_f64());
        }
        stats
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_select(
        &self,
        sql: &str,
        select: &SelectStmt,
        params: &HashMap<String, Value>,
        floors: &HashMap<RegionId, Timestamp>,
        policy: ViolationPolicy,
        parse_time: StdDuration,
        session: &str,
    ) -> Result<QueryResult> {
        let trace = self.tracer.trace(sql);
        let (compiled, cache_hit, bind_time, optimize_time) =
            self.compile(sql, select, params, &trace, session)?;
        let optimized = &compiled.optimized;
        let tables = compiled.tables.clone();
        let ctx = self.fresh_ctx(floors.clone(), trace.share());

        // Serve the guard-elided variant only when the certificates'
        // premises hold for this session: timeline floors can force a
        // branch past a heartbeat the static analysis trusted, so floored
        // sessions always run the full guarded plan. The degradation path
        // below re-executes the guarded plan too (forced local is a
        // sanctioned premise break, not a certified one).
        let elided = compiled.elided.as_ref().filter(|_| floors.is_empty());
        let plan = elided.map(|e| &e.plan).unwrap_or(&optimized.plan);

        let remote_before = self.counters.remote_queries.load(Ordering::Relaxed);
        let exec_span = trace.span("execute");
        let exec = self.run_plan(plan, &ctx);
        drop(exec_span);
        match exec {
            Ok(result) => {
                if cfg!(debug_assertions) {
                    if let Some(e) = elided {
                        self.recheck_elided_certs(&e.certs);
                    }
                }
                let guards = ctx.take_observations();
                self.record_delivered(&guards, false);
                let used_remote =
                    self.counters.remote_queries.load(Ordering::Relaxed) > remote_before;
                let stats = self.finish_stats(
                    trace.id(),
                    cache_hit,
                    parse_time,
                    bind_time,
                    optimize_time,
                    &ctx.meter,
                    result.timings.total(),
                    result.rows.len() as u64,
                );
                Ok(QueryResult {
                    schema: result.schema,
                    rows: result.rows,
                    plan_choice: optimized.choice,
                    plan_explain: optimized.plan.explain(),
                    est_cost: optimized.cost,
                    guards,
                    used_remote,
                    warnings: compiled.lint.clone(),
                    timings: result.timings,
                    tables,
                    stats,
                })
            }
            // the remote branch could not be served: either the link was
            // administratively down before execution started (the remote
            // slot was None → Error::Remote), or a real transport timed
            // out / failed every retry mid-call (Error::Unavailable). Both
            // degrade per the session's violation policy.
            Err(Error::Remote(msg)) if !self.backend_available.load(Ordering::SeqCst) => self
                .degrade_unreachable(
                    &trace,
                    optimized,
                    tables,
                    floors,
                    policy,
                    cache_hit,
                    parse_time,
                    bind_time,
                    optimize_time,
                    &msg,
                    session,
                ),
            Err(Error::Unavailable(msg)) => self.degrade_unreachable(
                &trace,
                optimized,
                tables,
                floors,
                policy,
                cache_hit,
                parse_time,
                bind_time,
                optimize_time,
                &msg,
                session,
            ),
            Err(e) => Err(e),
        }
    }

    /// The back-end could not answer a remote branch. Apply the violation
    /// policy: `Reject` fails the query; `ServeStale` re-executes with
    /// guards forced local and attaches a staleness warning per guard.
    #[allow(clippy::too_many_arguments)]
    fn degrade_unreachable(
        &self,
        trace: &TraceHandle,
        optimized: &Optimized,
        tables: Vec<TableId>,
        floors: &HashMap<RegionId, Timestamp>,
        policy: ViolationPolicy,
        cache_hit: bool,
        parse_time: StdDuration,
        bind_time: StdDuration,
        optimize_time: StdDuration,
        msg: &str,
        session: &str,
    ) -> Result<QueryResult> {
        match policy {
            ViolationPolicy::Reject => {
                self.metrics
                    .counter("rcc_policy_degradations_total", &[("policy", "reject")])
                    .inc();
                self.journal.record(
                    self.clock.now().millis(),
                    EventKind::Violation,
                    format!("back-end unreachable: {msg}"),
                    "reject",
                    session,
                    trace.id(),
                );
                Err(Error::CurrencyViolation(format!(
                    "local data too stale for the query's currency bound and the \
                     back-end is unreachable ({msg})"
                )))
            }
            ViolationPolicy::ServeStale => {
                self.journal.record(
                    self.clock.now().millis(),
                    EventKind::Degradation,
                    format!("back-end unreachable: {msg}"),
                    "serve_stale",
                    session,
                    trace.id(),
                );
                let mut ctx2 = self.fresh_ctx(floors.clone(), trace.share());
                ctx2.force_local = true;
                let stale_span = trace.span("execute_stale");
                let result = self.run_plan(&optimized.plan, &ctx2)?;
                drop(stale_span);
                let guards = ctx2.take_observations();
                self.record_delivered(&guards, true);
                let now = self.clock.now();
                let warnings = guards
                    .iter()
                    .map(|g| match g.heartbeat {
                        Some(hb) => format!(
                            "served region {} data that is up to {} stale (policy: ServeStale)",
                            g.region,
                            now.since(hb)
                        ),
                        None => format!(
                            "served region {} data of unknown staleness (no heartbeat)",
                            g.region
                        ),
                    })
                    .collect();
                self.metrics.counter("rcc_stale_served_total", &[]).inc();
                self.metrics
                    .counter(
                        "rcc_policy_degradations_total",
                        &[("policy", "serve_stale")],
                    )
                    .inc();
                let stats = self.finish_stats(
                    trace.id(),
                    cache_hit,
                    parse_time,
                    bind_time,
                    optimize_time,
                    &ctx2.meter,
                    result.timings.total(),
                    result.rows.len() as u64,
                );
                Ok(QueryResult {
                    schema: result.schema,
                    rows: result.rows,
                    plan_choice: optimized.choice,
                    plan_explain: optimized.plan.explain(),
                    est_cost: optimized.cost,
                    guards,
                    used_remote: false,
                    warnings,
                    timings: result.timings,
                    tables,
                    stats,
                })
            }
        }
    }

    /// The shared EXPLAIN ANALYZE path: compile (through the plan cache),
    /// execute with per-operator metering, and return the result with the
    /// instrumented printout. Unlike the normal path it never falls back
    /// to serving stale data — a currency violation surfaces as an error.
    fn execute_analyzed(
        &self,
        body: &str,
        params: &HashMap<String, Value>,
        floors: &HashMap<RegionId, Timestamp>,
        session: &str,
    ) -> Result<QueryResult> {
        let trace = self.tracer.trace(body);
        let parse_started = Instant::now();
        let stmt = parse_statement(body)?;
        let parse_time = parse_started.elapsed();
        let select = match stmt {
            Statement::Select(s) => *s,
            other => {
                return Err(Error::analysis(format!(
                    "EXPLAIN ANALYZE expects a query, got {other:?}"
                )))
            }
        };
        let (compiled, cache_hit, bind_time, optimize_time) =
            self.compile(body, &select, params, &trace, session)?;
        let optimized = &compiled.optimized;
        let tables = compiled.tables.clone();
        let ctx = self.fresh_ctx(floors.clone(), trace.share());
        let exec_span = trace.span("execute");
        let analyzed = execute_plan_analyzed(&optimized.plan, &ctx)?;
        drop(exec_span);
        let guards = ctx.take_observations();
        self.record_delivered(&guards, false);
        let used_remote = ctx.meter.remote_queries.load(Ordering::Relaxed) > 0;
        let stats = self.finish_stats(
            trace.id(),
            cache_hit,
            parse_time,
            bind_time,
            optimize_time,
            &ctx.meter,
            analyzed.elapsed,
            analyzed.rows.len() as u64,
        );
        let plan_explain = analyzed.render();
        let timings = rcc_executor::PhaseTimings {
            setup: StdDuration::ZERO,
            run: analyzed.elapsed,
            shutdown: StdDuration::ZERO,
        };
        Ok(QueryResult {
            schema: analyzed.schema,
            rows: analyzed.rows,
            plan_choice: optimized.choice,
            plan_explain,
            est_cost: optimized.cost,
            guards,
            used_remote,
            warnings: Vec::new(),
            timings,
            tables,
            stats,
        })
    }

    /// Delivered-currency accounting: for every guard evaluated for a
    /// query that was actually answered, record the staleness of what was
    /// served against what the clause promised.
    ///
    /// * local branch: delivered staleness = back-end commit clock minus
    ///   the region heartbeat the guard saw (clamped at zero);
    /// * remote branch: the back-end serves the latest snapshot, so
    ///   delivered staleness is zero by construction.
    ///
    /// Slack = bound − delivered. A query violates the SLO when any guard's
    /// slack goes negative; `sanctioned` says whether that happened under
    /// an explicit policy degradation (`ServeStale`) rather than silently.
    /// Debug-build runtime cross-check of guard elision: replay every
    /// certificate whose guard was removed from the served plan against
    /// the live heartbeat it would have read. Under the certificates'
    /// premises (healthy replication, no floors, no forced-local serving)
    /// an always-pass guard's heartbeat must still sit inside the bound;
    /// an escape increments `rcc_flow_interval_violations_total`, which
    /// the benches assert stays zero.
    fn recheck_elided_certs(&self, certs: &[rcc_flow::GuardCert]) {
        let now = self.clock.now();
        for cert in certs {
            if cert.decision != rcc_flow::Decision::ElideLocal {
                // collapsed-remote arms serve back-end-current data; there
                // is no staleness claim to recheck
                continue;
            }
            let heartbeat = self
                .cache_storage
                .table(&cert.heartbeat_table)
                .ok()
                .map(|t| t.snapshot())
                .and_then(|snap| {
                    let row = snap.get(&[Value::Int(cert.region.raw() as i64)])?;
                    row.get(1).as_int().ok().map(Timestamp)
                });
            let escaped = match heartbeat {
                Some(hb) => now.since(hb) >= cert.bound,
                None => true,
            };
            if escaped {
                self.metrics
                    .counter("rcc_flow_interval_violations_total", &[])
                    .inc();
            }
        }
    }

    fn record_delivered(&self, guards: &[GuardObservation], sanctioned: bool) {
        if guards.is_empty() {
            return;
        }
        let (_, commit) = self.master.latest_commit();
        let mut negative_slack = false;
        for g in guards {
            let delivered_s = if g.chose_local {
                match g.heartbeat {
                    Some(hb) if commit > hb => commit.since(hb).as_secs_f64(),
                    // heartbeat at/after the last commit: fully current
                    Some(_) => 0.0,
                    // no heartbeat at all: we cannot bound what was served;
                    // charge the whole span of the commit clock
                    None => commit.since(Timestamp::ZERO).as_secs_f64(),
                }
            } else {
                0.0
            };
            let slack_s = g.bound.as_secs_f64() - delivered_s;
            if slack_s < 0.0 {
                negative_slack = true;
                if g.chose_local && !sanctioned {
                    // A guard that *passed* cannot overrun its bound (the
                    // back-end commit clock never leads the session clock),
                    // so an unsanctioned local overrun means delivered
                    // staleness escaped the interval the flow analysis
                    // certified — a broken premise, not a policy choice.
                    self.metrics
                        .counter("rcc_flow_interval_violations_total", &[])
                        .inc();
                }
            }
            let region = self
                .catalog
                .region(g.region)
                .map(|r| r.name.clone())
                .unwrap_or_else(|_| g.region.to_string());
            let labels = [("region", region.as_str())];
            self.metrics
                .histogram(
                    "rcc_delivered_staleness_seconds",
                    &labels,
                    DEFAULT_STALENESS_BUCKETS,
                )
                .observe(delivered_s);
            self.metrics
                .histogram("rcc_currency_slack_seconds", &labels, DEFAULT_SLACK_BUCKETS)
                .observe(slack_s);
        }
        let total = self.slo_queries.fetch_add(1, Ordering::Relaxed) + 1;
        if negative_slack {
            let arm = if sanctioned { "yes" } else { "no" };
            self.metrics
                .counter("rcc_slo_violations_total", &[("sanctioned", arm)])
                .inc();
        }
        let unsanctioned = if negative_slack && !sanctioned {
            self.slo_unsanctioned.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.slo_unsanctioned.load(Ordering::Relaxed)
        };
        self.metrics.counter("rcc_slo_queries_total", &[]).inc();
        self.metrics
            .gauge("rcc_slo_compliance_ratio", &[])
            .set(1.0 - unsanctioned as f64 / total as f64);
    }

    fn fresh_ctx(
        &self,
        floors: HashMap<RegionId, Timestamp>,
        trace: Option<TraceRef>,
    ) -> ExecContext {
        let remote: Option<Arc<dyn RemoteService>> =
            if self.backend_available.load(Ordering::SeqCst) {
                match &*self.remote_override.read() {
                    Some(service) => Some(Arc::clone(service)),
                    None => Some(Arc::clone(&self.backend) as Arc<dyn RemoteService>),
                }
            } else {
                None
            };
        ExecContext {
            storage: Arc::clone(&self.cache_storage),
            remote,
            clock: Arc::clone(&self.clock_arc),
            counters: Arc::clone(&self.counters),
            timeline_floor: Arc::new(floors),
            observations: Arc::new(Mutex::new(Vec::new())),
            force_local: false,
            meter: Arc::new(QueryMeter::default()),
            metrics: Some(Arc::clone(&self.metrics)),
            scan_pool: self.scan_pool.read().clone(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            batch_rows: self.batch_rows.load(Ordering::Relaxed).max(1),
            trace,
        }
    }

    fn ddl_result(&self) -> QueryResult {
        QueryResult {
            schema: Schema::empty(),
            rows: Vec::new(),
            plan_choice: PlanChoice::BackendLocal,
            plan_explain: String::new(),
            est_cost: 0.0,
            guards: Vec::new(),
            used_remote: false,
            warnings: Vec::new(),
            timings: Default::default(),
            tables: Vec::new(),
            stats: Default::default(),
        }
    }

    // ---------------------------------------------------------------- DML

    fn execute_insert(
        &self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> Result<QueryResult> {
        let meta = self.catalog.table(table)?;
        let ordinals: Vec<usize> = if columns.is_empty() {
            (0..meta.schema.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| meta.schema.resolve(None, c))
                .collect::<Result<_>>()?
        };
        let mut changes = Vec::with_capacity(rows.len());
        for exprs in rows {
            if exprs.len() != ordinals.len() {
                return Err(Error::analysis("INSERT arity mismatch"));
            }
            let mut values = vec![Value::Null; meta.schema.len()];
            for (ord, e) in ordinals.iter().zip(exprs) {
                values[*ord] = eval_const(e)?;
            }
            changes.push(TableChange::new(
                meta.name.clone(),
                RowChange::Insert(Row::new(values)),
            ));
        }
        let n = changes.len();
        self.master.execute_txn(changes)?;
        let mut r = self.ddl_result();
        r.warnings
            .push(format!("{n} row(s) inserted (forwarded to back-end)"));
        Ok(r)
    }

    fn execute_update(
        &self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<QueryResult> {
        let meta = self.catalog.table(table)?;
        let schema = meta.schema.clone().with_qualifier(&meta.name);
        let predicate = filter.map(|f| bind_table_expr(&meta, f)).transpose()?;
        let assigns: Vec<(usize, BoundExpr)> = assignments
            .iter()
            .map(|(c, e)| Ok((meta.schema.resolve(None, c)?, bind_table_expr(&meta, e)?)))
            .collect::<Result<_>>()?;
        let handle = self.master.table(&meta.name)?;
        let now = self.clock.now().millis();
        let mut changes = Vec::new();
        {
            let t = handle.snapshot();
            for row in t.iter() {
                let hit = match &predicate {
                    Some(p) => p.eval_predicate(row, &schema, now)?,
                    None => true,
                };
                if !hit {
                    continue;
                }
                let mut new_values = row.values().to_vec();
                for (ord, e) in &assigns {
                    new_values[*ord] = e.eval(row, &schema, now)?;
                }
                changes.push(TableChange::new(
                    meta.name.clone(),
                    RowChange::Update {
                        key: t.key_of(row),
                        row: Row::new(new_values),
                    },
                ));
            }
        }
        let n = changes.len();
        if !changes.is_empty() {
            self.master.execute_txn(changes)?;
        }
        let mut r = self.ddl_result();
        r.warnings
            .push(format!("{n} row(s) updated (forwarded to back-end)"));
        Ok(r)
    }

    fn execute_delete(&self, table: &str, filter: Option<&Expr>) -> Result<QueryResult> {
        let meta = self.catalog.table(table)?;
        let schema = meta.schema.clone().with_qualifier(&meta.name);
        let predicate = filter.map(|f| bind_table_expr(&meta, f)).transpose()?;
        let handle = self.master.table(&meta.name)?;
        let now = self.clock.now().millis();
        let mut changes = Vec::new();
        {
            let t = handle.snapshot();
            for row in t.iter() {
                let hit = match &predicate {
                    Some(p) => p.eval_predicate(row, &schema, now)?,
                    None => true,
                };
                if hit {
                    changes.push(TableChange::new(
                        meta.name.clone(),
                        RowChange::Delete { key: t.key_of(row) },
                    ));
                }
            }
        }
        let n = changes.len();
        if !changes.is_empty() {
            self.master.execute_txn(changes)?;
        }
        let mut r = self.ddl_result();
        r.warnings
            .push(format!("{n} row(s) deleted (forwarded to back-end)"));
        Ok(r)
    }

    // ---------------------------------------------------------------- DDL

    fn create_table_ddl(
        &self,
        name: &str,
        columns: Vec<(String, rcc_common::DataType)>,
        primary_key: Vec<String>,
    ) -> Result<QueryResult> {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| Column::new(n, t))
                .collect(),
        );
        let meta = TableMeta::new(self.catalog.next_table_id(), name, schema, primary_key)?;
        self.register_table(meta)?;
        Ok(self.ddl_result())
    }

    fn create_index_ddl(
        &self,
        name: &str,
        table: &str,
        columns: Vec<String>,
    ) -> Result<QueryResult> {
        let meta = self.catalog.table(table)?;
        let mut meta = (*meta).clone();
        let id = rcc_common::IndexId(meta.indexes.len() as u32 + 1);
        meta.add_index(id, name, columns.clone())?;
        // create on the master storage table too
        let handle = self.master.table(table)?;
        {
            let ordinals: Vec<usize> = columns
                .iter()
                .map(|c| meta.schema.resolve(None, c))
                .collect::<Result<_>>()?;
            handle.update(|t| t.create_index(name, ordinals))?;
        }
        self.catalog.update_table(meta)?;
        self.plan_cache.invalidate();
        Ok(self.ddl_result())
    }

    /// Define a cached materialized view (the programmatic form also
    /// accepts local secondary indexes: `(index_name, leading_column)`).
    pub fn create_cached_view(
        &self,
        name: &str,
        region_name: &str,
        query: &SelectStmt,
        local_indexes: Vec<(String, String)>,
    ) -> Result<Arc<CachedViewDef>> {
        let region = self.catalog.region_by_name(region_name)?;
        // shape: single base table, plain column projections, optional
        // single-column range predicate
        let (table_name, alias) = match query.from.as_slice() {
            [TableRef::Named { name, alias }] => (name.clone(), alias.clone()),
            _ => {
                return Err(Error::analysis(
                    "cached views must select from exactly one base table",
                ))
            }
        };
        if query.distinct
            || !query.group_by.is_empty()
            || query.having.is_some()
            || !query.order_by.is_empty()
            || query.limit.is_some()
            || query.currency.is_some()
        {
            return Err(Error::analysis(
                "cached views are projections/selections of one base table",
            ));
        }
        let meta = self.catalog.table(&table_name)?;
        let binding = alias.unwrap_or_else(|| meta.name.clone());

        let mut columns: Vec<String> = Vec::new();
        for item in &query.projections {
            match item {
                SelectItem::Wildcard => {
                    columns.extend(meta.schema.columns().iter().map(|c| c.name.clone()))
                }
                SelectItem::QualifiedWildcard(q) if q.eq_ignore_ascii_case(&binding) => {
                    columns.extend(meta.schema.columns().iter().map(|c| c.name.clone()))
                }
                SelectItem::Expr {
                    expr: Expr::Column { name, .. },
                    alias: None,
                } => {
                    meta.schema.resolve(None, name)?;
                    columns.push(name.clone());
                }
                other => {
                    return Err(Error::analysis(format!(
                        "cached view projections must be plain columns, got {other:?}"
                    )))
                }
            }
        }
        for key_col in &meta.key {
            if !columns.iter().any(|c| c.eq_ignore_ascii_case(key_col)) {
                return Err(Error::Config(format!(
                    "cached view {name} must retain base key column {key_col}"
                )));
            }
        }

        let predicate = match &query.filter {
            None => None,
            Some(f) => {
                let bound = bind_table_expr_with_binding(&meta, &binding, f)?;
                let conjuncts = split_conjuncts(&bound);
                let ranges = column_ranges(&conjuncts);
                if ranges.len() != 1 || ranges.len() != conjuncts.len() {
                    return Err(Error::analysis(
                        "cached view predicates must be a range over one column",
                    ));
                }
                let (col, range) = ranges.into_iter().next().expect("checked len");
                if !columns.iter().any(|c| c.eq_ignore_ascii_case(&col)) {
                    return Err(Error::Config(format!(
                        "cached view {name} predicate column {col} must be retained"
                    )));
                }
                Some(rcc_catalog::ViewPredicate { column: col, range })
            }
        };

        let schema = Schema::new(
            columns
                .iter()
                .map(|c| {
                    let ord = meta.schema.resolve(None, c).expect("validated");
                    let mut col = meta.schema.column(ord).clone();
                    col.qualifier = Some(name.to_ascii_lowercase());
                    col.source = Some(meta.id);
                    col
                })
                .collect(),
        );
        let key_ordinals: Vec<usize> = meta
            .key
            .iter()
            .map(|k| {
                columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(k))
                    .expect("key retained (validated above)")
            })
            .collect();

        let def = CachedViewDef {
            id: self.catalog.next_view_id(),
            name: name.to_ascii_lowercase(),
            region: region.id,
            base_table: meta.id,
            base_table_name: meta.name.clone(),
            columns,
            predicate,
            schema,
            key_ordinals,
            local_indexes,
        };
        let def = self.catalog.register_view(def)?;

        // subscribe through the region's agent (creates + populates the
        // view table at the cache)
        let mut sub_result: Result<()> = Err(Error::NotFound(format!("region {region_name}")));
        let found = self.runtime.with_agent(&region.name, |agent| {
            sub_result = agent.subscribe(Arc::clone(&def), &meta);
        });
        if !found {
            return Err(Error::NotFound(format!(
                "no agent for region {region_name}"
            )));
        }
        sub_result?;

        // install stats computed over the freshly populated view
        let handle = self.cache_storage.table(&def.name)?;
        let stats = TableStats::compute(&handle.snapshot());
        self.catalog.set_stats(&def.name, stats);
        self.plan_cache.invalidate();
        Ok(def)
    }
}

impl MTCache {
    /// Drop a cached view: end its replication subscription, remove its
    /// table from the cache storage and its catalog entry, and invalidate
    /// compiled plans (a view disappearing changes the consistency
    /// properties available — the paper's trigger for re-optimization).
    pub fn drop_cached_view(&self, name: &str) -> Result<()> {
        let def = self.catalog.view(name)?;
        let region = self.catalog.region(def.region)?;
        let mut removed = false;
        self.runtime.with_agent(&region.name, |agent| {
            removed = agent.unsubscribe(name);
        });
        if !removed {
            return Err(Error::internal(format!(
                "view {name} registered but its agent had no subscription"
            )));
        }
        self.cache_storage.drop_table(name);
        self.catalog.drop_view(name)?;
        self.plan_cache.invalidate();
        Ok(())
    }
}

/// If `sql` starts with `EXPLAIN ANALYZE` (any case), return the query
/// body after the prefix. A bare `EXPLAIN` is *not* matched — that form
/// is served by [`MTCache::explain`] without executing.
fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let rest = strip_keyword(sql.trim_start(), "EXPLAIN")?;
    strip_keyword(rest, "ANALYZE")
}

/// Strip a leading keyword (case-insensitive) plus at least one trailing
/// whitespace character separating it from what follows.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    if s.len() <= kw.len() || !s[..kw.len()].eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &s[kw.len()..];
    let trimmed = rest.trim_start();
    if trimmed.len() < rest.len() {
        Some(trimmed)
    } else {
        None
    }
}

/// Evaluate a constant expression (INSERT VALUES).
fn eval_const(e: &Expr) -> Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary {
            op: rcc_sql::UnaryOp::Neg,
            expr,
        } => match eval_const(expr)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::Type(format!("cannot negate {other}"))),
        },
        other => Err(Error::analysis(format!(
            "INSERT values must be literals, got {other:?}"
        ))),
    }
}

/// Bind an expression against one table's schema, qualifying columns by
/// the table name (used by DML and view-definition predicates).
fn bind_table_expr(meta: &TableMeta, e: &Expr) -> Result<BoundExpr> {
    bind_table_expr_with_binding(meta, &meta.name.clone(), e)
}

fn bind_table_expr_with_binding(meta: &TableMeta, binding: &str, e: &Expr) -> Result<BoundExpr> {
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                if !q.eq_ignore_ascii_case(binding) && !q.eq_ignore_ascii_case(&meta.name) {
                    return Err(Error::Analysis(format!("unknown table alias '{q}'")));
                }
            }
            meta.schema
                .resolve(None, name)
                .map_err(|_| Error::Analysis(format!("unknown column '{name}'")))?;
            Ok(BoundExpr::col(&meta.name, name))
        }
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Parameter(p) => Err(Error::Analysis(format!("unbound parameter ${p}"))),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(bind_table_expr_with_binding(meta, binding, left)?),
            op: *op,
            right: Box::new(bind_table_expr_with_binding(meta, binding, right)?),
        }),
        Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind_table_expr_with_binding(meta, binding, expr)?),
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(BoundExpr::Between {
            expr: Box::new(bind_table_expr_with_binding(meta, binding, expr)?),
            low: Box::new(bind_table_expr_with_binding(meta, binding, low)?),
            high: Box::new(bind_table_expr_with_binding(meta, binding, high)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(BoundExpr::InList {
            expr: Box::new(bind_table_expr_with_binding(meta, binding, expr)?),
            list: list
                .iter()
                .map(|e| bind_table_expr_with_binding(meta, binding, e))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
            expr: Box::new(bind_table_expr_with_binding(meta, binding, expr)?),
            negated: *negated,
        }),
        Expr::Function { name, args, .. }
            if name.eq_ignore_ascii_case("getdate") && args.is_empty() =>
        {
            Ok(BoundExpr::GetDate)
        }
        other => Err(Error::analysis(format!("unsupported expression {other:?}"))),
    }
}

fn split_conjuncts(e: &BoundExpr) -> Vec<BoundExpr> {
    match e {
        BoundExpr::Binary {
            left,
            op: rcc_sql::BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}
