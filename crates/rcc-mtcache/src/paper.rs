//! The paper's experimental rig (Sec. 4).
//!
//! "For the experiments we used a single cache DBMS and a back-end server.
//! The back-end server hosted a TPCD database with scale factor 1.0 ...
//! The experiments used only the Customer and Orders tables, which
//! contained 150,000 and 1,500,000 rows ... There were two local views:
//! `cust_prj(c_custkey, c_name, c_nationkey, c_acctbal)` and
//! `orders_prj(o_custkey, o_orderkey, o_totalprice)` ... The views were in
//! different currency regions" with the Table 4.1 settings:
//!
//! | cid | interval | delay | views      |
//! |-----|----------|-------|------------|
//! | CR1 | 15       | 5     | cust_prj   |
//! | CR2 | 10       | 5     | orders_prj |
//!
//! Units are seconds here (the paper leaves them abstract; its heartbeat
//! example uses seconds). `paper_setup` builds the whole rig at any scale
//! factor; `warm_up` advances simulated time far enough that both regions
//! have propagated at least once and their heartbeats are live.

use crate::server::MTCache;
use rcc_common::{Duration, Result};
use rcc_sql::{parse_statement, Statement};
use rcc_storage::SyncPolicy;
use rcc_tpcd::TpcdGenerator;
use std::path::PathBuf;

/// CR1 propagation interval (seconds) — Table 4.1.
pub const CR1_INTERVAL_S: i64 = 15;
/// CR2 propagation interval (seconds) — Table 4.1.
pub const CR2_INTERVAL_S: i64 = 10;
/// Propagation delay for both regions (seconds) — Table 4.1.
pub const DELAY_S: i64 = 5;

/// Where and how a durable paper rig persists its back-end state.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding `wal.log` and `pages.db` (created if absent).
    pub data_dir: PathBuf,
    /// WAL sync policy for commits.
    pub sync: SyncPolicy,
}

/// Build the paper's cache + back-end rig at `scale` (1.0 = the paper's
/// sizes; tests use much smaller scales — plan *choices* depend on catalog
/// statistics, whose ratios are scale-invariant).
pub fn paper_setup(scale: f64, seed: u64) -> Result<MTCache> {
    paper_setup_with(scale, seed, None)
}

/// [`paper_setup`] over a durable back-end: commits are written ahead to
/// `data_dir`, and a data directory left by a previous (possibly crashed)
/// process is recovered — committed rows, the replication log position,
/// per-region watermarks, and the simulated clock all resume where the
/// WAL and checkpoint say they were.
pub fn paper_setup_durable(scale: f64, seed: u64, opts: DurabilityOptions) -> Result<MTCache> {
    paper_setup_with(scale, seed, Some(opts))
}

fn paper_setup_with(
    scale: f64,
    seed: u64,
    durability: Option<DurabilityOptions>,
) -> Result<MTCache> {
    let cache = match &durability {
        Some(opts) => MTCache::new_durable(&opts.data_dir, opts.sync)?,
        None => MTCache::new(),
    };

    // base tables with the paper's physical design
    let cm = rcc_tpcd::customer_meta(cache.catalog().next_table_id());
    let om = rcc_tpcd::orders_meta(cache.catalog().next_table_id());
    cache.register_table(cm)?;
    cache.register_table(om)?;

    // load TPC-D data and install back-end statistics in the shadow catalog
    let gen = TpcdGenerator::new(scale, seed);
    gen.load_into(|t, rows| cache.bulk_load(t, rows))?;
    cache.analyze("customer")?;
    cache.analyze("orders")?;

    // Recovery replays on top of the deterministic bulk load: checkpoint
    // images replace whole tables, then the WAL tail re-applies. A no-op
    // for the in-memory rig.
    cache.finish_recovery()?;

    // currency regions per Table 4.1
    cache.create_region(
        "CR1",
        Duration::from_secs(CR1_INTERVAL_S),
        Duration::from_secs(DELAY_S),
    )?;
    cache.create_region(
        "CR2",
        Duration::from_secs(CR2_INTERVAL_S),
        Duration::from_secs(DELAY_S),
    )?;

    // the two local views
    create_view(
        &cache,
        "cust_prj",
        "CR1",
        "SELECT c_custkey, c_name, c_nationkey, c_acctbal FROM customer",
    )?;
    create_view(
        &cache,
        "orders_prj",
        "CR2",
        "SELECT o_custkey, o_orderkey, o_totalprice FROM orders",
    )?;

    // Views are populated from the recovered snapshots above; restoring
    // the watermarks last hands each agent its pre-crash cursor and
    // heartbeat so currency accounting continues instead of restarting
    // from zero. A no-op when nothing was recovered.
    cache.restore_watermarks()?;
    Ok(cache)
}

fn create_view(cache: &MTCache, name: &str, region: &str, select: &str) -> Result<()> {
    let stmt = parse_statement(select)?;
    let query = match stmt {
        Statement::Select(s) => s,
        other => panic!("static view SQL must be a SELECT, got {other:?}"),
    };
    cache.create_cached_view(name, region, &query, Vec::new())?;
    Ok(())
}

/// Advance simulated time until both regions have live heartbeats (several
/// propagation cycles), leaving the clock at a propagation-aligned instant.
pub fn warm_up(cache: &MTCache) -> Result<()> {
    // lcm(15, 10) = 30s cycles; two full cycles leave everything steady
    cache.advance(Duration::from_secs(60))
}

/// Scale the installed statistics of `objects` by `factor`, simulating a
/// paper-scale (SF 1.0) back-end over a small test database. The shadow
/// database carries back-end *estimates* (Sec. 3 point 1), so plan-choice
/// experiments can reproduce the paper's decisions — which depend on
/// absolute cardinalities vs. fixed remote costs — without loading 1.65 M
/// rows. Row counts and histogram buckets scale linearly; distinct counts
/// scale only for near-unique columns (a key has 150 k distinct values at
/// SF 1.0; `c_nationkey` still has 25).
pub fn scale_stats(cache: &MTCache, objects: &[&str], factor: f64) {
    for name in objects {
        let stats = cache.catalog().stats(name);
        let mut scaled = (*stats).clone();
        let old_rows = scaled.row_count;
        scaled.row_count = (scaled.row_count as f64 * factor).round() as u64;
        for col in scaled.columns.values_mut() {
            if old_rows > 0 && col.distinct as f64 >= 0.5 * old_rows as f64 {
                col.distinct = (col.distinct as f64 * factor).round() as u64;
            }
            col.nulls = (col.nulls as f64 * factor).round() as u64;
            for bucket in &mut col.histogram {
                *bucket = (*bucket as f64 * factor).round() as u64;
            }
        }
        cache.catalog().set_stats(name, scaled);
    }
}

/// [`paper_setup`] at a small physical scale with statistics scaled up to
/// the paper's SF 1.0 — the configuration the plan-choice experiments
/// (Table 4.3) run under.
pub fn paper_setup_sf1_stats(physical_scale: f64, seed: u64) -> Result<MTCache> {
    let cache = paper_setup(physical_scale, seed)?;
    let factor = 1.0 / physical_scale;
    scale_stats(
        &cache,
        &["customer", "orders", "cust_prj", "orders_prj"],
        factor,
    );
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::Timestamp;

    #[test]
    fn rig_builds_and_warms_up() {
        let cache = paper_setup(0.001, 42).unwrap();
        assert_eq!(cache.catalog().regions().len(), 2);
        assert_eq!(cache.catalog().all_views().len(), 2);
        let v = cache.cache_storage().table("cust_prj").unwrap();
        assert_eq!(v.snapshot().row_count(), 150);
        let v = cache.cache_storage().table("orders_prj").unwrap();
        assert!(v.snapshot().row_count() > 1000);

        assert!(
            cache.local_heartbeat("CR1").is_none(),
            "no heartbeat before warm-up"
        );
        warm_up(&cache).unwrap();
        let hb1 = cache.local_heartbeat("CR1").unwrap();
        let hb2 = cache.local_heartbeat("CR2").unwrap();
        assert!(hb1 > Timestamp::ZERO);
        assert!(hb2 > Timestamp::ZERO);
        // right after a CR2 propagation at t=60s: staleness = delay = 5s
        assert_eq!(
            cache.region_staleness("CR2").unwrap(),
            Duration::from_secs(5)
        );
        // CR1's last propagation was also at 60s (60 = 4×15)
        assert_eq!(
            cache.region_staleness("CR1").unwrap(),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn stats_installed_for_views() {
        let cache = paper_setup(0.001, 42).unwrap();
        assert_eq!(cache.catalog().stats("cust_prj").row_count, 150);
        assert_eq!(cache.catalog().stats("customer").row_count, 150);
        assert!(cache.catalog().stats("orders_prj").row_count > 0);
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    #[test]
    fn scale_stats_multiplies_counts_but_not_low_cardinality_distincts() {
        let cache = paper_setup(0.001, 42).unwrap();
        let before = cache.catalog().stats("customer");
        assert_eq!(before.row_count, 150);
        scale_stats(&cache, &["customer"], 1000.0);
        let after = cache.catalog().stats("customer");
        assert_eq!(after.row_count, 150_000);
        // key column is near-unique: distinct scales with rows
        assert_eq!(after.column("c_custkey").distinct, 150_000);
        // nationkey has 25 distinct values regardless of scale
        assert_eq!(
            after.column("c_nationkey").distinct,
            before.column("c_nationkey").distinct
        );
        // histograms scale so selectivities stay put
        let hist_sum: u64 = after.column("c_custkey").histogram.iter().sum();
        assert_eq!(hist_sum, 150_000);
    }

    #[test]
    fn sf1_rig_reports_paper_cardinalities() {
        let cache = paper_setup_sf1_stats(0.001, 42).unwrap();
        assert_eq!(cache.catalog().stats("customer").row_count, 150_000);
        let orders = cache.catalog().stats("orders").row_count;
        assert!((1_300_000..=1_700_000).contains(&orders), "orders={orders}");
        // physical data stays small
        assert_eq!(
            cache
                .master()
                .table("customer")
                .unwrap()
                .snapshot()
                .row_count(),
            150
        );
    }
}
