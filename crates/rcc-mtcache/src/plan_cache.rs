//! Plan caching.
//!
//! The paper's split of enforcement — consistency at compile time, currency
//! at run time — exists precisely so plans can be reused: "this approach
//! requires re-optimization only if a view's consistency properties
//! change" (Sec. 3.2). The dynamic SwitchUnion plan stays valid across
//! heartbeats, updates and agent cycles; only *catalog* changes (new or
//! dropped views, regions, tables, indexes, refreshed statistics) can make
//! it stale.
//!
//! [`PlanCache`] keys compiled plans by (SQL text, bound parameter values)
//! and tags each entry with the catalog epoch at compile time. The server
//! bumps the epoch on every DDL/ANALYZE, invalidating all entries at once —
//! coarse, like the real system's schema-version plan-cache keys.

use parking_lot::Mutex;
use rcc_common::{TableId, Value};
use rcc_flow::{FlowAnalysis, GuardCert};
use rcc_optimizer::optimize::Optimized;
use rcc_optimizer::PhysicalPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The guard-elided alternative of a compiled plan, plus the certificates
/// that justify each removed guard (replayed by `rcc-verify` and by the
/// debug-build runtime cross-check).
#[derive(Debug)]
pub struct ElidedPlan {
    /// The plan with statically-decided guards removed/collapsed.
    pub plan: PhysicalPlan,
    /// One certificate per elided guard.
    pub certs: Vec<GuardCert>,
}

/// A compiled query: the optimized plan plus the binding-time metadata the
/// server needs per execution.
#[derive(Debug)]
pub struct CompiledQuery {
    /// The optimizer's output.
    pub optimized: Optimized,
    /// Base tables the query reads (for timeline-consistency bookkeeping).
    pub tables: Vec<TableId>,
    /// Rendered currency-clause lint diagnostics from compile time,
    /// attached to every result served from this plan.
    pub lint: Vec<String>,
    /// Currency dataflow analysis of the optimized plan (per-node
    /// delivered-staleness certificates).
    pub flow: FlowAnalysis,
    /// Present when guard elision is enabled and the analysis certified at
    /// least one removal. Served only for sessions with no timeline floors
    /// and no forced-local degradation — the certificates' premises.
    pub elided: Option<ElidedPlan>,
}

/// Compiled-plan cache with epoch-based invalidation.
#[derive(Debug, Default)]
pub struct PlanCache {
    epoch: AtomicU64,
    entries: Mutex<HashMap<String, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Clone)]
struct Entry {
    epoch: u64,
    compiled: Arc<CompiledQuery>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Current catalog epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Invalidate every cached plan (catalog changed: DDL or ANALYZE).
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of live entries (stale entries are evicted lazily).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Cache key for a query + parameter binding.
    pub fn key(sql: &str, params: &HashMap<String, Value>) -> String {
        if params.is_empty() {
            return sql.to_string();
        }
        let mut pairs: Vec<(&String, &Value)> = params.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let suffix: Vec<String> = pairs.into_iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{sql}\u{1}{}", suffix.join("\u{1}"))
    }

    /// Look up a plan compiled at the current epoch.
    pub fn get(&self, key: &str) -> Option<Arc<CompiledQuery>> {
        let epoch = self.epoch();
        let mut entries = self.entries.lock();
        match entries.get(key) {
            Some(e) if e.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.compiled))
            }
            Some(_) => {
                entries.remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly compiled query under the current epoch.
    pub fn put(&self, key: String, compiled: Arc<CompiledQuery>) {
        let epoch = self.epoch();
        self.entries.lock().insert(key, Entry { epoch, compiled });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_optimizer::optimize::PlanChoice;
    use rcc_optimizer::PhysicalPlan;

    fn dummy() -> Arc<CompiledQuery> {
        let catalog = rcc_catalog::Catalog::new();
        Arc::new(CompiledQuery {
            optimized: Optimized {
                plan: PhysicalPlan::OneRow,
                cost: 1.0,
                est_rows: 1.0,
                choice: PlanChoice::BackendLocal,
            },
            tables: vec![],
            lint: vec![],
            flow: rcc_flow::analyze(&catalog, &PhysicalPlan::OneRow),
            elided: None,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pc = PlanCache::new();
        assert!(pc.get("q").is_none());
        pc.put("q".into(), dummy());
        assert!(pc.get("q").is_some());
        assert_eq!(pc.stats(), (1, 1));
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn invalidation_evicts_lazily() {
        let pc = PlanCache::new();
        pc.put("q".into(), dummy());
        pc.invalidate();
        assert!(pc.get("q").is_none(), "stale epoch");
        assert!(pc.is_empty(), "stale entry evicted on access");
        // re-cache under the new epoch works
        pc.put("q".into(), dummy());
        assert!(pc.get("q").is_some());
    }

    #[test]
    fn keys_include_sorted_params() {
        let mut p1 = HashMap::new();
        p1.insert("b".to_string(), Value::Int(2));
        p1.insert("a".to_string(), Value::Int(1));
        let mut p2 = HashMap::new();
        p2.insert("a".to_string(), Value::Int(1));
        p2.insert("b".to_string(), Value::Int(2));
        assert_eq!(PlanCache::key("q", &p1), PlanCache::key("q", &p2));
        let mut p3 = HashMap::new();
        p3.insert("a".to_string(), Value::Int(9));
        assert_ne!(PlanCache::key("q", &p1), PlanCache::key("q", &p3));
        assert_eq!(PlanCache::key("q", &HashMap::new()), "q");
    }
}
