//! Violation policies.
//!
//! The paper's introduction lists the actions a system can take once
//! currency requirements are explicit and a request cannot meet them:
//! "possible actions include logging the violation, returning the data but
//! with an error code, or aborting the request." These matter most in the
//! *traditional replicated database* scenario — a cache whose back-end link
//! is down (or absent by design) cannot fall back to remote execution.

/// What to do when a query's C&C requirements cannot be met.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Enforce strictly: fail the query with
    /// [`rcc_common::Error::CurrencyViolation`] ("aborting the request").
    #[default]
    Reject,
    /// Serve the freshest local data anyway and attach a warning per
    /// violated guard ("returning the data but with an error code").
    ServeStale,
}
