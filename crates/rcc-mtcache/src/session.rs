//! Sessions and timeline consistency (paper Sec. 2.3).
//!
//! "We take the approach that forward movement of time is not enforced by
//! default and has to be explicitly specified by bracketing the query
//! sequence with `BEGIN TIMEORDERED` and `END TIMEORDERED`. This guarantees
//! that later queries use data that is at least as fresh as the data used
//! by queries earlier in the sequence."
//!
//! Implementation: while time-ordered, the session keeps a **snapshot
//! floor** per currency region. Every guard evaluated for a region must
//! find a heartbeat at or above the floor (enforced inside the guard —
//! `rcc_executor::guard`), otherwise the plan falls back to the back-end,
//! which is always at least as fresh. After each query the floors ratchet
//! up: local reads raise their region's floor to the observed heartbeat;
//! a remote read of table T raises the floor of *every* region caching T
//! to the back-end's latest commit time (the remote result reflected it,
//! so later reads must too).

use crate::policy::ViolationPolicy;
use crate::result::QueryResult;
use crate::server::MTCache;
use rcc_common::{RegionId, Result, Timestamp, Value};
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;

/// A client session against the cache.
#[derive(Debug)]
pub struct Session<'a> {
    cache: &'a MTCache,
    timeline: bool,
    floors: HashMap<RegionId, Timestamp>,
    policy: ViolationPolicy,
    label: String,
}

impl<'a> Session<'a> {
    pub(crate) fn new(cache: &'a MTCache) -> Session<'a> {
        Session {
            cache,
            timeline: false,
            floors: HashMap::new(),
            policy: ViolationPolicy::Reject,
            label: cache.next_session_label(),
        }
    }

    /// This session's label (`session-N`), used to attribute journal
    /// events.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Is a TIMEORDERED bracket active?
    pub fn is_timeordered(&self) -> bool {
        self.timeline
    }

    /// Current floors (empty outside a TIMEORDERED bracket).
    pub fn floors(&self) -> &HashMap<RegionId, Timestamp> {
        &self.floors
    }

    /// Set the violation policy used by this session.
    pub fn set_policy(&mut self, policy: ViolationPolicy) {
        self.policy = policy;
    }

    /// Execute one statement in this session.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute_with_params(sql, &HashMap::new())
    }

    /// Execute with parameters.
    pub fn execute_with_params(
        &mut self,
        sql: &str,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        // session-level statements are handled here; everything else goes
        // through the server with this session's floors
        match parse_statement(sql)? {
            Statement::BeginTimeordered => {
                self.timeline = true;
                self.floors.clear();
                return Ok(empty_result());
            }
            Statement::EndTimeordered => {
                self.timeline = false;
                self.floors.clear();
                return Ok(empty_result());
            }
            _ => {}
        }
        let floors = if self.timeline {
            self.floors.clone()
        } else {
            HashMap::new()
        };
        let result = self
            .cache
            .execute_internal(sql, params, &floors, self.policy, &self.label)?;
        if self.timeline {
            self.ratchet(&result);
        }
        Ok(result)
    }

    /// Raise the floors based on what the query observed.
    fn ratchet(&mut self, result: &QueryResult) {
        for g in &result.guards {
            if g.chose_local {
                if let Some(hb) = g.heartbeat {
                    let floor = self.floors.entry(g.region).or_insert(Timestamp::ZERO);
                    if hb > *floor {
                        *floor = hb;
                    }
                }
            }
        }
        if result.used_remote {
            // the remote result reflects the latest back-end snapshot: every
            // region caching one of the touched tables must now be at least
            // that fresh for later local reads
            let (_, latest) = self.cache.master().latest_commit();
            for view in self.cache.catalog().all_views() {
                if result.tables.contains(&view.base_table) {
                    let floor = self.floors.entry(view.region).or_insert(Timestamp::ZERO);
                    if latest > *floor {
                        *floor = latest;
                    }
                }
            }
        }
    }
}

fn empty_result() -> QueryResult {
    QueryResult {
        schema: rcc_common::Schema::empty(),
        rows: Vec::new(),
        plan_choice: rcc_optimizer::optimize::PlanChoice::BackendLocal,
        plan_explain: String::new(),
        est_cost: 0.0,
        guards: Vec::new(),
        used_remote: false,
        warnings: Vec::new(),
        timings: Default::default(),
        tables: Vec::new(),
        stats: Default::default(),
    }
}
