#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! MTCache: a mid-tier database cache enforcing relaxed currency &
//! consistency constraints — the system of Guo, Larson, Ramakrishnan &
//! Goldstein, *"Relaxed Currency and Consistency: How to Say 'Good Enough'
//! in SQL"*, SIGMOD 2004.
//!
//! The deployment mirrors the paper (Sec. 3):
//!
//! 1. the **back-end server** ([`BackendServer`]) holds the master database
//!    and serves the latest snapshot;
//! 2. the **cache DBMS** ([`MTCache`]) holds a *shadow database* — the same
//!    table definitions, empty, with back-end statistics — plus cached
//!    **materialized views** kept current by transactional replication;
//! 3. queries are submitted to the cache, whose cost-based optimizer
//!    decides — per query and per input — whether to read a local view
//!    (guarded by a runtime currency check) or ship SQL to the back-end;
//! 4. all DML is forwarded transparently to the back-end.
//!
//! ```no_run
//! use rcc_mtcache::MTCache;
//! use rcc_common::Duration;
//!
//! let cache = MTCache::new();
//! cache.execute("CREATE TABLE books (isbn INT, title VARCHAR, PRIMARY KEY (isbn))").unwrap();
//! cache.create_region("CR1", Duration::from_secs(10), Duration::from_secs(2)).unwrap();
//! cache.execute("CREATE CACHED VIEW books_v REGION cr1 AS SELECT isbn, title FROM books").unwrap();
//! let result = cache
//!     .execute("SELECT title FROM books WHERE isbn = 42 CURRENCY BOUND 30 SEC ON (books)")
//!     .unwrap();
//! println!("{} rows via {:?}", result.rows.len(), result.plan_choice);
//! ```

pub mod backend_server;
pub mod paper;
pub mod plan_cache;
pub mod policy;
pub mod qcache;
pub mod result;
pub mod server;
pub mod session;

pub use backend_server::BackendServer;
pub use plan_cache::PlanCache;
pub use policy::ViolationPolicy;
pub use qcache::{QueryResultCache, DEFAULT_QCACHE_CAPACITY};
pub use result::QueryResult;
pub use server::{DurabilityStatus, MTCache};
pub use session::Session;
