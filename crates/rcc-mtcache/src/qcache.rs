//! Query-result caching (paper Sec. 1, third scenario).
//!
//! "Suppose we have a component that caches SQL query results ... The
//! cache can easily keep track of the staleness of its cached results and
//! if a result does not satisfy a query's currency requirements,
//! transparently recompute it. In this way, an application can always be
//! assured that its currency requirements are met."
//!
//! Cached entries carry a conservative `as_of` snapshot time: the oldest
//! heartbeat among local reads (remote-only results use the execution
//! time). A hit is served only when `now − as_of` is within the *tightest*
//! currency bound of the incoming query; otherwise the result is
//! recomputed through the ordinary C&C-enforcing pipeline.
//!
//! Concurrency: a single map lock guards the entries; hit/miss counters
//! are plain atomics so `stats()` never contends with `execute()`. Each
//! entry also memoizes the query's tightest bound, so repeat executions of
//! the same SQL text — hits *and* recomputes — skip the parser and binder
//! entirely. Capacity is bounded: the least-recently-used entry is evicted
//! once the map outgrows [`QueryResultCache::capacity`].

use crate::result::QueryResult;
use crate::server::MTCache;
use parking_lot::Mutex;
use rcc_common::{Clock, Duration, Result, Timestamp, Value};
use rcc_optimizer::bind_select;
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default bound on the number of memoized SQL strings.
pub const DEFAULT_QCACHE_CAPACITY: usize = 256;

#[derive(Debug, Clone)]
struct Entry {
    /// Memoized tightest currency bound for this SQL text — hits and
    /// recomputes alike skip the parse/bind pipeline.
    bound: Duration,
    /// The stored result and its conservative snapshot time. `None` for
    /// bound-0 queries, which are never served from this cache.
    cached: Option<(QueryResult, Timestamp)>,
    /// Recency stamp for LRU eviction (monotone per cache).
    last_used: u64,
}

/// A result cache layered over an [`MTCache`].
#[derive(Debug)]
pub struct QueryResultCache {
    entries: Mutex<HashMap<String, Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryResultCache {
    fn default() -> Self {
        QueryResultCache::with_capacity(DEFAULT_QCACHE_CAPACITY)
    }
}

impl QueryResultCache {
    /// An empty cache with the default capacity.
    pub fn new() -> QueryResultCache {
        QueryResultCache::default()
    }

    /// An empty cache bounded to `capacity` distinct SQL strings
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> QueryResultCache {
        QueryResultCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The maximum number of SQL strings this cache memoizes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached results (bound-only memo entries don't count).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .values()
            .filter(|e| e.cached.is_some())
            .count()
    }

    /// True when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached result and memoized bound.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Serve `sql` from cache when a stored result still satisfies the
    /// query's tightest currency bound; recompute (and store) otherwise.
    pub fn execute(&self, cache: &MTCache, sql: &str) -> Result<QueryResult> {
        let now = cache.clock().now();
        // One lock acquisition answers both "is the stored result fresh
        // enough?" and "do we already know this query's bound?".
        let memoized_bound = {
            let mut entries = self.entries.lock();
            match entries.get_mut(sql) {
                Some(entry) => {
                    entry.last_used = self.stamp();
                    if let Some((result, as_of)) = &entry.cached {
                        if !entry.bound.is_zero() && now.since(*as_of) <= entry.bound {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(result.clone());
                        }
                    }
                    Some(entry.bound)
                }
                None => None,
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bound = match memoized_bound {
            Some(bound) => bound,
            None => tightest_bound(cache, sql)?,
        };
        let result = cache.execute(sql)?;
        // bound-0 queries demand the latest snapshot: memoize the bound so
        // the next execution skips the parser, but never store the result
        // (an update may have committed since)
        let cached = if bound.is_zero() {
            None
        } else {
            Some((result.clone(), conservative_as_of(&result, now)))
        };
        let mut entries = self.entries.lock();
        let last_used = self.stamp();
        entries.insert(
            sql.to_string(),
            Entry {
                bound,
                cached,
                last_used,
            },
        );
        while entries.len() > self.capacity {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
            }
        }
        Ok(result)
    }
}

/// The tightest currency bound across the query's consistency classes
/// (zero when the query carries no clause — such results are never served
/// from this cache, matching the paper's "traditional semantics" default).
fn tightest_bound(cache: &MTCache, sql: &str) -> Result<Duration> {
    let stmt = parse_statement(sql)?;
    let select = match stmt {
        Statement::Select(s) => *s,
        other => {
            return Err(rcc_common::Error::analysis(format!(
                "result cache only handles queries, got {other:?}"
            )))
        }
    };
    let graph = bind_select(cache.catalog(), &select, &HashMap::new())?;
    Ok(graph
        .constraint
        .classes
        .iter()
        .map(|c| c.bound)
        .min()
        .unwrap_or(Duration::ZERO))
}

/// Conservative snapshot time of a computed result: the oldest heartbeat
/// among local reads; pure-remote results reflect `now`.
fn conservative_as_of(result: &QueryResult, now: Timestamp) -> Timestamp {
    result
        .guards
        .iter()
        .filter(|g| g.chose_local)
        .filter_map(|g| g.heartbeat)
        .min()
        .unwrap_or(now)
}

/// Convenience: value of the single cell of a single-row result.
pub fn scalar(result: &QueryResult) -> Option<&Value> {
    result.rows.first().map(|r| r.get(0))
}
