//! Query-result caching (paper Sec. 1, third scenario).
//!
//! "Suppose we have a component that caches SQL query results ... The
//! cache can easily keep track of the staleness of its cached results and
//! if a result does not satisfy a query's currency requirements,
//! transparently recompute it. In this way, an application can always be
//! assured that its currency requirements are met."
//!
//! Cached entries carry a conservative `as_of` snapshot time: the oldest
//! heartbeat among local reads (remote-only results use the execution
//! time). A hit is served only when `now − as_of` is within the *tightest*
//! currency bound of the incoming query; otherwise the result is
//! recomputed through the ordinary C&C-enforcing pipeline.

use crate::result::QueryResult;
use crate::server::MTCache;
use parking_lot::Mutex;
use rcc_common::{Clock, Duration, Result, Timestamp, Value};
use rcc_optimizer::bind_select;
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Entry {
    result: QueryResult,
    as_of: Timestamp,
}

/// A result cache layered over an [`MTCache`].
#[derive(Debug, Default)]
pub struct QueryResultCache {
    entries: Mutex<HashMap<String, Entry>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl QueryResultCache {
    /// An empty cache.
    pub fn new() -> QueryResultCache {
        QueryResultCache::default()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drop every cached result.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Serve `sql` from cache when a stored result still satisfies the
    /// query's tightest currency bound; recompute (and store) otherwise.
    pub fn execute(&self, cache: &MTCache, sql: &str) -> Result<QueryResult> {
        let bound = tightest_bound(cache, sql)?;
        let now = cache.clock().now();
        if bound.is_zero() {
            // tight-default queries demand the latest snapshot: never serve
            // them from this cache (an update may have committed since)
            *self.misses.lock() += 1;
            return cache.execute(sql);
        }
        if let Some(entry) = self.entries.lock().get(sql) {
            if now.since(entry.as_of) <= bound {
                *self.hits.lock() += 1;
                return Ok(entry.result.clone());
            }
        }
        *self.misses.lock() += 1;
        let result = cache.execute(sql)?;
        let as_of = conservative_as_of(&result, now);
        self.entries.lock().insert(
            sql.to_string(),
            Entry {
                result: result.clone(),
                as_of,
            },
        );
        Ok(result)
    }
}

/// The tightest currency bound across the query's consistency classes
/// (zero when the query carries no clause — such results are never served
/// from this cache, matching the paper's "traditional semantics" default).
fn tightest_bound(cache: &MTCache, sql: &str) -> Result<Duration> {
    let stmt = parse_statement(sql)?;
    let select = match stmt {
        Statement::Select(s) => *s,
        other => {
            return Err(rcc_common::Error::analysis(format!(
                "result cache only handles queries, got {other:?}"
            )))
        }
    };
    let graph = bind_select(cache.catalog(), &select, &HashMap::new())?;
    Ok(graph
        .constraint
        .classes
        .iter()
        .map(|c| c.bound)
        .min()
        .unwrap_or(Duration::ZERO))
}

/// Conservative snapshot time of a computed result: the oldest heartbeat
/// among local reads; pure-remote results reflect `now`.
fn conservative_as_of(result: &QueryResult, now: Timestamp) -> Timestamp {
    result
        .guards
        .iter()
        .filter(|g| g.chose_local)
        .filter_map(|g| g.heartbeat)
        .min()
        .unwrap_or(now)
}

/// Convenience: value of the single cell of a single-row result.
pub fn scalar(result: &QueryResult) -> Option<&Value> {
    result.rows.first().map(|r| r.get(0))
}
