#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal model-checking harness with loom's surface shape: a [`model`]
//! entry point plus `thread`/`sync` modules. Real loom exhaustively
//! enumerates interleavings of its shimmed primitives; this stand-in runs
//! the model closure many times over **real** `std` threads with randomized
//! yield points injected through [`thread::yield_now`], which in practice
//! shakes out the same ordering bugs (lost wakeups, double frees of a slot,
//! non-joined threads) on the code paths these tests cover.
//!
//! Iteration counts: [`DEFAULT_ITERS`] per model by default; builds with
//! `--cfg loom` (the CI model-checking job) multiply that by
//! [`LOOM_ITER_FACTOR`] for a deeper search.

use std::sync::atomic::{AtomicU64, Ordering};

/// Iterations per [`model`] call in a normal build.
pub const DEFAULT_ITERS: usize = 24;

/// Extra iteration factor applied when built with `--cfg loom`.
pub const LOOM_ITER_FACTOR: usize = 8;

/// Explore `f` under many interleavings: run it repeatedly, perturbing the
/// scheduler through randomized spin/yield at every [`thread::yield_now`].
/// Panics (assertion failures inside the model) propagate to the caller,
/// failing the surrounding test exactly like upstream loom.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = if cfg!(loom) {
        DEFAULT_ITERS * LOOM_ITER_FACTOR
    } else {
        DEFAULT_ITERS
    };
    for i in 0..iters {
        SCHEDULE_SEED.store(
            0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1),
            Ordering::Relaxed,
        );
        f();
    }
}

static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(1);

/// Threading shims, backed by `std::thread` with perturbed yields.
pub mod thread {
    use super::SCHEDULE_SEED;
    use std::sync::atomic::Ordering;

    pub use std::thread::JoinHandle;

    /// Spawn a model thread (a real OS thread here).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }

    /// A perturbed yield point: sometimes spins, sometimes yields the OS
    /// scheduler, sometimes sleeps — varying per [`super::model`] iteration
    /// so successive runs explore different interleavings.
    pub fn yield_now() {
        let x = SCHEDULE_SEED.fetch_add(0x2545_f491_4f6c_dd1d, Ordering::Relaxed);
        match (x >> 7) % 4 {
            0 => {}
            1 => std::hint::spin_loop(),
            2 => std::thread::yield_now(),
            _ => std::thread::sleep(std::time::Duration::from_micros((x >> 11) % 50)),
        }
    }
}

/// Synchronization shims, re-exporting `std` primitives.
pub mod sync {
    pub use std::sync::atomic;
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
}
