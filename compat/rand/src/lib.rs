#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Workload generators and benchmarks only need a deterministic, seedable
//! generator with `gen_range` over integer/float ranges and `gen_bool`.
//! [`rngs::StdRng`] here is xoshiro256++ seeded via splitmix64 — different
//! streams than upstream `StdRng` (ChaCha12), but every use in this
//! workspace seeds explicitly and only relies on determinism, not on a
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed into the xoshiro state
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample from `[lo, hi)`; `hi` is exclusive unless `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // span as u128 so i64::MIN..i64::MAX style ranges cannot
                // overflow; modulo bias is irrelevant for simulation use
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo_w + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let _ = inclusive;
                assert!(lo < hi, "cannot sample from empty float range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<i64> = (0..16).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let diff: Vec<i64> = (0..16).map(|_| c.gen_range(0i64..1_000_000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1u64..=15);
            assert!((1..=15).contains(&w));
            let f = rng.gen_range(10.0f64..10_000.0);
            assert!((10.0..10_000.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }
}
