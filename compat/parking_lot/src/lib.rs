#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal implementation of the subset it uses: [`Mutex`] and [`RwLock`]
//! with `parking_lot` semantics — `lock()`/`read()`/`write()` return guards
//! directly (no `Result`), and a panic while holding a lock does not poison
//! it for later users.
//!
//! Backed by `std::sync` locks; poison errors are stripped via
//! [`std::sync::PoisonError::into_inner`].

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => {
                f.debug_struct("RwLock").field("data", &"<locked>").finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
