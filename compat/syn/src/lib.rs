//! Offline stand-in for `syn`.
//!
//! The build environment has no crates.io access, so instead of the full
//! `syn` AST this crate vendors the subset `rcc-lint`'s workspace source
//! analyzer actually needs: a lossless-enough *token-level* lexer for Rust
//! source. Comments are skipped, string/char literals are recognized (so a
//! `"Mutex<Table>"` inside a doc string is a literal, not code), and every
//! token carries its 1-based source line for findings.
//!
//! The API is deliberately small: [`lex_file`] plus the [`Tok`]/[`TokKind`]
//! types. Anything fancier (expression parsing, spans into a real AST) is
//! out of scope — the analyzer works on token patterns.

use std::fmt;

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Token kinds, collapsed to what a pattern-matching analyzer needs.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `Mutex`, `self`, ...).
    Ident(String),
    /// A lifetime (`'a`), label, or similar `'`-prefixed name.
    Lifetime(String),
    /// A string literal (quotes stripped, escapes NOT processed) — covers
    /// `"..."`, `r"..."` and `r#"..."#` forms.
    Str(String),
    /// A character or byte literal; payload is the raw interior text.
    Char(String),
    /// A numeric literal, verbatim.
    Num(String),
    /// Any single punctuation character (`{`, `<`, `.`, `#`, ...).
    /// Multi-character operators arrive as consecutive `Punct` tokens.
    Punct(char),
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => f.write_str(s),
            TokKind::Lifetime(s) => write!(f, "'{s}"),
            TokKind::Str(s) => write!(f, "\"{s}\""),
            TokKind::Char(s) => write!(f, "'{s}'"),
            TokKind::Num(s) => f.write_str(s),
            TokKind::Punct(c) => write!(f, "{c}"),
        }
    }
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// Tokenize Rust source. Never fails: unterminated literals are closed at
/// end of input (the analyzer lints real, compiling source, so this only
/// matters for robustness).
pub fn lex_file(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let begin = i;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        i += 1;
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Str(src[begin..i.min(b.len())].to_string()),
                    line: start_line,
                });
                i += 1; // closing quote
            }
            'r' | 'b' if is_raw_string_start(b, i) => {
                let start_line = line;
                // Skip the prefix: `r` or `br` (byte-raw). Raw strings never
                // process escapes, so the generic `"` branch (which honours
                // `\"`) must not see them — a raw body ending in `\` would
                // swallow the closing quote and desync the whole file.
                let mut j = i + 1 + usize::from(b[i] == b'b');
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                let begin = j;
                let mut closer = vec![b'#'; hashes + 1];
                closer[0] = b'"';
                let end = find_sub(b, &closer, j).unwrap_or(b.len());
                for &ch in &b[begin..end] {
                    if ch == b'\n' {
                        line += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str(src[begin..end].to_string()),
                    line: start_line,
                });
                i = end + closer.len();
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'"'`).
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    // escaped char literal
                    j += 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Char(src[i + 1..j.min(b.len())].to_string()),
                        line,
                    });
                    i = j + 1;
                } else if j + 1 < b.len() && b[j + 1] == b'\'' && b[j] != b'\'' {
                    // single-char literal, punctuation included (`'"'`, `'('`);
                    // without this a quote char desyncs string lexing for the
                    // rest of the file
                    toks.push(Tok {
                        kind: TokKind::Char(src[j..j + 1].to_string()),
                        line,
                    });
                    i = j + 2;
                } else {
                    let begin = j;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j > begin {
                        toks.push(Tok {
                            kind: TokKind::Char(src[begin..j].to_string()),
                            line,
                        });
                        i = j + 1;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime(src[begin..j].to_string()),
                            line,
                        });
                        i = j;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let begin = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `1..2` range: stop the number before `..`
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num(src[begin..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let begin = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident(src[begin..i].to_string()),
                    line,
                });
            }
            other => {
                toks.push(Tok {
                    kind: TokKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Is `b[i..]` the start of a raw string literal (`r"`, `r#"`, `br"`,
/// `br#"`, ...)? `b[i]` is `r` or `b`; a lone `b` (plain byte string
/// `b"..."`) is NOT raw — its escapes are processed by the `"` branch.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if b[i] == b'b' {
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// First occurrence of `needle` in `haystack[from..]`.
fn find_sub(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&k| &haystack[k..k + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex_file(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = lex_file("fn main() { let x = 1; }");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("main"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num("1".into())));
    }

    #[test]
    fn comments_skipped_strings_kept() {
        let toks = lex_file("// Mutex<Table>\n/* Mutex<Table> */ let s = \"Mutex<Table>\";");
        assert!(!toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str("Mutex<Table>".into())));
    }

    #[test]
    fn lines_tracked() {
        let toks = lex_file("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex_file("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime("a".into())));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char("y".into())));
    }

    #[test]
    fn punctuation_char_literals_do_not_desync_strings() {
        // `'"'` must lex as a char literal; treating its quote as a string
        // opener would swallow the rest of the file as string content
        let toks = lex_file("match c { '\"' => 1, '(' => 2, _ => 0 }\nfn after() {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char("\"".into())));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char("(".into())));
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn raw_strings() {
        let toks = lex_file(r##"let s = r#"rcc_x{l="v"}"#;"##);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str("rcc_x{l=\"v\"}".into())));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ fn"), vec!["fn"]);
    }

    #[test]
    fn byte_raw_strings_do_not_desync() {
        // `br"...\"` regression: the old lexer consumed `br` as an ident,
        // then escape-processed the raw body as a normal string — the
        // trailing backslash swallowed the closing quote and everything
        // after it (including `fn hidden`) vanished from the token stream.
        let toks = lex_file("let p = br\"C:\\\\\\\"; let q = 1;\nfn hidden() {}");
        assert!(toks.iter().any(|t| t.is_ident("hidden")), "{toks:?}");
        // Raw string bodies keep braces and quotes verbatim.
        let toks = lex_file(r###"let s = br#"{"k": "v\"}"#; fn after() {}"###);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str("{\"k\": \"v\\\"}".into())));
        assert!(toks.iter().any(|t| t.is_ident("after")), "{toks:?}");
        // Plain byte strings still go through the escape-processing path.
        let toks = lex_file("let b = b\"a\\\"b\"; fn tail() {}");
        assert!(toks.iter().any(|t| t.is_ident("tail")), "{toks:?}");
    }

    #[test]
    fn raw_string_with_braces_and_quotes() {
        let toks = lex_file(r###"let s = r#"brace { quote " backslash \ }"#; fn more() {}"###);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str("brace { quote \" backslash \\ }".into())));
        assert!(toks.iter().any(|t| t.is_ident("more")), "{toks:?}");
    }
}
