//! Case generation loop, config, and the deterministic test RNG.

use crate::strategy::Strategy;

/// Runner configuration; only `cases` matters for this stand-in, the other
/// fields exist so `.. ProptestConfig::default()` updates compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on generator rejections (filters) across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A skipped case with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of one test-case closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator used to drive strategies (xoshiro256++ seeded
/// via splitmix64). Fixed seed per run: failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `lo..=hi`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

/// Drive `config.cases` generated values through `test`, panicking on the
/// first failure. Invoked by the `proptest!` macro expansion.
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng::seed_from_u64(0x5EED_CAFE_F00D_D00D);
    let mut rejects: u32 = 0;
    let mut case: u32 = 0;
    while case < config.cases {
        let Some(value) = strategy.generate(&mut rng) else {
            rejects += 1;
            assert!(
                rejects <= config.max_global_rejects,
                "proptest: too many generator rejections ({rejects}); \
                 filter predicates may be unsatisfiable"
            );
            continue;
        };
        case += 1;
        match test(value) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case #{case} of {} failed: {msg}", config.cases)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usize_inclusive_covers_endpoints() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.usize_inclusive(0, 3)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    #[should_panic(expected = "case #1")]
    fn failure_panics_with_case_number() {
        let config = ProptestConfig {
            cases: 5,
            ..ProptestConfig::default()
        };
        run(&config, &(0i64..10), |_| Err(TestCaseError::fail("boom")));
    }
}
