//! `Option` strategy: `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Produce `None` or `Some(value)` with equal probability.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
        if rng.below(2) == 0 {
            Some(None)
        } else {
            self.inner.generate(rng).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0i64..10);
        let mut rng = TestRng::seed_from_u64(6);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng).unwrap() {
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
