//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Target size for a generated collection, inclusive on both ends.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

// Retry budget per element before the whole collection draw is rejected.
const ELEMENT_RETRIES: usize = 32;

fn draw<S: Strategy>(element: &S, rng: &mut TestRng) -> Option<S::Value> {
    (0..ELEMENT_RETRIES).find_map(|_| element.generate(rng))
}

/// `Vec` of values drawn from `element`, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.pick(rng);
        (0..len).map(|_| draw(&self.element, rng)).collect()
    }
}

/// `BTreeSet` of values drawn from `element`, with a size in `size`.
///
/// If the element space is too small to reach the requested size the draw
/// is rejected rather than looping forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        for _ in 0..(ELEMENT_RETRIES * (target + 1)) {
            if out.len() == target {
                break;
            }
            out.insert(self.element.generate(rng)?);
        }
        (out.len() >= self.size.lo).then_some(out)
    }
}

/// `BTreeMap` with keys from `key`, values from `value`, size in `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<BTreeMap<K::Value, V::Value>> {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..(ELEMENT_RETRIES * (target + 1)) {
            if out.len() == target {
                break;
            }
            out.insert(self.key.generate(rng)?, self.value.generate(rng)?);
        }
        (out.len() >= self.size.lo).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0i64..10, 2..5);
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng).unwrap();
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn set_rejects_when_space_too_small() {
        // only 2 distinct elements but 3 requested: must reject, not hang
        let s = btree_set(0u32..2, 3..4);
        let mut rng = TestRng::seed_from_u64(8);
        assert!(s.generate(&mut rng).is_none());
    }

    #[test]
    fn map_hits_requested_sizes() {
        let s = btree_map(0i64..1000, 0i64..10, 5..6);
        let mut rng = TestRng::seed_from_u64(2);
        let m = s.generate(&mut rng).unwrap();
        assert_eq!(m.len(), 5);
    }
}
