#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest its property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_filter`, range and regex-literal strategies,
//! tuples, [`collection`] (vec / btree_set / btree_map), [`option::of`],
//! `Just`, `prop_oneof!`, and the `proptest!` / `prop_assert!` family of
//! macros. Cases are generated from a fixed deterministic seed; there is
//! **no shrinking** — a failure reports the assert message and case number
//! only, which is enough for the deterministic suites in this repo.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )+ );
                $crate::test_runner::run(&config, &strategy, |( $( $arg, )+ )| {
                    { $body }
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a formatted message (and fails the test — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides equal `{:?}`", l);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::arm($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 1u64..=15) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..=15).contains(&b), "b={b}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..6, 0u8..4), 1..7),
            s in "[a-z][a-z0-9_]{0,8}",
            o in crate::option::of(0i64..10),
            pick in prop_oneof![Just(1i64), 10i64..20, (100i64..200).prop_map(|x| x)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for (a, b) in &v {
                prop_assert!(*a < 6 && *b < 4);
            }
            prop_assert!(!s.is_empty() && s.len() <= 9, "s={s}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            if let Some(x) = o {
                prop_assert!((0..10).contains(&x));
            }
            prop_assert!(pick == 1 || (10..20).contains(&pick) || (100..200).contains(&pick));
        }

        #[test]
        fn filter_retries(x in (0i64..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn sets_and_maps_respect_sizes(
            set in crate::collection::btree_set(0u32..6, 1..4),
            map in crate::collection::btree_map(-50i64..50, -50i64..50, 0..60),
        ) {
            prop_assert!(!set.is_empty() && set.len() < 4);
            prop_assert!(map.len() < 60);
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn early_return_ok_compiles() {
        proptest! {
            #[test]
            fn inner(x in 0i64..10) {
                if x > 100 {
                    return Ok(());
                }
                prop_assert!(x < 10);
            }
        }
        inner();
    }
}
