//! Tiny regex-subset generator backing the `&str` strategy.
//!
//! Supports exactly what the workspace's property tests use: literal
//! characters, character classes `[a-z0-9_]` (ranges and singletons, with
//! a literal leading space as in `[ -~]`), and counted repetition
//! `{min,max}` / `{n}` after an atom. Anything else panics loudly so a new
//! pattern is noticed at the first test run, not silently mis-generated.

use crate::test_runner::TestRng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in regex {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in regex {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c @ ('+' | '*' | '?' | '(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("regex feature {c:?} in {pattern:?} not supported by the offline proptest stand-in")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in regex {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generate one string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = rng.usize_inclusive(atom.min, atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ident_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~]{0,80}", &mut r);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut r = rng();
        let s = generate_matching("ab[0-1]{3}z", &mut r);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_feature_panics() {
        generate_matching("a+", &mut rng());
    }
}
