//! The [`Strategy`] trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when a filter rejects the draw; the runner
/// retries with fresh randomness.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; rejected draws are retried.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// Box a strategy arm for [`Union`]; used by the `prop_oneof!` expansion.
pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among boxed strategies with a common value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the given arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                Some((lo + r as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                Some((lo + r as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// A `&'static str` is a regex-literal strategy producing matching strings;
// the supported subset lives in `crate::string`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        Some(crate::string::generate_matching(self, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_and_filter_compose() {
        let s = (0i64..100)
            .prop_map(|x| x * 2)
            .prop_filter("small", |x| *x < 100);
        let mut rng = TestRng::seed_from_u64(11);
        let mut produced = 0;
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut rng) {
                assert!(v % 2 == 0 && v < 100);
                produced += 1;
            }
        }
        assert!(produced > 0);
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![arm(Just(1i64)), arm(Just(2i64)), arm(Just(3i64))]);
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.generate(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn tuples_reject_as_a_unit() {
        let s = ((0i64..10).prop_filter("never", |_| false), 0i64..10);
        let mut rng = TestRng::seed_from_u64(1);
        assert!(s.generate(&mut rng).is_none());
    }
}
