#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset used by the wire codec: [`BytesMut`] as an
//! append-only builder implementing [`BufMut`], frozen into a cheaply
//! cloneable [`Bytes`] view implementing [`Buf`] (a consuming cursor over
//! shared storage). Little-endian put/get for the fixed-width types plus
//! slicing and `copy_to_bytes`.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer (a view into shared storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of this buffer; shares storage, no copy.
    ///
    /// The range is interpreted relative to the current view and must lie
    /// within it.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.len() >= N,
            "buffer underflow: need {N}, have {}",
            self.len()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer used to build frames; freeze into [`Bytes`].
#[derive(Default, Debug, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// A new empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// A new buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Read-side cursor: consuming little-endian reads over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True if at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Consume `n` bytes, returning them as a [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let out = self.slice(0..n);
        self.start += n;
        out
    }
}

/// Write-side sink: appending little-endian writes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut bytes = b.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 0xBEEF);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_i64_le(), -42);
        assert_eq!(bytes.get_f64_le(), 1.5);
        assert_eq!(bytes.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(mid.slice(1..2).to_vec(), vec![3]);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.copy_to_bytes(2).to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
