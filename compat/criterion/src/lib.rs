#![forbid(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`/`Throughput`/`sample_size`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! mean-of-N timing loop. No statistics, plots, or CLI; results print as
//! one line per benchmark. Good enough to keep `cargo bench` runnable and
//! the bench targets compiling offline.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Default iteration sample count.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(400),
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Run a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.measurement, self.sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput (printed with the timing line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.throughput,
            self.criterion.measurement,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            f,
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `iters` invocations of `routine`, rebuilding its input with
    /// `setup` before each one; only the routine is timed.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one<F>(
    name: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    samples: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // calibrate: find an iteration count that takes roughly
    // measurement/samples, starting from a single timed call
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement.as_secs_f64() / samples as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        best = best.min(per);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean = total.as_secs_f64() / total_iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" ({:.0} elem/s)", n as f64 / mean),
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: [mean {} best {}]{rate}",
        fmt_ns(mean * 1e9),
        fmt_ns(best.as_secs_f64() * 1e9)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions into a single runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| std::hint::black_box(2 * 2)));
        group.finish();
    }
}
