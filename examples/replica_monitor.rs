//! The *traditional replicated database* scenario (paper Sec. 1): a
//! replica whose link to the master is gone. With explicit C&C constraints
//! the system can finally **detect** when an application's currency
//! requirements stop being met — and log the violation, serve the data
//! with a warning, or abort the request. The same signals feed the live
//! metrics registry, rendered below as a Prometheus scrape.
//!
//! ```sh
//! cargo run -p rcc-mtcache --example replica_monitor
//! ```

use rcc_common::{Duration, Error};
use rcc_mtcache::{MTCache, ViolationPolicy};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = MTCache::new();
    cache.execute("CREATE TABLE quotes (symbol INT, price FLOAT, PRIMARY KEY (symbol))")?;
    for s in 1..=50 {
        cache.execute(&format!("INSERT INTO quotes VALUES ({s}, {}.25)", 100 + s))?;
    }
    cache.analyze("quotes")?;

    // replication initially configured at 30 s — applications implicitly
    // assumed "30 seconds is fine" (the paper's opening example)
    cache.create_region("ticker", Duration::from_secs(30), Duration::from_secs(2))?;
    cache
        .execute("CREATE CACHED VIEW quotes_v REGION ticker AS SELECT symbol, price FROM quotes")?;
    cache.advance(Duration::from_secs(90))?;

    // the application states its requirement EXPLICITLY: 60 s
    const Q: &str = "SELECT price FROM quotes WHERE symbol = 7 CURRENCY BOUND 60 SEC ON (quotes)";

    println!(
        "== healthy replication (staleness {:?})",
        cache.region_staleness("ticker")
    );
    let r = cache.execute(Q)?;
    println!(
        "   price = {}, served locally: {}",
        r.rows[0].get(0),
        !r.used_remote
    );

    // --- now the replica loses its master link AND replication stalls:
    // exactly the silent reconfiguration the paper warns about, except the
    // system can now notice.
    cache.set_backend_available(false);
    cache.set_region_stalled("ticker", true);
    cache.advance(Duration::from_secs(300))?;
    println!(
        "\n== replication stalled for 5 min (staleness {:?}); requirement is 60 s",
        cache.region_staleness("ticker")
    );

    // Action 1 — abort the request:
    match cache.execute(Q) {
        Err(Error::CurrencyViolation(msg)) => println!("   [Reject]     aborted: {msg}"),
        other => println!("   [Reject]     unexpected: {other:?}"),
    }

    // Action 2 — return the data but flag it:
    let r = cache.execute_with_policy(Q, &HashMap::new(), ViolationPolicy::ServeStale)?;
    println!(
        "   [ServeStale] price = {} with warnings:",
        r.rows[0].get(0)
    );
    for w in &r.warnings {
        println!("                - {w}");
    }

    // Action 3 — monitor: a dashboard loop comparing staleness against
    // each application's declared requirement
    println!("\n== staleness monitor");
    for (app, bound) in [("dashboard", 600), ("trading", 60), ("audit", 5)] {
        let staleness = cache.region_staleness("ticker").unwrap();
        let ok = staleness <= Duration::from_secs(bound);
        println!(
            "   app {app:<10} requires {bound:>4} s  ->  {}",
            if ok {
                "OK"
            } else {
                "VIOLATED (would be routed / alerted)"
            }
        );
    }

    // --- replication recovers
    cache.set_region_stalled("ticker", false);
    cache.set_backend_available(true);
    cache.advance(Duration::from_secs(60))?;
    println!(
        "\n== recovered (staleness {:?})",
        cache.region_staleness("ticker")
    );
    let r = cache.execute(Q)?;
    println!(
        "   price = {}, served locally: {}",
        r.rows[0].get(0),
        !r.used_remote
    );

    // the whole incident, as a monitoring system would see it: guard
    // outcomes, staleness distribution, lag gauge, stale-serve count
    println!("\n== metrics snapshot (Prometheus exposition)");
    for line in cache.metrics().render_prometheus().lines() {
        if line.starts_with("rcc_guard")
            || line.starts_with("rcc_stale_served")
            || line.starts_with("rcc_replication")
            || line.starts_with("rcc_queries_total")
        {
            println!("   {line}");
        }
    }

    // and the most recent query, span by span
    if let Some(trace) = cache.tracer().recent(1).pop() {
        println!("\n== last query trace");
        for line in trace.render().lines() {
            println!("   {line}");
        }
    }
    Ok(())
}
