//! The paper's motivating bookstore (Sec. 2): Books ⋈ Reviews with every
//! flavour of currency clause — E1 (mutual consistency), E2 (independent
//! bounds), E3/E4 (BY grouping) — plus the multi-block queries of Sec. 2.2.
//!
//! ```sh
//! cargo run -p rcc-mtcache --example bookstore
//! ```

use rcc_common::Duration;
use rcc_mtcache::MTCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE books (isbn INT, title VARCHAR, price FLOAT, PRIMARY KEY (isbn))")?;
    cache.execute(
        "CREATE TABLE reviews (review_id INT, isbn INT, rating INT, PRIMARY KEY (review_id))",
    )?;
    cache.execute("CREATE TABLE sales (sale_id INT, isbn INT, year INT, PRIMARY KEY (sale_id))")?;

    for i in 1..=30 {
        cache.execute(&format!(
            "INSERT INTO books VALUES ({i}, 'The Art of Volume {i}', {}.50)",
            15 + (i % 20)
        ))?;
        cache.execute(&format!(
            "INSERT INTO reviews VALUES ({i}, {}, {})",
            (i % 10) + 1,
            (i % 5) + 1
        ))?;
        cache.execute(&format!(
            "INSERT INTO sales VALUES ({i}, {}, {})",
            (i % 8) + 1,
            2001 + (i % 4)
        ))?;
    }
    for t in ["books", "reviews", "sales"] {
        cache.analyze(t)?;
    }

    // Books and Reviews replicate through one agent (one currency region →
    // always mutually consistent); Sales through another.
    cache.create_region("shelf", Duration::from_secs(60), Duration::from_secs(5))?;
    cache.create_region("tills", Duration::from_secs(30), Duration::from_secs(5))?;
    cache.execute(
        "CREATE CACHED VIEW books_v REGION shelf AS SELECT isbn, title, price FROM books",
    )?;
    cache.execute(
        "CREATE CACHED VIEW reviews_v REGION shelf AS SELECT review_id, isbn, rating FROM reviews",
    )?;
    cache.execute(
        "CREATE CACHED VIEW sales_v REGION tills AS SELECT sale_id, isbn, year FROM sales",
    )?;
    cache.advance(Duration::from_secs(120))?;

    let run = |label: &str, sql: &str| -> Result<(), Box<dyn std::error::Error>> {
        let r = cache.execute(sql)?;
        println!(
            "== {label}\n   plan: {:?} | rows: {} | remote: {} | guards: {} local / {} remote",
            r.plan_choice,
            r.rows.len(),
            r.used_remote,
            r.local_branches(),
            r.remote_branches()
        );
        Ok(())
    };

    // E1: both inputs ≤ 10 min stale AND from the same snapshot. The views
    // share a region, so the whole join runs at the cache.
    run(
        "E1: 10 min, mutually consistent",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn \
         CURRENCY BOUND 10 MIN ON (b, r)",
    )?;

    // E2: independent bounds, no consistency requirement.
    run(
        "E2: 10 min on B, 30 min on R, independent",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn \
         CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)",
    )?;

    // E3: per-isbn grouping (rows of each isbn group from one snapshot).
    run(
        "E3: per-row / per-group snapshots",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn \
         CURRENCY BOUND 10 MIN ON (b) BY b.isbn, 10 MIN ON (r) BY r.isbn",
    )?;

    // E4: each Books row consistent with the Review rows it joins with.
    run(
        "E4: join-pair consistency",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn \
         CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn",
    )?;

    // Sec. 2.2 Q2: a derived table with its own clause; outer 5 min (S, T)
    // merges with inner 10 min (B, R) into "5 min (S, B, R)". Sales lives
    // in a different region → the merged class cannot be served locally.
    run(
        "Q2: multi-block, clauses merged to 5 min (S,B,R)",
        "SELECT t.title, s.year FROM \
         (SELECT b.isbn, b.title FROM books b, reviews r WHERE b.isbn = r.isbn \
          CURRENCY BOUND 10 MIN ON (b, r)) t, sales s \
         WHERE t.isbn = s.isbn CURRENCY BOUND 5 MIN ON (s, t)",
    )?;

    // Sec. 2.2 Q3: EXISTS subquery whose clause references the outer B.
    run(
        "Q3: EXISTS subquery, inner class references outer table",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn AND \
         EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn AND s.year = 2003 \
                 CURRENCY BOUND 10 MIN ON (s, b)) \
         CURRENCY BOUND 10 MIN ON (b, r)",
    )?;

    // Q3 variant: drop the outer reference AND the mutual-consistency
    // requirement — three independent classes, all served from the cache.
    run(
        "Q3': independent classes — fully local",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn AND \
         EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn AND s.year = 2003 \
                 CURRENCY BOUND 10 MIN ON (s)) \
         CURRENCY BOUND 10 MIN ON (b), 10 MIN ON (r)",
    )?;

    // E1 revisited: with per-leaf guards (the paper's prototype) a
    // multi-table consistency class can never be answered locally, because
    // the two guards might decide differently at run time — the paper
    // leaves "SwitchUnion pull-up" as future work. We implemented it: one
    // guard over the whole local join.
    println!("\n-- enabling the SwitchUnion pull-up extension --");
    cache.set_pullup_switch_union(true);
    run(
        "E1 with pull-up: one guard over the local join",
        "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn \
         CURRENCY BOUND 10 MIN ON (b, r)",
    )?;

    Ok(())
}
