//! The paper's third usage scenario (Sec. 1): *caching of query results*.
//!
//! "Suppose we have a component that caches SQL query results (e.g.,
//! application level caching) ... The cache can easily keep track of the
//! staleness of its cached results and if a result does not satisfy a
//! query's currency requirements, transparently recompute it. In this way,
//! an application can always be assured that its currency requirements are
//! met."
//!
//! ```sh
//! cargo run -p rcc-mtcache --example result_cache
//! ```

use rcc_common::Duration;
use rcc_mtcache::{MTCache, QueryResultCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = MTCache::new();
    cache.execute("CREATE TABLE scores (team INT, points INT, PRIMARY KEY (team))")?;
    for t in 1..=20 {
        cache.execute(&format!("INSERT INTO scores VALUES ({t}, {})", t * 7 % 50))?;
    }
    cache.analyze("scores")?;
    cache.execute("CREATE REGION league INTERVAL 10 SEC DELAY 2 SEC")?;
    cache
        .execute("CREATE CACHED VIEW scores_v REGION league AS SELECT team, points FROM scores")?;
    cache.advance(Duration::from_secs(30))?;

    let results = QueryResultCache::new();
    // a leaderboard query that tolerates 60 s of staleness
    const LEADERBOARD: &str = "SELECT team, points FROM scores \
                               ORDER BY points DESC LIMIT 5 \
                               CURRENCY BOUND 60 SEC ON (scores)";

    println!("== first request: computed through the C&C pipeline");
    let r = results.execute(&cache, LEADERBOARD)?;
    print!("{}", r.display_rows(5));
    println!("   (hits, misses) = {:?}", results.stats());

    println!("\n== repeated requests within the bound: served from the result cache");
    for _ in 0..3 {
        results.execute(&cache, LEADERBOARD)?;
    }
    println!("   (hits, misses) = {:?}", results.stats());

    println!("\n== a score changes and 2 minutes pass: the entry no longer");
    println!("   satisfies the 60 s requirement → transparent recompute");
    cache.execute("UPDATE scores SET points = 99 WHERE team = 13")?;
    cache.advance(Duration::from_secs(120))?;
    let fresh = results.execute(&cache, LEADERBOARD)?;
    print!("{}", fresh.display_rows(5));
    println!("   (hits, misses) = {:?}", results.stats());

    println!("\n== a query with NO currency clause demands the latest snapshot");
    println!("   and always bypasses the result cache:");
    let strict = "SELECT points FROM scores WHERE team = 13";
    results.execute(&cache, strict)?;
    results.execute(&cache, strict)?;
    println!(
        "   (hits, misses) = {:?} — both recomputed",
        results.stats()
    );
    Ok(())
}
