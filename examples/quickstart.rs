//! Quickstart: a cache + back-end pair, a cached view, and the currency
//! clause in action.
//!
//! ```sh
//! cargo run -p rcc-mtcache --example quickstart
//! ```

use rcc_common::Duration;
use rcc_mtcache::MTCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One call builds both servers on a shared simulated clock.
    let cache = MTCache::new();

    // DDL executes at the cache and is forwarded to the back-end; the
    // cache keeps a shadow definition plus back-end statistics.
    cache
        .execute("CREATE TABLE products (sku INT, name VARCHAR, price FLOAT, PRIMARY KEY (sku))")?;
    for sku in 1..=100 {
        cache.execute(&format!(
            "INSERT INTO products VALUES ({sku}, 'Product {sku}', {}.99)",
            sku * 3
        ))?;
    }
    cache.analyze("products")?;

    // A currency region: its distribution agent wakes every 10 s and
    // delivers committed updates with a 2 s delay. A heartbeat row
    // replicated with the data bounds the cache's staleness.
    cache.create_region("shop", Duration::from_secs(10), Duration::from_secs(2))?;
    cache.execute(
        "CREATE CACHED VIEW products_v REGION shop AS SELECT sku, name, price FROM products",
    )?;

    // Let replication run a few cycles.
    cache.advance(Duration::from_secs(30))?;

    // 1) No currency clause → traditional semantics: latest snapshot,
    //    computed at the back-end.
    let current = cache.execute("SELECT price FROM products WHERE sku = 42")?;
    println!(
        "-- no clause (plan: {:?}, remote: {})",
        current.plan_choice, current.used_remote
    );
    print!("{}", current.display_rows(3));

    // 2) "Good enough" semantics: up to 60 s of staleness accepted. The
    //    optimizer builds a dynamic plan whose currency guard checks the
    //    region heartbeat and reads the local view.
    let relaxed = cache
        .execute("SELECT price FROM products WHERE sku = 42 CURRENCY BOUND 60 SEC ON (products)")?;
    println!(
        "-- 60s bound (plan: {:?}, remote: {}, guards passed: {})",
        relaxed.plan_choice,
        relaxed.used_remote,
        relaxed.local_branches()
    );
    print!("{}", relaxed.display_rows(3));
    println!("-- executed plan:\n{}", relaxed.plan_explain);

    // 3) An update commits at the back-end. Within the propagation window
    //    the bounded read still serves the (acceptably stale) old price;
    //    the unbounded read sees the new one immediately.
    cache.execute("UPDATE products SET price = 1.0 WHERE sku = 42")?;
    let stale = cache
        .execute("SELECT price FROM products WHERE sku = 42 CURRENCY BOUND 60 SEC ON (products)")?;
    let fresh = cache.execute("SELECT price FROM products WHERE sku = 42")?;
    println!(
        "-- after update: bounded read = {}, current read = {}",
        stale.rows[0].get(0),
        fresh.rows[0].get(0)
    );

    // 4) After the next propagation cycle the view has caught up.
    cache.advance(Duration::from_secs(15))?;
    let caught_up = cache
        .execute("SELECT price FROM products WHERE sku = 42 CURRENCY BOUND 60 SEC ON (products)")?;
    println!(
        "-- after propagation: bounded read = {}",
        caught_up.rows[0].get(0)
    );

    println!(
        "-- totals: {} local branches, {} remote branches, {} remote queries",
        cache
            .counters()
            .local_branches
            .load(std::sync::atomic::Ordering::Relaxed),
        cache
            .counters()
            .remote_branches
            .load(std::sync::atomic::Ordering::Relaxed),
        cache
            .counters()
            .remote_queries
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    Ok(())
}
