//! Timeline consistency (paper Sec. 2.3): "users may not even see their
//! own changes unless timeline consistency is specified, because a later
//! query may use a replica that has not yet been updated."
//!
//! ```sh
//! cargo run -p rcc-mtcache --example timeline_session
//! ```

use rcc_common::Duration;
use rcc_mtcache::MTCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = MTCache::new();
    cache.execute("CREATE TABLE cart (item INT, qty INT, PRIMARY KEY (item))")?;
    cache.execute("INSERT INTO cart VALUES (1, 2)")?;
    cache.analyze("cart")?;
    cache.create_region("carts", Duration::from_secs(30), Duration::from_secs(2))?;
    cache.execute("CREATE CACHED VIEW cart_v REGION carts AS SELECT item, qty FROM cart")?;
    cache.advance(Duration::from_secs(60))?;

    const READ: &str = "SELECT qty FROM cart WHERE item = 1 CURRENCY BOUND 5 MIN ON (cart)";

    // ------------------------------------------------ without TIMEORDERED
    println!("== plain session (no timeline guarantee)");
    cache.execute("UPDATE cart SET qty = 5 WHERE item = 1")?;
    let r = cache.execute(READ)?;
    println!(
        "   after setting qty=5, a relaxed read returns qty={} (stale replica!), local={}",
        r.rows[0].get(0),
        !r.used_remote
    );

    // let the view catch up and reset
    cache.advance(Duration::from_secs(60))?;

    // --------------------------------------------------- with TIMEORDERED
    println!("== BEGIN TIMEORDERED session");
    let mut session = cache.session();
    session.execute("BEGIN TIMEORDERED")?;

    let before = session.execute(READ)?;
    println!(
        "   read qty = {} (local: {})",
        before.rows[0].get(0),
        !before.used_remote
    );

    session.execute("UPDATE cart SET qty = 9 WHERE item = 1")?;
    println!("   UPDATE cart SET qty = 9 (committed at the back-end)");

    // a current read inside the bracket raises the session's snapshot
    // floor for every region caching `cart`
    let own = session.execute("SELECT qty FROM cart WHERE item = 1")?;
    println!("   current read sees qty = {}", own.rows[0].get(0));

    // the relaxed read would LOVE the (fresh-enough-by-bound) replica, but
    // the replica predates the session's floor: the guard refuses and the
    // read is routed to the back-end — the user sees their own change
    let after = session.execute(READ)?;
    println!(
        "   relaxed read under TIMEORDERED: qty = {} (remote: {}) — own change visible",
        after.rows[0].get(0),
        after.used_remote
    );

    session.execute("END TIMEORDERED")?;

    // once replication propagates the update, relaxed reads serve locally
    // again with the new value
    cache.advance(Duration::from_secs(60))?;
    let settled = cache.execute(READ)?;
    println!(
        "== after propagation: relaxed read qty = {} (local: {})",
        settled.rows[0].get(0),
        !settled.used_remote
    );
    Ok(())
}
