//! Reproduction of the paper's plan-choice experiment (Table 4.3 /
//! Fig. 4.1, Sec. 4.1): how the optimizer's choice moves between the five
//! plan shapes as the query's currency and consistency requirements (and
//! predicates) change.
//!
//! The paper's expected outcomes:
//!
//! | Query | Clause                                  | Chosen plan |
//! |-------|------------------------------------------|------------|
//! | Q1    | none, selective `c_custkey <= $K`        | 1 (full remote) |
//! | Q2    | none, non-selective                      | 2 (local join of remote fetches) |
//! | Q3    | 10s on (c, o) — mutual consistency       | 1 (full remote) |
//! | Q4    | 3s on (c), 15s on (o)                    | 4 (mixed) |
//! | Q5    | 10s on (c), 15s on (o)                   | 5 (all local, guarded) |
//! | Q6    | 10s on (customer), narrow acctbal range  | remote (no local index) |
//! | Q7    | 10s on (customer), wide acctbal range    | local view |
//!
//! Statistics are scaled to the paper's SF 1.0 sizes (see
//! `rcc_mtcache::paper::scale_stats`) because the trade-offs depend on
//! absolute cardinalities; the queries still *execute* against the small
//! physical database and return correct rows.

use rcc_common::Value;
use rcc_mtcache::paper::{paper_setup_sf1_stats, warm_up};
use rcc_mtcache::MTCache;
use rcc_optimizer::optimize::PlanChoice;
use std::collections::HashMap;

/// Query schema S1 (customer ⋈ orders with a custkey range).
fn s1(k: i64, clause: &str) -> String {
    format!(
        "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice \
         FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= {k} {clause}"
    )
}

/// Query schema S2 (single-table acctbal range).
fn s2(a: f64, b: f64) -> String {
    format!(
        "SELECT c_custkey, c_name, c_acctbal FROM customer \
         WHERE c_acctbal BETWEEN {a} AND {b} CURRENCY BOUND 10 SEC ON (customer)"
    )
}

fn rig() -> MTCache {
    // physical scale 0.01 (1 500 customers, ~15 000 orders), statistics
    // scaled ×100 to the paper's SF 1.0 cardinalities
    let cache = paper_setup_sf1_stats(0.01, 42).unwrap();
    warm_up(&cache).unwrap();
    cache
}

/// `$K` is expressed in the *physical* key domain [1, 1500]; selectivity
/// fractions are what reproduce the paper (0.67% vs. 100%), because the
/// scaled histogram keeps the physical min/max.
const K_SELECTIVE: i64 = 10;
const K_ALL: i64 = 1_500;

fn choice(cache: &MTCache, sql: &str) -> (PlanChoice, String) {
    let opt = cache.explain(sql, &HashMap::new()).unwrap();
    (opt.choice, opt.plan.explain())
}

#[test]
fn q1_selective_no_clause_full_remote() {
    let cache = rig();
    let (c, plan) = choice(&cache, &s1(K_SELECTIVE, ""));
    assert_eq!(c, PlanChoice::FullRemote, "plan:\n{plan}");
}

#[test]
fn q2_nonselective_no_clause_local_join_of_remote_fetches() {
    let cache = rig();
    let (c, plan) = choice(&cache, &s1(K_ALL, ""));
    assert_eq!(c, PlanChoice::RemoteFetchLocalJoin, "plan:\n{plan}");
    assert!(plan.contains("RemoteQuery"), "plan:\n{plan}");
}

#[test]
fn q3_mutual_consistency_forces_remote() {
    let cache = rig();
    // views satisfy the 10s bounds individually but live in different
    // currency regions → mutual consistency cannot be guaranteed locally
    let (c, plan) = choice(&cache, &s1(K_SELECTIVE, "CURRENCY BOUND 10 SEC ON (c, o)"));
    assert_eq!(c, PlanChoice::FullRemote, "plan:\n{plan}");
    assert!(
        !plan.contains("SwitchUnion"),
        "no guarded local access:\n{plan}"
    );
}

#[test]
fn q4_tight_customer_bound_gives_mixed_plan() {
    let cache = rig();
    // 3s < CR1's 5s delay: cust_prj can never be fresh enough (discarded
    // at compile time); orders_prj satisfies 15s
    let (c, plan) = choice(
        &cache,
        &s1(K_ALL, "CURRENCY BOUND 3 SEC ON (c), 15 SEC ON (o)"),
    );
    assert_eq!(c, PlanChoice::Mixed, "plan:\n{plan}");
    assert!(
        plan.contains("heartbeat_cr2"),
        "orders guarded locally:\n{plan}"
    );
    assert!(
        !plan.contains("heartbeat_cr1"),
        "customer never local:\n{plan}"
    );
}

#[test]
fn q5_relaxed_bounds_all_local() {
    let cache = rig();
    let (c, plan) = choice(
        &cache,
        &s1(K_ALL, "CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"),
    );
    assert_eq!(c, PlanChoice::AllLocalGuarded, "plan:\n{plan}");
    assert!(plan.contains("cust_prj"), "plan:\n{plan}");
    assert!(plan.contains("orders_prj"), "plan:\n{plan}");
}

#[test]
fn q6_narrow_range_prefers_backend_index() {
    let cache = rig();
    // ~53 of 150 000 rows: the back-end's ix_acctbal is decisive, the
    // local view would need a 150 000-row scan
    let (c, plan) = choice(&cache, &s2(0.0, 4.0));
    assert_eq!(c, PlanChoice::FullRemote, "plan:\n{plan}");
}

#[test]
fn q7_wide_range_prefers_local_view() {
    let cache = rig();
    // ~13% of the table: shipping no longer beats scanning
    let (c, plan) = choice(&cache, &s2(0.0, 1400.0));
    assert_eq!(c, PlanChoice::AllLocalGuarded, "plan:\n{plan}");
    assert!(plan.contains("cust_prj"), "plan:\n{plan}");
}

#[test]
fn q6_q7_crossover_exists() {
    // sweep the range width: the plan must flip from remote to local at
    // some crossover, monotonically
    let cache = rig();
    let mut last_local = false;
    let mut flips = 0;
    for width in [1.0, 4.0, 20.0, 100.0, 400.0, 1400.0, 4000.0, 10999.0] {
        let (c, _) = choice(&cache, &s2(-999.99, -999.99 + width));
        let local = c == PlanChoice::AllLocalGuarded;
        if local != last_local {
            flips += 1;
            last_local = local;
        }
    }
    assert!(last_local, "widest range must be local");
    assert_eq!(flips, 1, "exactly one remote→local crossover");
}

#[test]
fn chosen_plans_execute_correctly() {
    // the paper's point: whatever the optimizer picks, the answer is right
    let cache = rig();
    let variants = [
        s1(K_SELECTIVE, ""),
        s1(K_ALL, ""),
        s1(K_SELECTIVE, "CURRENCY BOUND 10 SEC ON (c, o)"),
        s1(K_ALL, "CURRENCY BOUND 3 SEC ON (c), 15 SEC ON (o)"),
        s1(K_ALL, "CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"),
        s2(0.0, 4.0),
        s2(0.0, 1400.0),
    ];
    // ground truth from the back-end (drop any currency clause)
    for sql in &variants {
        let r = cache.execute(sql).unwrap();
        let truth_sql = match sql.find("CURRENCY") {
            Some(i) => sql[..i].to_string(),
            None => sql.clone(),
        };
        let truth = cache.backend().query(&truth_sql).unwrap();
        assert_eq!(r.rows.len(), truth.1.len(), "row count mismatch for {sql}");
        let mut got = r.rows.clone();
        let mut want = truth.1.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want, "row content mismatch for {sql}");
    }
}

#[test]
fn bound_relaxation_changes_q3_like_queries() {
    // Q3 → Q4 → Q5 in one sweep: relaxing consistency then currency pulls
    // work from the back-end to the cache (the Sec. 4.1 narrative)
    let cache = rig();
    let remote = choice(&cache, &s1(K_ALL, "CURRENCY BOUND 10 SEC ON (c, o)")).0;
    let mixed = choice(
        &cache,
        &s1(K_ALL, "CURRENCY BOUND 3 SEC ON (c), 15 SEC ON (o)"),
    )
    .0;
    let local = choice(
        &cache,
        &s1(K_ALL, "CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"),
    )
    .0;
    assert!(matches!(
        remote,
        PlanChoice::FullRemote | PlanChoice::RemoteFetchLocalJoin
    ));
    assert_eq!(mixed, PlanChoice::Mixed);
    assert_eq!(local, PlanChoice::AllLocalGuarded);
}

#[test]
fn every_local_access_is_guarded() {
    // "every local data access is protected by a currency guard" (Sec 4.1)
    let cache = rig();
    for sql in [
        s1(K_ALL, "CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)"),
        s1(K_ALL, "CURRENCY BOUND 3 SEC ON (c), 15 SEC ON (o)"),
        s2(0.0, 1400.0),
    ] {
        let opt = cache.explain(&sql, &HashMap::new()).unwrap();
        let plan = opt.plan.explain();
        assert!(
            opt.plan.guard_count() > 0,
            "local plan without guards:\n{plan}"
        );
    }
}

#[test]
fn parameters_drive_the_same_choices() {
    let cache = rig();
    let mut params = HashMap::new();
    params.insert("k".to_string(), Value::Int(K_SELECTIVE));
    let sql = "SELECT c.c_custkey, c.c_name, o.o_orderkey, o.o_totalprice \
               FROM customer c, orders o \
               WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= $k";
    let opt = cache.explain(sql, &params).unwrap();
    assert_eq!(opt.choice, PlanChoice::FullRemote);
    params.insert("k".to_string(), Value::Int(K_ALL));
    let opt = cache.explain(sql, &params).unwrap();
    assert_eq!(opt.choice, PlanChoice::RemoteFetchLocalJoin);
}
