//! End-to-end integration tests: SQL in, rows out, through the full
//! cache + replication + back-end stack on simulated time.

use rcc_common::{Duration, Error, Value};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::{MTCache, ViolationPolicy};
use rcc_optimizer::optimize::PlanChoice;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = paper_setup(0.001, 42).unwrap(); // 150 customers, ~1500 orders
    warm_up(&cache).unwrap();
    cache
}

#[test]
fn default_semantics_query_goes_remote() {
    let cache = rig();
    let r = cache
        .execute("SELECT c_name FROM customer WHERE c_custkey = 7")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "Customer#000000007");
    assert_eq!(
        r.plan_choice,
        PlanChoice::FullRemote,
        "no currency clause → back-end"
    );
    assert!(r.used_remote);
    assert!(r.guards.is_empty());
}

#[test]
fn bounded_query_served_from_cached_view() {
    let cache = rig();
    let r = cache
        .execute(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.local_branches(), 1, "fresh view: guard passes");
    assert!(!r.used_remote);
}

#[test]
fn stale_view_falls_back_to_backend_transparently() {
    let cache = rig();
    // stall CR1's agent and let time pass: cust_prj goes stale
    assert!(cache.set_region_stalled("CR1", true));
    cache.advance(Duration::from_secs(120)).unwrap();
    let r = cache
        .execute(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "result still produced");
    assert_eq!(r.remote_branches(), 1, "guard failed");
    assert!(r.used_remote);
}

#[test]
fn updates_flow_to_cache_through_replication() {
    let cache = rig();
    cache
        .execute("UPDATE customer SET c_acctbal = 1234.5 WHERE c_custkey = 3")
        .unwrap();
    // not yet propagated: bounded read of the view sees the old value,
    // current read sees the new one
    let bounded = cache
        .execute(
            "SELECT c_acctbal FROM customer WHERE c_custkey = 3 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_ne!(
        bounded.rows[0].get(0),
        &Value::Float(1234.5),
        "stale but within bound"
    );
    let current = cache
        .execute("SELECT c_acctbal FROM customer WHERE c_custkey = 3")
        .unwrap();
    assert_eq!(current.rows[0].get(0), &Value::Float(1234.5));
    // after a propagation cycle the view catches up
    cache.advance(Duration::from_secs(30)).unwrap();
    let bounded = cache
        .execute(
            "SELECT c_acctbal FROM customer WHERE c_custkey = 3 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(bounded.rows[0].get(0), &Value::Float(1234.5));
}

#[test]
fn insert_and_delete_forwarded() {
    let cache = rig();
    cache
        .execute(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_acctbal) \
             VALUES (9999, 'New Customer', 1, 0.0)",
        )
        .unwrap();
    let r = cache
        .execute("SELECT c_name FROM customer WHERE c_custkey = 9999")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    cache
        .execute("DELETE FROM customer WHERE c_custkey = 9999")
        .unwrap();
    let r = cache
        .execute("SELECT c_name FROM customer WHERE c_custkey = 9999")
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn join_with_relaxed_bounds_matches_backend_truth() {
    let cache = rig();
    let r = cache
        .execute(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 150 \
             CURRENCY BOUND 30 SEC ON (c), 30 SEC ON (o)",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    let truth = cache
        .execute(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 150",
        )
        .unwrap();
    assert_eq!(r.rows.len(), truth.rows.len());
}

#[test]
fn aggregates_match_backend_truth() {
    let cache = rig();
    let local = cache
        .execute(
            "SELECT o_custkey, COUNT(*) AS n FROM orders \
             GROUP BY o_custkey HAVING COUNT(*) >= 12 ORDER BY n DESC, o_custkey \
             CURRENCY BOUND 60 SEC ON (orders)",
        )
        .unwrap();
    let remote = cache
        .execute(
            "SELECT o_custkey, COUNT(*) AS n FROM orders \
             GROUP BY o_custkey HAVING COUNT(*) >= 12 ORDER BY n DESC, o_custkey",
        )
        .unwrap();
    assert!(!local.rows.is_empty());
    assert_eq!(local.rows, remote.rows);
}

#[test]
fn consistency_requirement_across_regions_forces_remote() {
    let cache = rig();
    // both views are fresh enough for 30s bounds, but they live in
    // different regions, so mutual consistency cannot be guaranteed
    // locally (the paper's Q3)
    let r = cache
        .execute(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 5 \
             CURRENCY BOUND 30 SEC ON (c, o)",
        )
        .unwrap();
    assert_eq!(r.plan_choice, PlanChoice::FullRemote);
    assert!(!r.rows.is_empty());
}

#[test]
fn exists_subquery_with_consistency_class() {
    let cache = rig();
    let r = cache
        .execute(
            "SELECT c.c_name FROM customer c WHERE c.c_custkey <= 10 AND \
             EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey AND \
                     s.o_totalprice > 100.0 CURRENCY BOUND 30 SEC ON (s, c)) \
             CURRENCY BOUND 30 SEC ON (c)",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    let truth = cache
        .execute(
            "SELECT c.c_name FROM customer c WHERE c.c_custkey <= 10 AND \
             EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey AND \
                     s.o_totalprice > 100.0)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), truth.rows.len());
}

#[test]
fn violation_policies_without_backend() {
    let cache = rig();
    cache.set_backend_available(false);
    assert!(cache.set_region_stalled("CR1", true));
    cache.advance(Duration::from_secs(120)).unwrap();

    // Reject: error
    let err = cache
        .execute(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap_err();
    assert!(matches!(err, Error::CurrencyViolation(_)), "{err}");

    // ServeStale: rows plus warnings
    let r = cache
        .execute_with_policy(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
            &HashMap::new(),
            ViolationPolicy::ServeStale,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(!r.warnings.is_empty());
    assert!(r.warnings[0].contains("stale"), "{:?}", r.warnings);
}

#[test]
fn no_backend_but_fresh_view_works() {
    let cache = rig();
    cache.set_backend_available(false);
    let r = cache
        .execute(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(!r.used_remote);
}

#[test]
fn parameters_bind() {
    let cache = rig();
    let mut params = HashMap::new();
    params.insert("k".to_string(), Value::Int(5));
    let r = cache
        .execute_with_params("SELECT c_name FROM customer WHERE c_custkey = $k", &params)
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn explain_reports_plan_without_executing() {
    let cache = rig();
    let before = cache
        .counters()
        .remote_queries
        .load(std::sync::atomic::Ordering::Relaxed);
    let opt = cache
        .explain(
            "SELECT c_name FROM customer WHERE c_custkey = 7 \
             CURRENCY BOUND 30 SEC ON (customer)",
            &HashMap::new(),
        )
        .unwrap();
    assert!(opt.plan.explain().contains("SwitchUnion"));
    let after = cache
        .counters()
        .remote_queries
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(before, after);
}

#[test]
fn order_by_and_limit() {
    let cache = rig();
    let r = cache
        .execute(
            "SELECT c_custkey, c_acctbal FROM customer \
             ORDER BY c_acctbal DESC LIMIT 5 CURRENCY BOUND 60 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    for w in r.rows.windows(2) {
        assert!(w[0].get(1) >= w[1].get(1));
    }
}

#[test]
fn timeordered_outside_session_rejected() {
    let cache = rig();
    assert!(cache.execute("BEGIN TIMEORDERED").is_err());
}

#[test]
fn create_table_view_region_roundtrip() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE books (isbn INT, title VARCHAR, price FLOAT, PRIMARY KEY (isbn))")
        .unwrap();
    cache
        .execute("INSERT INTO books VALUES (1, 'A Book', 10.0), (2, 'Another', 20.0)")
        .unwrap();
    cache.analyze("books").unwrap();
    cache
        .create_region("R", Duration::from_secs(5), Duration::from_secs(1))
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW books_v REGION r AS SELECT isbn, title FROM books")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();
    let r = cache
        .execute("SELECT title FROM books WHERE isbn = 2 CURRENCY BOUND 10 SEC ON (books)")
        .unwrap();
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "Another");
    assert!(!r.used_remote);
}

#[test]
fn selection_view_serves_only_subsumed_queries() {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        .unwrap();
    for i in 0..100 {
        cache
            .execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2))
            .unwrap();
    }
    cache.analyze("t").unwrap();
    cache
        .create_region("R", Duration::from_secs(5), Duration::from_secs(1))
        .unwrap();
    cache
        .execute("CREATE CACHED VIEW t_low REGION r AS SELECT id, v FROM t WHERE id < 50")
        .unwrap();
    cache.advance(Duration::from_secs(20)).unwrap();

    let subsumed = cache
        .execute("SELECT v FROM t WHERE id < 10 CURRENCY BOUND 10 SEC ON (t)")
        .unwrap();
    assert!(
        !subsumed.used_remote,
        "query range inside view range → local"
    );
    assert_eq!(subsumed.rows.len(), 10);

    let not_subsumed = cache
        .execute("SELECT v FROM t WHERE id < 80 CURRENCY BOUND 10 SEC ON (t)")
        .unwrap();
    assert!(not_subsumed.used_remote, "range exceeds the view → remote");
    assert_eq!(not_subsumed.rows.len(), 80);
}

#[test]
fn query_result_cache_scenario() {
    use rcc_mtcache::QueryResultCache;
    let cache = rig();
    let qc = QueryResultCache::new();
    let sql = "SELECT c_acctbal FROM customer WHERE c_custkey = 3 \
               CURRENCY BOUND 30 SEC ON (customer)";
    let r1 = qc.execute(&cache, sql).unwrap();
    let r2 = qc.execute(&cache, sql).unwrap();
    assert_eq!(r1.rows, r2.rows);
    assert_eq!(qc.stats(), (1, 1), "second call hits");
    // age the entry past the bound: recompute
    cache.advance(Duration::from_secs(120)).unwrap();
    let _ = qc.execute(&cache, sql).unwrap();
    assert_eq!(qc.stats(), (1, 2), "stale entry recomputed");
}
