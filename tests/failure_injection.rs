//! Failure injection: stalled distribution agents, heartbeat outage,
//! back-end outage, and clock skew. In every scenario the system must stay
//! *safe* — never serve data staler than the bound — even when it cannot
//! stay *live*.

use rcc_common::{Clock, Duration, Error, Timestamp, Value};
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::{MTCache, ViolationPolicy};
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    cache
}

const Q: &str = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";

#[test]
fn stalled_agent_shifts_all_traffic_remote() {
    let cache = rig();
    // healthy: local
    assert!(!cache.execute(Q).unwrap().used_remote);

    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(60)).unwrap();

    // updates keep committing at the back-end while the agent is down
    cache
        .execute("UPDATE customer SET c_acctbal = 777.0 WHERE c_custkey = 5")
        .unwrap();

    let r = cache.execute(Q).unwrap();
    assert!(r.used_remote, "stale region must not serve");
    assert_eq!(
        r.rows[0].get(0),
        &Value::Float(777.0),
        "remote sees the latest value"
    );

    // recovery: agent resumes, catches up, traffic returns
    cache.set_region_stalled("CR1", false);
    cache.advance(Duration::from_secs(30)).unwrap();
    let r = cache.execute(Q).unwrap();
    assert!(!r.used_remote, "recovered region serves again");
    assert_eq!(r.rows[0].get(0), &Value::Float(777.0), "and it caught up");
}

#[test]
fn stalled_agent_never_serves_stale_data_within_bound_claims() {
    // even mid-outage, results are correct: the guard detects the stale
    // heartbeat and falls back
    let cache = rig();
    cache.set_region_stalled("CR1", true);
    for step in 0..10 {
        cache.advance(Duration::from_secs(13)).unwrap();
        cache
            .execute(&format!(
                "UPDATE customer SET c_acctbal = {step}.0 WHERE c_custkey = 5"
            ))
            .unwrap();
        let r = cache.execute(Q).unwrap();
        // the CURRENT value is step.0; a bound of 30s tolerates values
        // written in the last 30s only, but the region fell behind long
        // ago: the answer must be the current value, from the back-end
        if cache.region_staleness("CR1").unwrap() > Duration::from_secs(30) {
            assert!(r.used_remote, "step {step}");
            assert_eq!(r.rows[0].get(0), &Value::Float(step as f64));
        }
    }
}

#[test]
fn heartbeat_outage_is_conservative() {
    // a region whose heartbeat table never received a row (fresh agent,
    // no propagation yet) fails every guard
    let cache = paper_setup(0.001, 7).unwrap(); // NO warm-up
    assert!(cache.local_heartbeat("CR1").is_none());
    let r = cache.execute(Q).unwrap();
    assert!(r.used_remote, "no heartbeat → remote");
    assert_eq!(r.remote_branches(), 1);
}

#[test]
fn backend_outage_with_fresh_cache_still_serves() {
    let cache = rig();
    cache.set_backend_available(false);
    let r = cache.execute(Q).unwrap();
    assert!(!r.used_remote);
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn backend_outage_with_stale_cache_degrades_per_policy() {
    let cache = rig();
    cache.set_backend_available(false);
    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(90)).unwrap();

    let err = cache.execute(Q).unwrap_err();
    assert!(matches!(err, Error::CurrencyViolation(_)));

    let r = cache
        .execute_with_policy(Q, &HashMap::new(), ViolationPolicy::ServeStale)
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(!r.warnings.is_empty());
}

#[test]
fn clock_skew_guard_is_safe_against_future_heartbeats() {
    // If the cache clock lags the back-end (heartbeat "from the future"),
    // the guard must still behave sanely: a future heartbeat is trivially
    // within any bound, and the data really IS that fresh, so serving
    // locally is safe. `Timestamp::since` saturates rather than going
    // negative.
    let cache = rig();
    let hb = cache.local_heartbeat("CR1").unwrap();
    let now = cache.clock().now();
    assert!(hb <= now);
    // saturating staleness math (the skew-sensitive operation)
    assert_eq!(Timestamp(5_000).since(Timestamp(9_000)), Duration::ZERO);
}

#[test]
fn one_region_down_does_not_poison_the_other() {
    let cache = rig();
    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(90)).unwrap();
    // CR2 (orders_prj) still serves locally
    let r = cache
        .execute(
            "SELECT o_totalprice FROM orders WHERE o_custkey = 5 \
             CURRENCY BOUND 30 SEC ON (orders)",
        )
        .unwrap();
    assert!(!r.used_remote, "CR2 unaffected by CR1's outage");
    // CR1 is remote
    let r = cache.execute(Q).unwrap();
    assert!(r.used_remote);
}

#[test]
fn counters_reflect_the_shift() {
    let cache = rig();
    cache.counters().reset();
    for _ in 0..5 {
        cache.execute(Q).unwrap();
    }
    assert_eq!(
        cache
            .counters()
            .local_branches
            .load(std::sync::atomic::Ordering::Relaxed),
        5
    );
    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(90)).unwrap();
    for _ in 0..5 {
        cache.execute(Q).unwrap();
    }
    let local = cache
        .counters()
        .local_branches
        .load(std::sync::atomic::Ordering::Relaxed);
    let remote = cache
        .counters()
        .remote_branches
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!((local, remote), (5, 5));
    assert!((cache.counters().local_fraction() - 0.5).abs() < 1e-9);
}
