//! End-to-end template robustness surfaces: `CREATE TEMPLATE` (the
//! compile-time hook that re-audits the declared workload), `AUDIT
//! TEMPLATES` (one verdict row per template), the `template_verdict`
//! accessor the write path will consult, and the robustness metrics and
//! journal events.

use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;
use rcc_robust::Verdict;

fn rig() -> MTCache {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    cache
}

const PAY: &str = "CREATE TEMPLATE pay ($c, $amt) AS \
    SELECT c_acctbal FROM customer WHERE c_custkey = $c \
      CURRENCY BOUND 10 SEC ON (customer); \
    UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END";

const PEEK: &str = "CREATE TEMPLATE peek ($c) AS \
    SELECT c_acctbal FROM customer WHERE c_custkey = $c \
      CURRENCY BOUND 1 MIN ON (customer); END";

#[test]
fn audit_templates_reports_one_verdict_row_per_template() {
    let cache = rig();
    let r = cache.execute(PAY).unwrap();
    assert!(
        r.warnings.iter().any(|w| w.contains("NOT ROBUST")),
        "declaration should carry its verdict: {:?}",
        r.warnings
    );
    cache.execute(PEEK).unwrap();

    let r = cache.execute("AUDIT TEMPLATES").unwrap();
    assert_eq!(r.schema.columns().len(), 7);
    assert_eq!(r.rows.len(), 2, "{r:?}");
    let pay = &r.rows[0];
    assert_eq!(pay.values()[0], rcc_common::Value::Str("pay".into()));
    assert_eq!(pay.values()[1], rcc_common::Value::Str("NOT ROBUST".into()));
    let witness = pay.values()[2].to_string();
    assert!(
        witness.contains("--rw(customer)-->") && witness.contains("--ww(customer)-->"),
        "cycle witness expected: {witness}"
    );
    let peek = &r.rows[1];
    assert_eq!(peek.values()[0], rcc_common::Value::Str("peek".into()));
    assert_eq!(peek.values()[1], rcc_common::Value::Str("ROBUST".into()));
    assert_eq!(peek.values()[2], rcc_common::Value::Str(String::new()));
    assert!(
        r.warnings[0].contains("2 template(s): 1 robust, 1 not robust"),
        "{:?}",
        r.warnings
    );
}

#[test]
fn compile_hook_updates_verdicts_metrics_and_journal() {
    let cache = rig();
    cache.execute(PEEK).unwrap();
    assert_eq!(cache.template_verdict("peek"), Some(Verdict::Robust));
    assert_eq!(cache.template_verdict("missing"), None);

    // Declaring a conflicting writer re-audits the whole workload; peek
    // stays robust (read-only split victim needs two reads), pay is not.
    cache.execute(PAY).unwrap();
    assert_eq!(cache.template_verdict("pay"), Some(Verdict::NotRobust));
    assert_eq!(cache.template_verdict("peek"), Some(Verdict::Robust));

    let snap = cache.metrics().snapshot();
    assert_eq!(snap.counter("rcc_robust_audits_total"), 2);
    assert_eq!(
        snap.gauge("rcc_robust_templates{verdict=\"robust\"}"),
        Some(1.0)
    );
    assert_eq!(
        snap.gauge("rcc_robust_templates{verdict=\"not_robust\"}"),
        Some(1.0)
    );

    // The NOT ROBUST declaration is journaled.
    let events = cache.execute("SHOW EVENTS").unwrap();
    assert!(
        events.rows.iter().any(|row| {
            row.values()[2].to_string().contains("robustness")
                && row.values()[3].to_string().contains("pay")
        }),
        "robustness event expected: {:?}",
        events.rows
    );
}

#[test]
fn redeclaration_replaces_and_can_flip_the_verdict() {
    let cache = rig();
    cache.execute(PAY).unwrap();
    assert_eq!(cache.template_verdict("pay"), Some(Verdict::NotRobust));

    // Tighten the read to bound 0: the lost-update window closes.
    cache
        .execute(
            "CREATE TEMPLATE pay ($c, $amt) AS \
             SELECT c_acctbal FROM customer WHERE c_custkey = $c \
               CURRENCY BOUND 0 SEC ON (customer); \
             UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END",
        )
        .unwrap();
    assert_eq!(cache.template_verdict("pay"), Some(Verdict::Robust));
    let r = cache.execute("AUDIT TEMPLATES").unwrap();
    assert_eq!(r.rows.len(), 1, "redeclaration must replace: {r:?}");
}

#[test]
fn template_binding_errors_are_reported_at_declaration() {
    let cache = rig();
    let err = cache
        .execute(
            "CREATE TEMPLATE bad ($c) AS \
             SELECT c_acctbal FROM customer WHERE c_custkey = $other; END",
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("undeclared parameter $other"),
        "{err}"
    );
    let err = cache
        .execute("CREATE TEMPLATE bad () AS SELECT x FROM nowhere; END")
        .unwrap_err();
    assert!(err.to_string().contains("unknown table"), "{err}");
    // Nothing was recorded.
    assert!(cache.execute("AUDIT TEMPLATES").unwrap().rows.is_empty());
}
