//! End-to-end Layer-1 lint surfaces: the `LINT` statement, the
//! compile-time hook that attaches diagnostics as result warnings, and the
//! per-code diagnostics counter.

use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;

fn rig() -> MTCache {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    cache
}

#[test]
fn lint_statement_reports_diagnostics_as_rows() {
    let cache = rig();
    let r = cache
        .execute(
            "LINT SELECT c_acctbal FROM customer \
             CURRENCY BOUND 15 SEC ON (customer), 5 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.schema.columns().len(), 4);
    assert_eq!(r.rows.len(), 1, "one L001 diagnostic expected: {r:?}");
    let code = r.rows[0].values()[0].to_string();
    assert!(code.contains("L001"), "{code}");
    assert!(r.warnings[0].contains("1 diagnostic"), "{:?}", r.warnings);
}

#[test]
fn lint_statement_clean_query_returns_no_rows() {
    let cache = rig();
    let r = cache
        .execute(
            "LINT SELECT c_acctbal FROM customer c WHERE c.c_custkey = 5 \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_custkey",
        )
        .unwrap();
    assert!(r.rows.is_empty(), "{:?}", r.rows);
    assert!(r.warnings[0].contains("lint clean"), "{:?}", r.warnings);
}

#[test]
fn compile_attaches_lint_warnings_and_bumps_metric() {
    let cache = rig();
    let before = cache.metrics().snapshot();
    assert_eq!(
        before.counter("rcc_lint_diagnostics_total{code=\"L001\"}"),
        0
    );

    // The query still executes — lint warns, never blocks.
    let sql = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
               CURRENCY BOUND 10 SEC ON (customer), 15 SEC ON (customer)";
    let r = cache.execute(sql).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(
        r.warnings.iter().any(|w| w.contains("L001")),
        "compile-time lint warning expected: {:?}",
        r.warnings
    );

    let after = cache.metrics().snapshot();
    assert_eq!(
        after.counter("rcc_lint_diagnostics_total{code=\"L001\"}"),
        1
    );

    // Plan-cache hit: the cached plan still carries its warnings, but the
    // lint pass (and counter) does not re-run.
    let r2 = cache.execute(sql).unwrap();
    assert!(r2.warnings.iter().any(|w| w.contains("L001")));
    let cached = cache.metrics().snapshot();
    assert_eq!(
        cached.counter("rcc_lint_diagnostics_total{code=\"L001\"}"),
        1,
        "cache hits must not re-lint"
    );
}

#[test]
fn clean_queries_execute_without_lint_warnings() {
    let cache = rig();
    let r = cache
        .execute(
            "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
             CURRENCY BOUND 15 SEC ON (customer)",
        )
        .unwrap();
    assert!(
        !r.warnings.iter().any(|w| w.starts_with("lint:")),
        "{:?}",
        r.warnings
    );
}
