//! The paper's headline guarantee, property-tested: **whenever a currency
//! guard admits a local read, the data served is never staler than the
//! query's bound** — under randomized schedules of updates, replication
//! cycles and queries.
//!
//! Technique: a versioned "canary" row per table. The test model records
//! the commit time of every version; when a query with bound `B` executed
//! at time `t` reads version `v` locally, the *next* version (if any) must
//! have been written after `t − B` — otherwise data older than `B` was
//! served and the guarantee is broken. A second property checks mutual
//! consistency: a two-table consistency class answered locally must return
//! versions whose validity intervals overlap (i.e. a single database
//! snapshot could have produced them).

use proptest::prelude::*;
use rcc_common::TxnId;
use rcc_common::{Clock, Duration, Timestamp, Value};
use rcc_mtcache::MTCache;
use rcc_semantics::{timeline_consistent, Copy as SemCopy, GroupObservation};

#[derive(Debug, Clone)]
enum Event {
    /// Advance simulated time by this many milliseconds.
    Advance(i64),
    /// Bump the canary version of table `t1` (0) or `t2` (1).
    Update(u8),
    /// Single-table bounded read of table 0/1 with this bound (ms).
    Query(u8, i64),
    /// Joint read of both tables with a mutual-consistency class.
    JointQuery(i64),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (500i64..8_000).prop_map(Event::Advance),
        (0u8..2).prop_map(Event::Update),
        ((0u8..2), (500i64..30_000)).prop_map(|(t, b)| Event::Query(t, b)),
        (500i64..30_000).prop_map(Event::JointQuery),
    ]
}

struct Model {
    cache: MTCache,
    /// per table: commit times of versions 1.. (version v committed at [v-1])
    writes: [Vec<Timestamp>; 2],
}

impl Model {
    fn new() -> Model {
        let cache = MTCache::new();
        for t in ["t1", "t2"] {
            cache
                .execute(&format!(
                    "CREATE TABLE {t} (id INT, version INT, PRIMARY KEY (id))"
                ))
                .unwrap();
            cache
                .execute(&format!("INSERT INTO {t} VALUES (1, 0)"))
                .unwrap();
            cache.analyze(t).unwrap();
        }
        // one region, 4s propagation, 1s delay — both tables mutually
        // consistent whenever served locally
        cache
            .create_region("R", Duration::from_secs(4), Duration::from_secs(1))
            .unwrap();
        cache
            .execute("CREATE CACHED VIEW t1_v REGION r AS SELECT id, version FROM t1")
            .unwrap();
        cache
            .execute("CREATE CACHED VIEW t2_v REGION r AS SELECT id, version FROM t2")
            .unwrap();
        Model {
            cache,
            writes: [vec![], vec![]],
        }
    }

    fn table(&self, i: u8) -> &'static str {
        if i == 0 {
            "t1"
        } else {
            "t2"
        }
    }

    fn update(&mut self, i: u8) {
        let next = self.writes[i as usize].len() as i64 + 1;
        self.cache
            .execute(&format!(
                "UPDATE {} SET version = {next} WHERE id = 1",
                self.table(i)
            ))
            .unwrap();
        self.writes[i as usize].push(self.cache.clock().now());
    }

    /// The staleness bound check: version `v` read at `now` under `bound`.
    fn check_version(&self, i: u8, v: i64, now: Timestamp, bound: Duration) {
        let writes = &self.writes[i as usize];
        // version v was superseded at writes[v] (0-indexed: version k was
        // written at writes[k-1]); if superseded before now - bound, the
        // read violated the bound
        if let Some(&superseded_at) = writes.get(v as usize) {
            assert!(
                superseded_at > now.minus(bound),
                "BOUND VIOLATION: table {} version {v} was superseded at {superseded_at}, \
                 read at {now} under bound {bound}",
                self.table(i)
            );
        }
        // sanity: the version must have been written by now
        if v > 0 {
            assert!(writes[(v - 1) as usize] <= now);
        }
    }

    /// Validity interval of version `v` of table `i`: [written, superseded).
    fn interval(&self, i: u8, v: i64) -> (Timestamp, Timestamp) {
        let writes = &self.writes[i as usize];
        let start = if v == 0 {
            Timestamp::ZERO
        } else {
            writes[(v - 1) as usize]
        };
        let end = writes
            .get(v as usize)
            .copied()
            .unwrap_or(Timestamp(i64::MAX));
        (start, end)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn local_reads_never_exceed_the_bound(events in prop::collection::vec(event_strategy(), 1..40)) {
        let mut model = Model::new();
        for ev in events {
            match ev {
                Event::Advance(ms) => model.cache.advance(Duration::from_millis(ms)).unwrap(),
                Event::Update(i) => model.update(i),
                Event::Query(i, bound_ms) => {
                    let bound = Duration::from_millis(bound_ms);
                    let sql = format!(
                        "SELECT version FROM {} WHERE id = 1 CURRENCY BOUND {bound_ms} MS ON ({})",
                        model.table(i), model.table(i)
                    );
                    let r = model.cache.execute(&sql).unwrap();
                    prop_assert_eq!(r.rows.len(), 1);
                    let v = r.rows[0].get(0).as_int().unwrap();
                    let now = model.cache.clock().now();
                    if r.local_branches() > 0 && !r.used_remote {
                        model.check_version(i, v, now, bound);
                    } else {
                        // remote read: must be the current version
                        prop_assert_eq!(v, model.writes[i as usize].len() as i64);
                    }
                }
                Event::JointQuery(bound_ms) => {
                    let sql = format!(
                        "SELECT a.version, b.version FROM t1 a, t2 b WHERE a.id = b.id \
                         CURRENCY BOUND {bound_ms} MS ON (a, b)"
                    );
                    let r = model.cache.execute(&sql).unwrap();
                    prop_assert_eq!(r.rows.len(), 1);
                    let v1 = r.rows[0].get(0).as_int().unwrap();
                    let v2 = r.rows[0].get(1).as_int().unwrap();
                    let now = model.cache.clock().now();
                    let bound = Duration::from_millis(bound_ms);
                    if !r.used_remote {
                        // bound check on both
                        model.check_version(0, v1, now, bound);
                        model.check_version(1, v2, now, bound);
                        // mutual consistency: the two versions must have
                        // been simultaneously current at some instant
                        let (s1, e1) = model.interval(0, v1);
                        let (s2, e2) = model.interval(1, v2);
                        prop_assert!(
                            s1 < e2 && s2 < e1,
                            "CONSISTENCY VIOLATION: t1 v{} [{:?},{:?}) and t2 v{} [{:?},{:?}) \
                             share no snapshot", v1, s1, e1, v2, s2, e2
                        );
                    } else {
                        prop_assert_eq!(v1, model.writes[0].len() as i64);
                        prop_assert_eq!(v2, model.writes[1].len() as i64);
                    }
                }
            }
        }
    }

    #[test]
    fn timeordered_sessions_never_move_backwards(
        events in prop::collection::vec(event_strategy(), 1..30)
    ) {
        let model_cell = Model::new();
        let (cache, mut writes) = (model_cell.cache, model_cell.writes);
        let table = |i: u8| if i == 0 { "t1" } else { "t2" };
        let mut groups: Vec<GroupObservation> = Vec::new();
        // run the whole schedule inside one TIMEORDERED bracket; every
        // version read becomes a group observation for the formal oracle
        let mut session = cache.session();
        session.execute("BEGIN TIMEORDERED").unwrap();
        for ev in events {
            match ev {
                Event::Advance(ms) => cache.advance(Duration::from_millis(ms)).unwrap(),
                Event::Update(i) => {
                    let next = writes[i as usize].len() as i64 + 1;
                    cache
                        .execute(&format!(
                            "UPDATE {} SET version = {next} WHERE id = 1",
                            table(i)
                        ))
                        .unwrap();
                    writes[i as usize].push(cache.clock().now());
                }
                Event::Query(i, bound_ms) => {
                    let sql = format!(
                        "SELECT version FROM {} WHERE id = 1 \
                         CURRENCY BOUND {bound_ms} MS ON ({})",
                        table(i), table(i)
                    );
                    let r = session.execute(&sql).unwrap();
                    let v = r.rows[0].get(0).as_int().unwrap();
                    groups.push(GroupObservation::new(
                        format!("q{}", groups.len()),
                        vec![SemCopy::new(table(i), TxnId(v as u64))],
                    ));
                }
                Event::JointQuery(_) => {}
            }
        }
        // the formal timeline-consistency predicate (paper Sec. 8.7) holds
        // per table: group observations of the same object never regress
        for table in ["t1", "t2"] {
            let per_table: Vec<GroupObservation> = groups
                .iter()
                .filter(|g| g.copies.iter().any(|c| c.object == table))
                .cloned()
                .collect();
            prop_assert!(
                timeline_consistent(&per_table).is_ok(),
                "versions of {table} moved backwards within a TIMEORDERED session"
            );
        }
    }
}

#[test]
fn deterministic_staleness_cross_check_with_oracle() {
    use rcc_semantics::{History, TxnEvent};
    // replay a fixed scenario and cross-check region staleness with the
    // formal currency() definition
    let mut model = Model::new();
    model.cache.advance(Duration::from_secs(8)).unwrap(); // propagation at 8s
    model.update(0); // txn at 8s
    let mut history = History::new();
    history.record(TxnEvent {
        id: TxnId(1),
        time: model.cache.clock().now(),
        objects: vec!["t1".into()],
    });
    model.cache.advance(Duration::from_secs(10)).unwrap(); // now 18s; propagated at 12s/16s

    // the view received the 8s update at the 12s propagation, so it is
    // snapshot-consistent with the latest history: currency 0
    let copy_current = SemCopy::new("t1", TxnId(1));
    assert_eq!(
        history.currency(&copy_current, model.cache.clock().now()),
        Duration::ZERO
    );

    // a hypothetical copy that missed txn 1 would be 10s stale — and the
    // guard with a 5s bound must therefore reject such data; our region's
    // real data is fresher, so the guard passes
    let copy_stale = SemCopy::new("t1", TxnId(0));
    assert_eq!(
        history.currency(&copy_stale, model.cache.clock().now()),
        Duration::from_secs(10)
    );
    let r = model
        .cache
        .execute("SELECT version FROM t1 WHERE id = 1 CURRENCY BOUND 5 SEC ON (t1)")
        .unwrap();
    assert!(!r.used_remote);
    assert_eq!(
        r.rows[0].get(0),
        &Value::Int(1),
        "the guard admitted the *updated* copy"
    );
}
