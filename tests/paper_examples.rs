//! Every example constraint from the paper's Section 2, on the bookstore
//! schema its exposition uses (Books, Reviews, Sales): the single-block
//! clauses E1–E4 (Fig. 2.1), the multi-block queries Q2/Q3 (Fig. 2.2) and
//! their normalization, and the timeline-consistency session of Sec. 2.3.

use rcc_common::{Duration, Value};
use rcc_mtcache::MTCache;
use rcc_optimizer::bind_select;
use rcc_sql::{parse_statement, Statement};
use std::collections::HashMap;

/// Build the bookstore: Books and Reviews cached in one region (so E1-style
/// mutual consistency is locally satisfiable), Sales in another.
fn bookstore() -> MTCache {
    let cache = MTCache::new();
    cache
        .execute("CREATE TABLE books (isbn INT, title VARCHAR, price FLOAT, PRIMARY KEY (isbn))")
        .unwrap();
    cache
        .execute(
            "CREATE TABLE reviews (review_id INT, isbn INT, rating INT, PRIMARY KEY (review_id))",
        )
        .unwrap();
    cache
        .execute("CREATE TABLE sales (sale_id INT, isbn INT, year INT, PRIMARY KEY (sale_id))")
        .unwrap();
    for i in 1..=20 {
        cache
            .execute(&format!(
                "INSERT INTO books VALUES ({i}, 'Book {i}', {}.5)",
                10 + i
            ))
            .unwrap();
        cache
            .execute(&format!(
                "INSERT INTO reviews VALUES ({i}, {}, {})",
                (i % 10) + 1,
                (i % 5) + 1
            ))
            .unwrap();
        cache
            .execute(&format!(
                "INSERT INTO sales VALUES ({i}, {}, {})",
                (i % 7) + 1,
                2000 + i % 5
            ))
            .unwrap();
    }
    for t in ["books", "reviews", "sales"] {
        cache.analyze(t).unwrap();
    }
    cache
        .create_region("BOOKSHELF", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .create_region("SALESREG", Duration::from_secs(10), Duration::from_secs(2))
        .unwrap();
    cache
        .execute(
            "CREATE CACHED VIEW books_v REGION bookshelf AS SELECT isbn, title, price FROM books",
        )
        .unwrap();
    cache
        .execute(
            "CREATE CACHED VIEW reviews_v REGION bookshelf AS \
             SELECT review_id, isbn, rating FROM reviews",
        )
        .unwrap();
    cache
        .execute(
            "CREATE CACHED VIEW sales_v REGION salesreg AS SELECT sale_id, isbn, year FROM sales",
        )
        .unwrap();
    cache.advance(Duration::from_secs(30)).unwrap();
    cache
}

const JOIN: &str = "SELECT b.title, r.rating FROM books b, reviews r WHERE b.isbn = r.isbn";

#[test]
fn e1_single_consistency_class() {
    // E1: inputs <= 10 min stale AND mutually consistent
    let cache = bookstore();
    let sql = format!("{JOIN} CURRENCY BOUND 10 MIN ON (b, r)");
    let r = cache.execute(&sql).unwrap();
    assert!(!r.rows.is_empty());
    // both views share a region, so the constraint binds {b, r} into one
    // class -- check the normalized form
    let stmt = match parse_statement(&sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 1);
    assert_eq!(graph.constraint.classes[0].bound, Duration::from_mins(10));
    assert_eq!(graph.constraint.classes[0].operands.len(), 2);
}

#[test]
fn e2_relaxed_independent_classes() {
    // E2: 10 min on B, 30 min on R, no mutual consistency
    let cache = bookstore();
    let sql = format!("{JOIN} CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)");
    let r = cache.execute(&sql).unwrap();
    assert!(!r.rows.is_empty());
    let stmt = match parse_statement(&sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 2);
    assert_eq!(graph.constraint.bound_of(0), Duration::from_mins(10));
    assert_eq!(graph.constraint.bound_of(1), Duration::from_mins(30));
}

#[test]
fn e3_per_row_grouping_parses_and_normalizes() {
    // E3: per-isbn grouping on both tables, separate classes
    let cache = bookstore();
    let sql = format!("{JOIN} CURRENCY BOUND 10 MIN ON (b) BY b.isbn, 10 MIN ON (r) BY r.isbn");
    let stmt = match parse_statement(&sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 2);
    assert_eq!(graph.constraint.classes[0].by.len(), 1);
    // execution works too: transactional replication keeps whole views
    // snapshot consistent, which subsumes group-level consistency
    let r = cache.execute(&sql).unwrap();
    assert!(!r.rows.is_empty());
}

#[test]
fn e4_join_pair_grouping() {
    // E4: each Books row consistent with the Reviews rows it joins with
    let cache = bookstore();
    let sql = format!("{JOIN} CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn");
    let stmt = match parse_statement(&sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 1);
    assert_eq!(
        graph.constraint.classes[0].by,
        vec![("b".to_string(), "isbn".to_string())]
    );
    assert!(!cache.execute(&sql).unwrap().rows.is_empty());
}

#[test]
fn q2_from_subquery_constraints_merge_to_least_restrictive() {
    // Sec. 2.2: outer "5 min (S, T)" over T = (B join R) with inner
    // "10 min (B, R)" => least restrictive combined form "5 min (S, B, R)"
    let cache = bookstore();
    let sql = "SELECT t.title, s.year FROM \
               (SELECT b.isbn, b.title FROM books b, reviews r WHERE b.isbn = r.isbn \
                CURRENCY BOUND 10 MIN ON (b, r)) t, sales s \
               WHERE t.isbn = s.isbn \
               CURRENCY BOUND 5 MIN ON (s, t)";
    let stmt = match parse_statement(sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 1, "one merged class");
    assert_eq!(graph.constraint.classes[0].bound, Duration::from_mins(5));
    assert_eq!(graph.constraint.classes[0].operands.len(), 3, "S, B, R");
    // sales_v is in a different region: a fully local answer cannot
    // guarantee the class; execution goes remote and still succeeds
    let r = cache.execute(sql).unwrap();
    assert!(!r.rows.is_empty());
    assert!(r.used_remote);
}

#[test]
fn q3_exists_subquery_links_inner_and_outer_classes() {
    // Sec. 2.2 Q3: the EXISTS subquery's clause names the outer table B,
    // merging everything into a single consistency class
    let cache = bookstore();
    let sql = "SELECT b.title, r.rating FROM books b, reviews r \
               WHERE b.isbn = r.isbn AND \
               EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn AND s.year = 2003 \
                       CURRENCY BOUND 10 MIN ON (s, b)) \
               CURRENCY BOUND 10 MIN ON (b, r)";
    let stmt = match parse_statement(sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 1, "B, R, S all one class");
    assert_eq!(graph.constraint.classes[0].operands.len(), 3);
    let r = cache.execute(sql).unwrap();
    // ground truth without constraints
    let truth = cache
        .execute(
            "SELECT b.title, r.rating FROM books b, reviews r \
             WHERE b.isbn = r.isbn AND \
             EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn AND s.year = 2003)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), truth.rows.len());
}

#[test]
fn q3_variant_without_outer_reference_keeps_classes_separate() {
    // "If S need not be consistent with any tables in the outer block, we
    // simply omit the reference to B"
    let cache = bookstore();
    let sql = "SELECT b.title FROM books b WHERE \
               EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn \
                       CURRENCY BOUND 10 MIN ON (s)) \
               CURRENCY BOUND 10 MIN ON (b)";
    let stmt = match parse_statement(sql).unwrap() {
        Statement::Select(s) => *s,
        _ => unreachable!(),
    };
    let graph = bind_select(cache.catalog(), &stmt, &HashMap::new()).unwrap();
    assert_eq!(graph.constraint.classes.len(), 2);
    // both classes are singletons served by different regions: the whole
    // query can run locally
    let r = cache.execute(sql).unwrap();
    assert!(!r.used_remote, "plan: {}", r.plan_explain);
}

#[test]
fn timeline_consistency_session() {
    // Sec. 2.3: "users may not even see their own changes unless timeline
    // consistency is specified, because a later query may use a replica
    // that has not yet been updated."
    let cache = bookstore();
    let mut session = cache.session();

    session.execute("BEGIN TIMEORDERED").unwrap();
    // 1) current read (no clause -> back-end): sees the latest price
    session
        .execute("UPDATE books SET price = 99.0 WHERE isbn = 1")
        .unwrap();
    let fresh = session
        .execute("SELECT price FROM books WHERE isbn = 1")
        .unwrap();
    assert_eq!(fresh.rows[0].get(0), &Value::Float(99.0));

    // 2) later bounded read: the replica has NOT yet received the update,
    // so using it would move time backwards; the session floor forces the
    // guard to fail and the read goes remote
    let later = session
        .execute("SELECT price FROM books WHERE isbn = 1 CURRENCY BOUND 60 SEC ON (books)")
        .unwrap();
    assert_eq!(
        later.rows[0].get(0),
        &Value::Float(99.0),
        "must see own change"
    );
    assert!(later.used_remote, "stale replica skipped under TIMEORDERED");

    session.execute("END TIMEORDERED").unwrap();

    // without the bracket the same read happily uses the stale replica
    let unordered = cache
        .execute("SELECT price FROM books WHERE isbn = 1 CURRENCY BOUND 60 SEC ON (books)")
        .unwrap();
    assert!(!unordered.used_remote);
    assert_ne!(
        unordered.rows[0].get(0),
        &Value::Float(99.0),
        "did not see own change"
    );

    // once replication catches up, the bounded read sees it too
    cache.advance(Duration::from_secs(30)).unwrap();
    let caught_up = cache
        .execute("SELECT price FROM books WHERE isbn = 1 CURRENCY BOUND 60 SEC ON (books)")
        .unwrap();
    assert_eq!(caught_up.rows[0].get(0), &Value::Float(99.0));
}

#[test]
fn timeline_floors_reset_between_brackets() {
    let cache = bookstore();
    let mut session = cache.session();
    session.execute("BEGIN TIMEORDERED").unwrap();
    session
        .execute("SELECT title FROM books WHERE isbn = 1")
        .unwrap(); // remote, raises floors
    assert!(!session.floors().is_empty());
    session.execute("END TIMEORDERED").unwrap();
    assert!(session.floors().is_empty());
    assert!(!session.is_timeordered());
}

#[test]
fn local_reads_within_bracket_stay_local_when_no_newer_data_seen() {
    // forward movement only constrains *relative* order: two bounded reads
    // of the same fresh replica are fine locally
    let cache = bookstore();
    let mut session = cache.session();
    session.execute("BEGIN TIMEORDERED").unwrap();
    let a = session
        .execute("SELECT title FROM books WHERE isbn = 1 CURRENCY BOUND 60 SEC ON (books)")
        .unwrap();
    let b = session
        .execute("SELECT title FROM books WHERE isbn = 2 CURRENCY BOUND 60 SEC ON (books)")
        .unwrap();
    assert!(!a.used_remote);
    assert!(!b.used_remote, "same snapshot, time did not move backwards");
}
