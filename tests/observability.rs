//! End-to-end observability: the metrics registry, per-statement stats,
//! EXPLAIN ANALYZE, and query tracing, exercised through the full
//! cache/backend pipeline.

use rcc_common::Duration;
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::MTCache;
use rcc_obs::QueryPhase;
use std::collections::HashMap;

fn rig() -> MTCache {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    cache
}

const Q: &str = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";

#[test]
fn stalled_region_increments_remote_counter_and_staleness_histogram() {
    let cache = rig();
    // healthy baseline: query serves locally
    assert!(!cache.execute(Q).unwrap().used_remote);
    let before = cache.metrics().snapshot();
    let remote_before = before.counter("rcc_guard_remote_total");
    let hist_before = before
        .histogram("rcc_guard_staleness_seconds{region=\"cr1\"}")
        .map(|h| h.count)
        .unwrap_or(0);

    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(60)).unwrap();
    let r = cache.execute(Q).unwrap();
    assert!(
        r.used_remote,
        "stalled region must fall back to the back-end"
    );

    let after = cache.metrics().snapshot();
    assert_eq!(
        after.counter("rcc_guard_remote_total"),
        remote_before + 1,
        "the guard's remote branch was taken exactly once more"
    );
    let hist = after
        .histogram("rcc_guard_staleness_seconds{region=\"cr1\"}")
        .expect("staleness histogram exists for cr1");
    assert_eq!(hist.count, hist_before + 1);
    // the region stalled for 60 simulated seconds; the last observation
    // dominates the running sum
    assert!(
        hist.sum >= 59.0,
        "observed staleness ≥ 59s, got {}",
        hist.sum
    );
}

#[test]
fn prometheus_exposition_covers_the_pipeline() {
    let cache = rig();
    cache.execute(Q).unwrap();
    cache.execute(Q).unwrap(); // plan-cache hit
    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(60)).unwrap();
    cache.execute(Q).unwrap(); // remote ship + wire bytes

    let names = cache.metrics().metric_names();
    for required in [
        "rcc_guard_local_total",
        "rcc_guard_remote_total",
        "rcc_remote_queries_total",
        "rcc_rows_shipped_total",
        "rcc_queries_total",
        "rcc_query_rows_returned_total",
        "rcc_query_phase_seconds",
        "rcc_guard_staleness_seconds",
        "rcc_plan_cache_hits_total",
        "rcc_plan_cache_misses_total",
        "rcc_plan_cache_entries",
        "rcc_replication_lag_seconds",
        "rcc_replication_txns_applied_total",
        "rcc_remote_latency_seconds",
        "rcc_wire_bytes_encoded_total",
        "rcc_wire_bytes_decoded_total",
        "rcc_master_txns_total",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing metric {required}: {names:?}"
        );
    }
    assert!(
        names.len() >= 12,
        "expected ≥ 12 distinct metrics, got {}",
        names.len()
    );

    let text = cache.metrics().render_prometheus();
    assert!(text.contains("# HELP rcc_queries_total"));
    assert!(text.contains("rcc_query_phase_seconds_bucket"));
    assert!(text.contains("rcc_guard_staleness_seconds_bucket{region=\"cr1\""));

    // wire accounting really flowed: the remote query shipped bytes
    let snap = cache.metrics().snapshot();
    assert!(snap.counter("rcc_wire_bytes_encoded_total") > 0);
    assert_eq!(
        snap.counter("rcc_wire_bytes_encoded_total"),
        snap.counter("rcc_wire_bytes_decoded_total")
    );
    assert!(snap.histogram("rcc_remote_latency_seconds").unwrap().count >= 1);
}

#[test]
fn explain_analyze_reports_per_operator_rows_and_marks_untaken_branch() {
    let cache = rig();
    let r = cache.execute(&format!("EXPLAIN ANALYZE {Q}")).unwrap();
    assert_eq!(r.rows.len(), 1, "ANALYZE still returns the result rows");
    assert!(
        r.plan_explain.contains("actual rows="),
        "per-operator rows attached: {}",
        r.plan_explain
    );
    assert!(
        r.plan_explain.contains("time="),
        "timings attached: {}",
        r.plan_explain
    );
    // fresh region → local branch runs, remote branch is never touched
    assert!(
        r.plan_explain.contains("never executed"),
        "the untaken SwitchUnion branch is marked: {}",
        r.plan_explain
    );
    assert!(r.plan_explain.contains("total: 1 rows"));
    assert_eq!(r.stats.rows_returned, 1);

    // the structured API accepts the bare query too
    let r2 = cache.explain_analyze(Q, &HashMap::new()).unwrap();
    assert!(r2.plan_explain.contains("actual rows="));
}

#[test]
fn query_stats_phases_and_plan_cache_flag() {
    let cache = rig();
    let sql = "SELECT c_name FROM customer WHERE c_custkey = 9 \
               CURRENCY BOUND 30 SEC ON (customer)";
    let miss = cache.execute(sql).unwrap();
    assert!(!miss.stats.plan_cache_hit);
    assert!(miss.stats.total() > std::time::Duration::ZERO);
    assert!(miss.stats.phase(QueryPhase::Optimize) > std::time::Duration::ZERO);
    assert!(miss.stats.phase(QueryPhase::GuardEval) > std::time::Duration::ZERO);
    assert_eq!(miss.stats.rows_returned, 1);
    assert_eq!(miss.stats.remote_queries, 0);

    let hit = cache.execute(sql).unwrap();
    assert!(hit.stats.plan_cache_hit);
    assert_eq!(hit.stats.phase(QueryPhase::Bind), std::time::Duration::ZERO);
    assert_eq!(
        hit.stats.phase(QueryPhase::Optimize),
        std::time::Duration::ZERO
    );
    assert!(
        hit.stats.trace_id > miss.stats.trace_id,
        "trace ids are per-statement"
    );

    // a remote query accounts bytes and remote time
    cache.set_region_stalled("CR1", true);
    cache.advance(Duration::from_secs(60)).unwrap();
    let remote = cache.execute(sql).unwrap();
    assert_eq!(remote.stats.remote_queries, 1);
    assert!(remote.stats.bytes_shipped > 0);
    assert!(remote.stats.phase(QueryPhase::RemoteShip) > std::time::Duration::ZERO);
}

#[test]
fn tracer_keeps_recent_traces_with_spans() {
    let cache = rig();
    cache.execute(Q).unwrap();
    cache.execute(Q).unwrap();
    let traces = cache.tracer().recent(10);
    assert!(traces.len() >= 2);
    let first = &traces[0];
    assert_eq!(first.label, Q);
    let span_names: Vec<&str> = first.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(span_names.contains(&"execute"), "spans: {span_names:?}");
    // the first execution compiled the plan
    assert!(span_names.contains(&"bind"));
    assert!(span_names.contains(&"optimize"));
    // the second reused it
    let second = &traces[1];
    let names2: Vec<&str> = second.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(
        !names2.contains(&"optimize"),
        "plan-cache hit skips optimize: {names2:?}"
    );
    assert!(first.render().contains("execute"));
}
