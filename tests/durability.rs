//! Crash-recovery acceptance tests: a durable paper rig is killed without
//! ceremony (drop = `kill -9`; nothing is checkpointed or flushed beyond
//! what the WAL policy already guaranteed), restarted from the same data
//! directory, and must come back with committed rows, per-region
//! heartbeat/replication watermarks, and the simulated clock restored —
//! plus a `recovery` event with replay stats in `SHOW EVENTS`. The default
//! in-memory rig must remain byte-identical on the same corpus.

use rcc_common::{Clock, Duration, Row, Value};
use rcc_mtcache::paper::{paper_setup, paper_setup_durable, warm_up, DurabilityOptions};
use rcc_mtcache::MTCache;
use rcc_storage::SyncPolicy;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcc-acceptance-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> DurabilityOptions {
    DurabilityOptions {
        data_dir: dir.to_path_buf(),
        sync: SyncPolicy::Always,
    }
}

fn master_rows(cache: &MTCache, table: &str) -> Vec<Row> {
    cache
        .master()
        .table(table)
        .unwrap()
        .snapshot()
        .collect_all()
}

fn recovery_events(cache: &MTCache) -> Vec<(String, String)> {
    let r = cache.execute("SHOW EVENTS").unwrap();
    let kind_col = r.schema.resolve(None, "kind").unwrap();
    let cause_col = r.schema.resolve(None, "cause").unwrap();
    r.rows
        .iter()
        .filter(|row| row.get(kind_col) == &Value::Str("recovery".into()))
        .map(|row| {
            (
                row.get(kind_col).as_str().unwrap().to_string(),
                row.get(cause_col).as_str().unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn kill_dash_nine_restores_rows_watermarks_and_clock() {
    let dir = temp_dir("kill9");

    let (customer_before, orders_before, hb_master_before, hb1, hb2, stale1, stale2, clock_ms);
    {
        let cache = paper_setup_durable(0.002, 42, opts(&dir)).unwrap();
        warm_up(&cache).unwrap();
        cache
            .execute("UPDATE customer SET c_acctbal = 4242.5 WHERE c_custkey = 5")
            .unwrap();
        cache
            .execute("DELETE FROM customer WHERE c_custkey = 11")
            .unwrap();
        // Another propagation cycle so the update reaches the views and
        // fresh watermarks are persisted.
        cache.advance(Duration::from_secs(30)).unwrap();
        customer_before = master_rows(&cache, "customer");
        orders_before = master_rows(&cache, "orders");
        hb_master_before = master_rows(&cache, "heartbeat");
        hb1 = cache.local_heartbeat("CR1").unwrap();
        hb2 = cache.local_heartbeat("CR2").unwrap();
        stale1 = cache.region_staleness("CR1").unwrap();
        stale2 = cache.region_staleness("CR2").unwrap();
        clock_ms = cache.clock().now().millis();
        // Drop without checkpoint or shutdown: the kill -9 path. Everything
        // below must come from the WAL alone.
    }

    let cache = paper_setup_durable(0.002, 42, opts(&dir)).unwrap();

    // Committed rows restored bit-exact — including the delete.
    assert_eq!(master_rows(&cache, "customer"), customer_before);
    assert_eq!(master_rows(&cache, "orders"), orders_before);
    assert_eq!(master_rows(&cache, "heartbeat"), hb_master_before);

    // Per-region watermarks restored bit-exact: heartbeats and hence the
    // delivered-staleness accounting resume at the pre-crash values
    // instead of re-reporting staleness from zero.
    assert_eq!(cache.local_heartbeat("CR1").unwrap(), hb1);
    assert_eq!(cache.local_heartbeat("CR2").unwrap(), hb2);
    assert_eq!(cache.clock().now().millis(), clock_ms, "clock restored");
    assert_eq!(cache.region_staleness("CR1").unwrap(), stale1);
    assert_eq!(cache.region_staleness("CR2").unwrap(), stale2);

    // A recovery event with replay stats landed in the journal.
    let events = recovery_events(&cache);
    assert_eq!(events.len(), 1, "exactly one recovery event: {events:?}");
    assert!(
        events[0].1.contains("replayed") && events[0].1.contains("watermarks"),
        "cause carries replay stats: {}",
        events[0].1
    );

    // Caches re-converge under bounded staleness: the recovered views
    // already hold the propagated update, and the rig keeps running.
    let r = cache
        .execute(
            "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
             CURRENCY BOUND 30 SEC ON (customer)",
        )
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Float(4242.5));
    cache.advance(Duration::from_secs(30)).unwrap();
    let r = cache
        .execute("SELECT c_acctbal FROM customer WHERE c_custkey = 5")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Float(4242.5));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graceful_checkpoint_truncates_wal_and_restores() {
    let dir = temp_dir("graceful");
    {
        let cache = paper_setup_durable(0.002, 7, opts(&dir)).unwrap();
        warm_up(&cache).unwrap();
        cache
            .execute("UPDATE customer SET c_acctbal = 77.25 WHERE c_custkey = 9")
            .unwrap();
        let before = cache.durability_status().unwrap();
        assert!(before.wal_records > 0);
        assert!(before.last_checkpoint_age_seconds.is_none());
        // Graceful shutdown: write a clean checkpoint.
        assert!(cache.checkpoint().unwrap());
        let after = cache.durability_status().unwrap();
        assert_eq!(after.wal_records, 0, "checkpoint resets the WAL");
        assert_eq!(after.last_checkpoint_age_seconds, Some(0.0));
        assert!(
            after.bufpool_evictions > before.bufpool_evictions,
            "checkpoint payload exceeds the frame budget, forcing eviction"
        );
    }
    let cache = paper_setup_durable(0.002, 7, opts(&dir)).unwrap();
    let r = cache
        .execute("SELECT c_acctbal FROM customer WHERE c_custkey = 9")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Float(77.25));
    // Recovery came from the checkpoint image, not a WAL replay.
    let events = recovery_events(&cache);
    assert_eq!(events.len(), 1);
    assert!(
        events[0].1.contains("replayed 0 commits"),
        "checkpoint covered everything: {}",
        events[0].1
    );
    // The log base preserves absolute cursors across the checkpoint.
    assert!(cache.master().log_len() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn default_in_memory_rig_is_unchanged() {
    let a = paper_setup(0.002, 42).unwrap();
    let b = paper_setup(0.002, 42).unwrap();
    assert!(a.durability_status().is_none());
    assert!(!a.checkpoint().unwrap(), "no-op without a data dir");
    assert_eq!(master_rows(&a, "customer"), master_rows(&b, "customer"));
    assert_eq!(master_rows(&a, "orders"), master_rows(&b, "orders"));
    assert!(
        recovery_events(&a).is_empty(),
        "no recovery event in-memory"
    );
}
